//! Deterministic per-case RNG, run configuration, and test-case errors.

use std::fmt;

/// SplitMix64 RNG seeded from (test name, case index) so every case is
/// reproducible without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the fully qualified test name, mixed with the case
        // index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng {
            state: h ^ ((case as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15,
        };
        rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw in `[lo, hi)` over the i128 domain (covers every
    /// primitive integer width used by range strategies).
    pub fn range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "cannot sample empty range");
        let span = (hi - lo) as u128;
        let off = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
        lo + off as i128
    }
}

/// Mirror of `proptest::test_runner::Config` (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// Mirror of `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }

    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}
