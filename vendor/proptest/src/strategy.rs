//! Strategies: deterministic value generators composable with
//! `prop_map`, unions, recursion, tuples, and collections.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of values of type `Self::Value`. Unlike upstream
/// proptest there is no value tree and no shrinking: `generate` draws a
/// single value.
pub trait Strategy: Clone {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Bounded recursive strategy. `levels` controls nesting depth; the
    /// `_desired_size` / `_branch` hints of upstream proptest are
    /// accepted but unused. Each level is a 50/50 union of "stop at a
    /// leaf" and "recurse one level deeper", so generated trees
    /// terminate with geometric depth bounded by `levels`.
    fn prop_recursive<R, F>(
        self,
        levels: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..levels {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased, cheaply clonable strategy (`Arc` under the hood).
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// `s.prop_map(f)`.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed arms (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Function-pointer strategy backing `any::<T>()`.
pub struct FnStrategy<V>(fn(&mut TestRng) -> V);

impl<V> Clone for FnStrategy<V> {
    fn clone(&self) -> Self {
        FnStrategy(self.0)
    }
}

impl<V> Strategy for FnStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary() -> FnStrategy<Self>;
}

pub fn any<A: Arbitrary>() -> FnStrategy<A> {
    A::arbitrary()
}

impl Arbitrary for bool {
    fn arbitrary() -> FnStrategy<bool> {
        FnStrategy(|rng| rng.next_u64() & 1 == 1)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> FnStrategy<$t> {
                FnStrategy(|rng| rng.next_u64() as $t)
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary() -> FnStrategy<f64> {
        // Finite values only: keeps arithmetic-heavy properties simple.
        FnStrategy(|rng| (rng.next_u64() as i64 as f64) / (1u64 << 32) as f64)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_i128(self.start as i128, self.end as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_i128(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let frac = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
                self.start + (frac as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($S:ident),+)),+ $(,)?) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($S,)+) = self;
                ($($S.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H)
);

/// `prop::collection::vec(elem, len_range)`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.range_i128(self.len.start as i128, self.len.end as i128) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// String strategies from a small regex subset: a sequence of atoms,
/// where an atom is a char class `[a-z0-9_]` (chars and ranges, no
/// negation) or a literal char, optionally quantified with `{m}` or
/// `{m,n}`. Covers patterns like `"[a-z]{0,8}"`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a class or a literal char.
        let class: Vec<(char, char)>;
        if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let mut ranges = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    ranges.push((chars[j], chars[j + 2]));
                    j += 3;
                } else {
                    ranges.push((chars[j], chars[j]));
                    j += 1;
                }
            }
            assert!(
                !ranges.is_empty(),
                "empty char class in pattern {pattern:?}"
            );
            class = ranges;
            i = close + 1;
        } else {
            class = vec![(chars[i], chars[i])];
            i += 1;
        }

        // Parse an optional {m} / {m,n} quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().unwrap(),
                    n.trim().parse::<usize>().unwrap(),
                ),
                None => {
                    let m = body.trim().parse::<usize>().unwrap();
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };

        let count = if lo == hi {
            lo
        } else {
            rng.range_i128(lo as i128, hi as i128 + 1) as usize
        };
        let total: u64 = class
            .iter()
            .map(|(a, b)| (*b as u64).saturating_sub(*a as u64) + 1)
            .sum();
        for _ in 0..count {
            let mut pick = rng.below(total);
            for (a, b) in &class {
                let span = (*b as u64) - (*a as u64) + 1;
                if pick < span {
                    out.push(char::from_u32(*a as u32 + pick as u32).unwrap());
                    break;
                }
                pick -= span;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy::tests", 0)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let (a, b) = (-50i32..50, 0u8..4).generate(&mut r);
            assert!((-50..50).contains(&a));
            assert!(b < 4);
        }
    }

    #[test]
    fn map_union_and_recursion_terminate() {
        #[derive(Clone, Debug, PartialEq)]
        enum T {
            Leaf(i32),
            Node(Vec<T>),
        }
        let leaf = (0i32..10).prop_map(T::Leaf);
        let strat = leaf.prop_recursive(3, 16, 3, |inner| vec(inner, 1..3).prop_map(T::Node));
        let mut r = rng();
        let mut saw_node = false;
        for _ in 0..200 {
            if let T::Node(_) = strat.generate(&mut r) {
                saw_node = true;
            }
        }
        assert!(saw_node);
    }

    #[test]
    fn pattern_strategy() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[a-z]{0,8}".generate(&mut r);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn just_yields_value() {
        let mut r = rng();
        assert_eq!(Just(7).generate(&mut r), 7);
    }
}
