//! Offline mini-proptest: the subset of the `proptest` crate this
//! workspace uses — `Strategy` with `prop_map` / `prop_recursive` /
//! `boxed`, `Just`, `any::<T>()`, range and regex-char-class strategies,
//! tuple strategies, `prop::collection::vec`, and the `proptest!` /
//! `prop_oneof!` / `prop_assert*!` macros. Generation is deterministic
//! per (test name, case index); there is NO shrinking — a failing case
//! reports its case number so it can be re-run deterministically. See
//! `vendor/README.md`.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::vec;
}

/// Mirror of proptest's `prop` facade module (`prop::collection::vec`).
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Union-of-strategies, all arms boxed to a common value type. Weighted
/// arms are not supported (the workspace uses only plain arms).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    l,
                    r,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// The test harness macro. `#[test]` rides through in the meta
/// pass-through, exactly as in upstream proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __strat = ($($strat,)+);
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&__strat, &mut __rng);
                    #[allow(unreachable_code)]
                    let mut __runner = || -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    match __runner() {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err(__e) => panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __e
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}
