//! Offline stub of `serde_json`: a `Value` tree, the `json!` macro for
//! literal construction, and `Display` emitting compact JSON — the
//! subset the bench binaries use to write result lines. There is no
//! parser and no serde integration. See `vendor/README.md`.

use std::fmt;

/// JSON value. Object keys keep insertion order (the benches only build
/// and print values, never look keys up).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Stored as the final rendered token so integers and floats of any
    /// width fit without a union of numeric types.
    Number(String),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v.to_string())
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

macro_rules! impl_from_ref {
    ($($t:ty),*) => {$(
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::from(*v)
            }
        }
    )*};
}

impl_from_ref!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, f32, f64, bool);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        if v.is_finite() {
            // Match serde_json: render floats so they round-trip; whole
            // floats keep a trailing ".0".
            let mut s = format!("{v}");
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                s.push_str(".0");
            }
            Value::Number(s)
        } else {
            Value::Null
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

// Tuples render as JSON arrays, matching upstream serde.
impl<A: Into<Value>, B: Into<Value>> From<(A, B)> for Value {
    fn from((a, b): (A, B)) -> Value {
        Value::Array(vec![a.into(), b.into()])
    }
}

impl<A: Into<Value>, B: Into<Value>, C: Into<Value>> From<(A, B, C)> for Value {
    fn from((a, b, c): (A, B, C)) -> Value {
        Value::Array(vec![a.into(), b.into(), c.into()])
    }
}

impl<K: Into<String>, V: Into<Value>> From<std::collections::BTreeMap<K, V>> for Value {
    fn from(m: std::collections::BTreeMap<K, V>) -> Value {
        Value::Object(m.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => f.write_str(n),
            Value::String(s) => escape(s, f),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Literal-construction macro covering the shapes this workspace uses:
/// objects with string-literal keys and expression values, arrays of
/// expressions, `null`, and bare expressions. (Unlike upstream, object
/// values must be expressions — nested `{...}` literals need their own
/// `json!` call, which is how every call site here is already written.)
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $elem:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $( $key:literal : $val:expr ),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::Value::from($val)) ),*
        ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::Value;

    #[test]
    fn renders_compact_json() {
        let v = json!({
            "name": "table2",
            "parts": 16usize,
            "micros": 1234u128,
            "ratio": 1.5f64,
            "ok": true,
        });
        assert_eq!(
            v.to_string(),
            r#"{"name":"table2","parts":16,"micros":1234,"ratio":1.5,"ok":true}"#
        );
    }

    #[test]
    fn arrays_null_and_escapes() {
        let v = json!({ "xs": json!([1, 2, 3]), "n": json!(null), "s": "a\"b" });
        assert_eq!(v.to_string(), r#"{"xs":[1,2,3],"n":null,"s":"a\"b"}"#);
    }

    #[test]
    fn nested_values_and_maps() {
        let inner: Vec<Value> = (0..2).map(|i| json!({ "i": i })).collect();
        let m: std::collections::BTreeMap<String, usize> =
            [("a".to_string(), 1usize)].into_iter().collect();
        let v = json!({ "queries": inner, "classes": m });
        assert_eq!(
            v.to_string(),
            r#"{"queries":[{"i":0},{"i":1}],"classes":{"a":1}}"#
        );
    }

    #[test]
    fn whole_floats_keep_point() {
        assert_eq!(Value::from(2.0f64).to_string(), "2.0");
    }
}
