//! Offline stub of `criterion`: the benchmark-declaration API used by
//! this workspace (`benchmark_group` / `sample_size` / `bench_function`
//! / `iter`, plus the `criterion_group!` / `criterion_main!` macros)
//! over a deliberately small timing loop — median of `sample_size`
//! one-iteration samples, printed to stdout. No statistics, plots, or
//! baselines. See `vendor/README.md`.

use std::fmt;
use std::time::{Duration, Instant};

/// Mirror of `criterion::Criterion`.
///
/// Like upstream, `cargo bench -- --test` puts every bench in smoke
/// mode: each routine runs once (a single sample, no warmup) so CI can
/// check that benches still compile and execute without paying for
/// measurements.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: if test_mode { 1 } else { 20 },
            test_mode,
        }
    }
}

/// Mirror of `criterion::BenchmarkId` (only the two-part constructor).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name: `BenchmarkId`, `&str`, `String`.
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    test_mode: bool,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // `--test` smoke mode pins a single sample regardless of what
        // the bench asks for.
        if !self.test_mode {
            self.sample_size = n.max(1);
        }
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        // One warmup run, then `sample_size` timed samples — except in
        // `--test` smoke mode, where the warmup is skipped too.
        if !self.test_mode {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
        }
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        println!("  {}/{label}: median {median:?}", self.name);
        self
    }

    pub fn finish(&mut self) {}
}

/// Mirror of `criterion::Bencher`.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one invocation of `routine` per sample (upstream runs many
    /// iterations per sample; a single iteration keeps stub benches
    /// fast while still exercising the code under test).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed = start.elapsed();
        drop(out);
    }
}

/// Identity stand-in for `criterion::black_box` (kept for API parity).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
