//! Offline stub of `crossbeam`: scoped threads with the
//! `crossbeam_utils::thread::scope` calling convention, implemented on
//! `std::thread::scope` (stable since Rust 1.63). See `vendor/README.md`.

pub mod thread {
    use std::any::Any;
    use std::thread::{Scope as StdScope, ScopedJoinHandle as StdHandle};

    /// Mirror of `crossbeam_utils::thread::Scope`. `Copy` so spawn
    /// closures can capture it by value and spawn nested work.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope StdScope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Mirror of `crossbeam_utils::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: StdHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` holds the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Unlike `std`, the closure receives the
        /// scope handle (crossbeam's convention), so workers can spawn
        /// siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// caller's stack. All spawned threads are joined before `scope`
    /// returns. As in crossbeam, an unjoined child panic surfaces as
    /// `Err` with the panic payload rather than unwinding the caller
    /// (std's scope re-panics after joining; we catch that here).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_join_and_borrow() {
            let data = vec![1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|v| s.spawn(move |_| *v * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 100);
        }

        #[test]
        fn child_panic_becomes_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
