//! Offline stub of `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! expand to nothing. The workspace only *derives* these traits (it never
//! bounds on them or calls serialization), so empty expansions keep every
//! type compiling unchanged. See `vendor/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
