//! Offline stub of `rand`: `StdRng::seed_from_u64` plus
//! `Rng::gen_range` over integer ranges — the only rand API this
//! workspace uses (deterministic workload generation). The generator is
//! SplitMix64; statistical quality is more than adequate for synthetic
//! data, but this is NOT the upstream ChaCha12 `StdRng` and produces a
//! different stream for the same seed. See `vendor/README.md`.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::StdRng;
}

pub mod prelude {
    pub use crate::{Rng, SeedableRng, StdRng};
}

/// SplitMix64-based deterministic RNG standing in for `rand::rngs::StdRng`.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seeding interface (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // Mix the seed once so small seeds don't start in a low-entropy
        // regime.
        let mut rng = StdRng { state: seed };
        rng.next_u64();
        StdRng { state: rng.state }
    }
}

mod private {
    pub trait Sealed {}
}

/// A range understood by `Rng::gen_range` (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T>: private::Sealed {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl private::Sealed for Range<$t> {}
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (next() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl private::Sealed for RangeInclusive<$t> {}
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (next() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Value-generation interface (only `gen_range` is provided).
pub trait Rng {
    fn next_u64_dyn(&mut self) -> u64;

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64_dyn();
        range.sample(&mut next)
    }
}

impl Rng for StdRng {
    fn next_u64_dyn(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<i64> = (0..8).map(|_| a.gen_range(0i64..1_000_000)).collect();
        let vb: Vec<i64> = (0..8).map(|_| b.gen_range(0i64..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
