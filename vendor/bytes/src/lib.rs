//! Offline stub of the `bytes` crate: just enough API for mpp-plan's
//! plan-size encoder. See `vendor/README.md` for why this exists.

/// Growable byte buffer backed by a `Vec<u8>`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Byte-writing operations (the subset of `bytes::BufMut` this workspace
/// uses).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i32_le(&mut self, v: i32);
    fn put_i64_le(&mut self, v: i64);
    fn put_f64_le(&mut self, v: f64);
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i32_le(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}
