//! Offline stub of `serde`: re-exports the no-op `Serialize` /
//! `Deserialize` derive macros. The workspace uses serde only via
//! `#[derive(...)]` on plain data types — no trait bounds, no actual
//! serialization — so empty derives satisfy every use site. The `derive`
//! and `rc` features requested by the workspace manifest exist but are
//! no-ops. See `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};
