//! Offline stub of `parking_lot`: the non-poisoning `Mutex` / `RwLock`
//! API implemented over `std::sync`. Poisoned locks are recovered
//! transparently (a panicking thread aborts the query anyway; the
//! protected registries stay structurally valid). See `vendor/README.md`.

use std::sync::{self, LockResult};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

fn recover<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// `parking_lot::Mutex`: `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.inner.lock())
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

/// `parking_lot::RwLock`: `read()` / `write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.inner.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.inner.write())
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
