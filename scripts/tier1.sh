#!/usr/bin/env bash
# Tier-1 gate: everything CI runs, runnable locally with one command.
# Fails on the first broken step.
#
#   build       release build of the whole workspace
#   test        every unit / integration / property suite
#   clippy      lints with warnings denied (first-party crates only;
#               vendor/ stubs are workspace-excluded)
#   fmt         rustfmt --check
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release =="
cargo build --release --workspace

echo "== tier1: cargo test =="
cargo test --workspace --quiet

echo "== tier1: cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "== tier1: cargo fmt --check =="
cargo fmt --all --check

echo "== tier1: OK =="
