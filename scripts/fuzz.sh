#!/usr/bin/env bash
# Differential fuzz campaign: generate random workloads, run each through
# every {planner} × {exec mode} × {exec engine} combination — each cell
# under BOTH adaptive-planning settings (per-partition specialization +
# cardinality feedback on, then off) — and the naive oracle, and diff
# results, error kinds, and partition-elimination soundness. On failure
# the case is shrunk to a minimal reproducer (pinned to the adaptive
# setting that diverged, when one setting alone reproduces it) and
# written to testkit/corpus/.
#
#   scripts/fuzz.sh                          500 cases from seed 1
#   scripts/fuzz.sh --cases 200              200 cases from seed 1
#   scripts/fuzz.sh --seed from-git-sha      base seed from HEAD (CI uses
#                                            this so every push explores a
#                                            fresh region)
#   scripts/fuzz.sh --replay path/to.case    re-run one reproducer
#
# All arguments are forwarded to the fuzz binary (see
# crates/testkit/src/bin/fuzz.rs for the full list).
set -euo pipefail
cd "$(dirname "$0")/.."

args=("$@")
if [[ ${#args[@]} -eq 0 ]]; then
  args=(--cases 500 --seed 1)
fi

cargo build --release -p mpp-testkit --bin fuzz --quiet
exec ./target/release/fuzz "${args[@]}"
