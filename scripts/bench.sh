#!/usr/bin/env bash
# Hot-path benchmark suite for the per-row expression / routing work:
#
#   expr_eval   criterion bench: interpreted vs compiled evaluation on
#               the three fast-path filter shapes over 100k rows, plus
#               partition routing at 64 vs 1024 range partitions.
#               Appends a JSON record to results/BENCH_expr.json and
#               asserts the acceptance thresholds (compiled >= 2x on
#               col-op-const; 1024-way routing sublinear vs 64-way).
#   table2      the paper's Table 2 scan-overhead binary in --quick
#               mode, to catch SELECT-with-predicate regressions in
#               either execution mode.
#   bench_qps   statement throughput at 1/4/16 concurrent sessions:
#               unprepared (re-plan every call) vs the session layer's
#               plan cache vs explicit prepared statements. Appends a
#               JSON record to results/BENCH_qps.json and asserts plan
#               reuse beats re-planning at every session count.
#   batch_pipeline
#               vectorized block engine vs row-at-a-time engine on a
#               scan+filter+agg pipeline over 10k/100k/1M rows x
#               4/64/1024 partitions, both exec modes, plus the
#               skewed-partition scheduler benchmark (one partition
#               holding ~92% of 400k rows, 4 segments) and the
#               null-fraction axis: a 1M-row nullable column at
#               0/10/50% NULLs, validity-bitmap representation vs the
#               same data force-degraded to per-datum Any columns.
#               Appends records to results/BENCH_batch.json and asserts
#               the block engine is >= 2x on the 100k scan+filter
#               pipeline, the morsel scheduler >= 2x on the skewed
#               aggregate, and the typed representation >= 2x the
#               degraded path on the 1M scan+filter at 10% NULLs. In
#               --test smoke mode only the result-equality checks run.
#   kernels     block-kernel microbenchmarks (no planner/storage):
#               filter word-mask, dual-bitmap 3VL AND/OR, and columnar
#               distribution hashing at 0/10/50% NULLs, typed vs
#               Any-degraded. Appends to results/BENCH_kernels.json.
#   join_order  cost-based join ordering vs the syntactic left-deep
#               baseline on a 6-table star schema with the selective
#               dimensions written last, after ANALYZE. Appends a JSON
#               record to results/BENCH_join_order.json and asserts the
#               acceptance criteria: cost-based >= 2x wall-clock on the
#               star query and < 10 ms planning for a 10-relation chain
#               (the DPsize ceiling). Also reports plans/sec at 2-10
#               relations, and runs the adaptive-planning benchmark:
#               per-partition join specialization vs the uniform plan
#               on a table whose DEFAULT partition holds ~98% of 400k
#               rows while every probe key falls in the covered range.
#               Appends to results/BENCH_adaptive.json and asserts
#               adaptive >= 1.5x (result-equality-gated: both plans
#               must return identical row multisets first). In --test
#               smoke mode only the result-equality checks run (both
#               orderings and both adaptive settings must agree).
#   bench_net_qps
#               the network service layer: point-lookup QPS and client
#               p50/p99 latency over the wire protocol at 1/16/128/512
#               concurrent connections against one in-process server on
#               a loopback socket, plus the server-side latency
#               histogram from a Stats frame. Appends a JSON record to
#               results/BENCH_net_qps.json.
#
# Pass --test to run everything in smoke mode (single samples, tiny row
# counts, no JSON output) — what CI uses.
#
# Pass --native to run with RUSTFLAGS="-C target-cpu=native" (fresh
# codegen against the host ISA — lets the autovectorizer use wider SIMD
# in the word-mask and hash lanes). Numbers land in the same JSON files;
# compare the last two runs. Off by default because the binaries stop
# being portable and the target/ cache is invalidated.
set -euo pipefail
cd "$(dirname "$0")/.."

args=()
native=0
for a in "$@"; do
  case "$a" in
    --native) native=1 ;;
    *) args+=("$a") ;;
  esac
done
if [[ "$native" == 1 ]]; then
  export RUSTFLAGS="${RUSTFLAGS:+$RUSTFLAGS }-C target-cpu=native"
  echo "== bench: native codegen (RUSTFLAGS=$RUSTFLAGS) =="
fi

echo "== bench: expr_eval =="
cargo bench -p mpp-bench --bench expr_eval -- ${args[@]+"${args[@]}"}

echo "== bench: table2 --quick =="
cargo run --release -p mpp-bench --bin table2 -- --quick

echo "== bench: bench_qps =="
cargo bench -p mpp-bench --bench bench_qps -- ${args[@]+"${args[@]}"}

echo "== bench: batch_pipeline =="
cargo bench -p mpp-bench --bench batch_pipeline -- ${args[@]+"${args[@]}"}

echo "== bench: kernels =="
cargo bench -p mpp-bench --bench kernels -- ${args[@]+"${args[@]}"}

echo "== bench: join_order =="
cargo bench -p mpp-bench --bench join_order -- ${args[@]+"${args[@]}"}

echo "== bench: bench_net_qps =="
cargo bench -p mpp-bench --bench bench_net_qps -- ${args[@]+"${args[@]}"}

echo "== bench: OK (see results/BENCH_expr.json, results/BENCH_qps.json, results/BENCH_batch.json, results/BENCH_kernels.json, results/BENCH_join_order.json, results/BENCH_adaptive.json, results/BENCH_net_qps.json and results/table2.json) =="
