#!/usr/bin/env bash
# Hot-path benchmark suite for the per-row expression / routing work:
#
#   expr_eval   criterion bench: interpreted vs compiled evaluation on
#               the three fast-path filter shapes over 100k rows, plus
#               partition routing at 64 vs 1024 range partitions.
#               Appends a JSON record to results/BENCH_expr.json and
#               asserts the acceptance thresholds (compiled >= 2x on
#               col-op-const; 1024-way routing sublinear vs 64-way).
#   table2      the paper's Table 2 scan-overhead binary in --quick
#               mode, to catch SELECT-with-predicate regressions in
#               either execution mode.
#   bench_qps   statement throughput at 1/4/16 concurrent sessions:
#               unprepared (re-plan every call) vs the session layer's
#               plan cache vs explicit prepared statements. Appends a
#               JSON record to results/BENCH_qps.json and asserts plan
#               reuse beats re-planning at every session count.
#   batch_pipeline
#               vectorized block engine vs row-at-a-time engine on a
#               scan+filter+agg pipeline over 10k/100k/1M rows x
#               4/64/1024 partitions, both exec modes, plus the
#               skewed-partition scheduler benchmark (one partition
#               holding ~92% of 400k rows, 4 segments): morsel-driven
#               work stealing vs the per-segment-thread baseline.
#               Appends records to results/BENCH_batch.json and asserts
#               the block engine is >= 2x on the 100k scan+filter
#               pipeline and the morsel scheduler >= 2x on the skewed
#               aggregate. In --test smoke mode the skew benchmark
#               checks morsel == per-segment result equality only.
#
# Pass --test to run everything in smoke mode (single samples, tiny row
# counts, no JSON output) — what CI uses.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== bench: expr_eval =="
cargo bench -p mpp-bench --bench expr_eval -- "$@"

echo "== bench: table2 --quick =="
cargo run --release -p mpp-bench --bin table2 -- --quick

echo "== bench: bench_qps =="
cargo bench -p mpp-bench --bench bench_qps -- "$@"

echo "== bench: batch_pipeline =="
cargo bench -p mpp-bench --bench batch_pipeline -- "$@"

echo "== bench: OK (see results/BENCH_expr.json, results/BENCH_qps.json, results/BENCH_batch.json and results/table2.json) =="
