#!/usr/bin/env bash
# End-to-end smoke of the network service layer over a real socket:
# boots the `mppd` example server on an ephemeral port, drives it with
# `mpp_cli` — ad-hoc queries, EXPLAIN, a server Stats frame, a mid-query
# cancel of a deliberately large join — and finishes with a graceful
# Shutdown frame, asserting the server process exits cleanly.
#
# What CI's net-smoke job runs. No arguments.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== net_smoke: building server examples =="
cargo build --release -p mpp-server --examples

log="$(mktemp)"
./target/release/examples/mppd --addr 127.0.0.1:0 >"$log" 2>&1 &
mppd_pid=$!
trap 'kill "$mppd_pid" 2>/dev/null || true; rm -f "$log"' EXIT

# The server prints "mppd listening on HOST:PORT" once bound.
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^mppd listening on //p' "$log" | head -n1)"
  [[ -n "$addr" ]] && break
  if ! kill -0 "$mppd_pid" 2>/dev/null; then
    echo "mppd died during startup:" >&2
    cat "$log" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -n "$addr" ]] || { echo "mppd never reported its address" >&2; cat "$log" >&2; exit 1; }
echo "== net_smoke: mppd up on $addr =="

cli=./target/release/examples/mpp_cli

echo "== net_smoke: ad-hoc queries =="
"$cli" "$addr" "SELECT count(*) FROM r" "SELECT b, count(*) FROM r WHERE b < 20 GROUP BY b"
"$cli" "$addr" "EXPLAIN SELECT count(*) FROM r WHERE b = 7"

echo "== net_smoke: error frames keep the connection healthy =="
if "$cli" "$addr" "SELEKT nope" 2>/dev/null; then
  echo "parse error must fail the CLI" >&2
  exit 1
fi

echo "== net_smoke: mid-query cancel =="
"$cli" "$addr" --cancel-after-block \
  "SELECT r.a, r.b, s.a, s.b FROM r JOIN s ON r.b = s.b"

echo "== net_smoke: server stats =="
"$cli" "$addr" --stats

echo "== net_smoke: graceful shutdown =="
"$cli" "$addr" --shutdown
for _ in $(seq 1 100); do
  kill -0 "$mppd_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$mppd_pid" 2>/dev/null; then
  echo "mppd did not exit after Shutdown frame" >&2
  exit 1
fi
wait "$mppd_pid" || { echo "mppd exited non-zero" >&2; cat "$log" >&2; exit 1; }
trap 'rm -f "$log"' EXIT

echo "== net_smoke: server log =="
cat "$log"
echo "== net_smoke: OK =="
