//! The static type lattice.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Data types supported by the engine.
///
/// Deliberately small: the paper's workloads only need integers, decimals
/// (modelled as `Float64`), strings, booleans and dates. `Date` is stored as
/// days since the epoch, which makes range partitioning on dates identical to
/// range partitioning on integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Bool,
    Int32,
    Int64,
    Float64,
    Utf8,
    /// Days since 1970-01-01.
    Date,
}

impl DataType {
    /// True if values of this type can be compared with `<`/`>` in a way
    /// that is meaningful for range partitioning.
    pub fn is_orderable(self) -> bool {
        true
    }

    /// True for the numeric types (arithmetic is defined).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int32 | DataType::Int64 | DataType::Float64)
    }

    /// The common type two operands are coerced to for comparison and
    /// arithmetic, if any.
    pub fn common_super_type(a: DataType, b: DataType) -> Option<DataType> {
        use DataType::*;
        if a == b {
            return Some(a);
        }
        match (a, b) {
            (Int32, Int64) | (Int64, Int32) => Some(Int64),
            (Int32, Float64) | (Float64, Int32) => Some(Float64),
            (Int64, Float64) | (Float64, Int64) => Some(Float64),
            // Dates are comparable with every numeric type (as their day
            // number): comparability must be transitive across the whole
            // numeric class or the total order on Datum would break.
            (Date, Int32) | (Int32, Date) => Some(Date),
            (Date, Int64) | (Int64, Date) => Some(Date),
            (Date, Float64) | (Float64, Date) => Some(Float64),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int32 => "int4",
            DataType::Int64 => "int8",
            DataType::Float64 => "float8",
            DataType::Utf8 => "text",
            DataType::Date => "date",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_super_type_numeric_widening() {
        assert_eq!(
            DataType::common_super_type(DataType::Int32, DataType::Int64),
            Some(DataType::Int64)
        );
        assert_eq!(
            DataType::common_super_type(DataType::Int64, DataType::Float64),
            Some(DataType::Float64)
        );
        assert_eq!(
            DataType::common_super_type(DataType::Utf8, DataType::Int32),
            None
        );
        assert_eq!(
            DataType::common_super_type(DataType::Date, DataType::Date),
            Some(DataType::Date)
        );
    }

    #[test]
    fn display_names_match_postgres_flavor() {
        assert_eq!(DataType::Int32.to_string(), "int4");
        assert_eq!(DataType::Utf8.to_string(), "text");
    }

    #[test]
    fn numeric_predicate() {
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
        assert!(!DataType::Date.is_numeric());
    }
}
