//! Columnar batches: [`ColumnVec`] and [`RowBlock`].
//!
//! The executor's vectorized engine moves tuples between operators as
//! column-major blocks instead of one [`Row`] at a time. A block holds one
//! [`ColumnVec`] per output column plus an optional *selection vector* — the
//! list of physical row indices that are logically present. Filters refine
//! the selection without touching the columns; projections drop or reorder
//! the `Arc`-shared columns without touching the rows; motions clone blocks
//! by bumping refcounts.
//!
//! A `ColumnVec` stores values in a typed vector when the column is
//! null-free and monotyped (`Vec<i64>`, `Vec<f64>`, …) and degrades to a
//! `Vec<Datum>` (`ColumnVec::Any`) the moment a NULL or a second runtime
//! type appears. Typed vectors are what make tight per-kind predicate loops
//! possible (`mpp_expr`'s batch evaluator); the `Any` fallback keeps every
//! SQL value representable with unchanged semantics.
//!
//! Invariants:
//! * every column of a block has exactly `rows` physical entries;
//! * every selection index is `< rows` and indices are in increasing order
//!   (operators only ever *refine* selections, so order is preserved);
//! * `Row`↔block conversion is lossless: `RowBlock::from_rows(rows).to_rows()
//!   == rows` for equal-width rows.

use crate::row::{hash_combine, Row, HASH_COLUMNS_SEED};
use crate::value::{
    dist_hash_bool, dist_hash_f64, dist_hash_int, dist_hash_null, dist_hash_str, Datum,
};
use std::sync::Arc;

/// One column of a [`RowBlock`]: typed and null-free, or the `Any`
/// fallback holding arbitrary datums.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVec {
    Bool(Vec<bool>),
    Int32(Vec<i32>),
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    /// Days since 1970-01-01, like [`Datum::Date`].
    Date(Vec<i32>),
    Str(Vec<Arc<str>>),
    /// Fallback for columns containing NULLs or mixed runtime types.
    Any(Vec<Datum>),
}

impl ColumnVec {
    /// Physical length of the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Bool(v) => v.len(),
            ColumnVec::Int32(v) => v.len(),
            ColumnVec::Int64(v) => v.len(),
            ColumnVec::Float64(v) => v.len(),
            ColumnVec::Date(v) => v.len(),
            ColumnVec::Str(v) => v.len(),
            ColumnVec::Any(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An empty column that will re-type itself on first push.
    pub fn empty() -> ColumnVec {
        ColumnVec::Any(Vec::new())
    }

    /// The datum at physical index `i`. Cheap for every variant (`Str`
    /// clones an `Arc`).
    #[inline]
    pub fn get(&self, i: usize) -> Datum {
        match self {
            ColumnVec::Bool(v) => Datum::Bool(v[i]),
            ColumnVec::Int32(v) => Datum::Int32(v[i]),
            ColumnVec::Int64(v) => Datum::Int64(v[i]),
            ColumnVec::Float64(v) => Datum::Float64(v[i]),
            ColumnVec::Date(v) => Datum::Date(v[i]),
            ColumnVec::Str(v) => Datum::Str(Arc::clone(&v[i])),
            ColumnVec::Any(v) => v[i].clone(),
        }
    }

    /// Build a column from owned datums, choosing the typed representation
    /// when the values are null-free and monotyped.
    pub fn from_datums(values: Vec<Datum>) -> ColumnVec {
        // Decide the representation from the first value, then verify.
        let uniform = |values: &[Datum]| -> Option<ColumnVec> {
            match values.first()? {
                Datum::Bool(_) => {
                    let mut out = Vec::with_capacity(values.len());
                    for d in values {
                        match d {
                            Datum::Bool(b) => out.push(*b),
                            _ => return None,
                        }
                    }
                    Some(ColumnVec::Bool(out))
                }
                Datum::Int32(_) => {
                    let mut out = Vec::with_capacity(values.len());
                    for d in values {
                        match d {
                            Datum::Int32(v) => out.push(*v),
                            _ => return None,
                        }
                    }
                    Some(ColumnVec::Int32(out))
                }
                Datum::Int64(_) => {
                    let mut out = Vec::with_capacity(values.len());
                    for d in values {
                        match d {
                            Datum::Int64(v) => out.push(*v),
                            _ => return None,
                        }
                    }
                    Some(ColumnVec::Int64(out))
                }
                Datum::Float64(_) => {
                    let mut out = Vec::with_capacity(values.len());
                    for d in values {
                        match d {
                            Datum::Float64(v) => out.push(*v),
                            _ => return None,
                        }
                    }
                    Some(ColumnVec::Float64(out))
                }
                Datum::Date(_) => {
                    let mut out = Vec::with_capacity(values.len());
                    for d in values {
                        match d {
                            Datum::Date(v) => out.push(*v),
                            _ => return None,
                        }
                    }
                    Some(ColumnVec::Date(out))
                }
                Datum::Str(_) => {
                    let mut out = Vec::with_capacity(values.len());
                    for d in values {
                        match d {
                            Datum::Str(s) => out.push(Arc::clone(s)),
                            _ => return None,
                        }
                    }
                    Some(ColumnVec::Str(out))
                }
                Datum::Null => None,
            }
        };
        match uniform(&values) {
            Some(typed) => typed,
            None => ColumnVec::Any(values),
        }
    }

    /// A column of `n` copies of `d` (constant broadcast).
    pub fn broadcast(d: &Datum, n: usize) -> ColumnVec {
        match d {
            Datum::Bool(b) => ColumnVec::Bool(vec![*b; n]),
            Datum::Int32(v) => ColumnVec::Int32(vec![*v; n]),
            Datum::Int64(v) => ColumnVec::Int64(vec![*v; n]),
            Datum::Float64(v) => ColumnVec::Float64(vec![*v; n]),
            Datum::Date(v) => ColumnVec::Date(vec![*v; n]),
            Datum::Str(s) => ColumnVec::Str(vec![Arc::clone(s); n]),
            Datum::Null => ColumnVec::Any(vec![Datum::Null; n]),
        }
    }

    /// Append one datum, degrading the representation in place when the
    /// value does not fit the current typed vector.
    pub fn push(&mut self, d: Datum) {
        match (&mut *self, &d) {
            (ColumnVec::Bool(v), Datum::Bool(b)) => v.push(*b),
            (ColumnVec::Int32(v), Datum::Int32(x)) => v.push(*x),
            (ColumnVec::Int64(v), Datum::Int64(x)) => v.push(*x),
            (ColumnVec::Float64(v), Datum::Float64(x)) => v.push(*x),
            (ColumnVec::Date(v), Datum::Date(x)) => v.push(*x),
            (ColumnVec::Str(v), Datum::Str(s)) => v.push(Arc::clone(s)),
            (ColumnVec::Any(v), _) => {
                if v.is_empty() {
                    // Re-type an empty fallback column on first push.
                    *self = ColumnVec::from_datums(vec![d]);
                } else {
                    v.push(d);
                }
            }
            _ => {
                self.degrade();
                match self {
                    ColumnVec::Any(v) => v.push(d),
                    _ => unreachable!("degrade always yields Any"),
                }
            }
        }
    }

    /// Convert the representation to `Any` in place.
    fn degrade(&mut self) {
        let datums: Vec<Datum> = (0..self.len()).map(|i| self.get(i)).collect();
        *self = ColumnVec::Any(datums);
    }

    /// A new column holding the rows at `idx`, in that order.
    pub fn gather(&self, idx: &[u32]) -> ColumnVec {
        match self {
            ColumnVec::Bool(v) => ColumnVec::Bool(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnVec::Int32(v) => ColumnVec::Int32(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnVec::Int64(v) => ColumnVec::Int64(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnVec::Float64(v) => {
                ColumnVec::Float64(idx.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnVec::Date(v) => ColumnVec::Date(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnVec::Str(v) => {
                ColumnVec::Str(idx.iter().map(|&i| Arc::clone(&v[i as usize])).collect())
            }
            ColumnVec::Any(v) => {
                ColumnVec::Any(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }

    /// Append `other`'s rows at `idx` (all of `other` when `idx` is `None`),
    /// degrading the representation if the variants differ.
    pub fn extend_gather(&mut self, other: &ColumnVec, idx: Option<&[u32]>) {
        use ColumnVec::*;
        match (&mut *self, other, idx) {
            (Bool(a), Bool(b), None) => a.extend_from_slice(b),
            (Int32(a), Int32(b), None) => a.extend_from_slice(b),
            (Int64(a), Int64(b), None) => a.extend_from_slice(b),
            (Float64(a), Float64(b), None) => a.extend_from_slice(b),
            (Date(a), Date(b), None) => a.extend_from_slice(b),
            (Str(a), Str(b), None) => a.extend(b.iter().map(Arc::clone)),
            (Any(a), Any(b), None) if !a.is_empty() => a.extend(b.iter().cloned()),
            (Bool(a), Bool(b), Some(idx)) => a.extend(idx.iter().map(|&i| b[i as usize])),
            (Int32(a), Int32(b), Some(idx)) => a.extend(idx.iter().map(|&i| b[i as usize])),
            (Int64(a), Int64(b), Some(idx)) => a.extend(idx.iter().map(|&i| b[i as usize])),
            (Float64(a), Float64(b), Some(idx)) => a.extend(idx.iter().map(|&i| b[i as usize])),
            (Date(a), Date(b), Some(idx)) => a.extend(idx.iter().map(|&i| b[i as usize])),
            (Str(a), Str(b), Some(idx)) => {
                a.extend(idx.iter().map(|&i| Arc::clone(&b[i as usize])))
            }
            (Any(a), Any(b), Some(idx)) if !a.is_empty() => {
                a.extend(idx.iter().map(|&i| b[i as usize].clone()))
            }
            (this, other, idx) => {
                if this.is_empty() {
                    *this = match idx {
                        None => other.clone(),
                        Some(idx) => other.gather(idx),
                    };
                    return;
                }
                this.degrade();
                let Any(a) = this else {
                    unreachable!("degrade always yields Any")
                };
                match idx {
                    None => a.extend((0..other.len()).map(|i| other.get(i))),
                    Some(idx) => a.extend(idx.iter().map(|&i| other.get(i as usize))),
                }
            }
        }
    }

    /// Distribution hash of the value at physical index `i`, identical to
    /// `Datum::distribution_hash` of [`ColumnVec::get`]`(i)`.
    #[inline]
    pub fn dist_hash(&self, i: usize) -> u64 {
        match self {
            ColumnVec::Bool(v) => dist_hash_bool(v[i]),
            ColumnVec::Int32(v) => dist_hash_int(v[i] as i64),
            ColumnVec::Int64(v) => dist_hash_int(v[i]),
            ColumnVec::Float64(v) => dist_hash_f64(v[i]),
            ColumnVec::Date(v) => dist_hash_int(v[i] as i64),
            ColumnVec::Str(v) => dist_hash_str(&v[i]),
            ColumnVec::Any(v) => match &v[i] {
                Datum::Null => dist_hash_null(),
                d => d.distribution_hash(),
            },
        }
    }
}

/// A column-major batch of rows with an optional selection vector.
///
/// Columns are `Arc`-shared: cloning a block, projecting columns, and
/// storing blocks in the motion cache are refcount bumps. The selection
/// vector (when present) lists the physical row indices that are logically
/// in the block, in increasing order; `len()` counts selected rows.
#[derive(Debug, Clone)]
pub struct RowBlock {
    columns: Vec<Arc<ColumnVec>>,
    /// Physical row count (every column's length).
    rows: usize,
    sel: Option<Vec<u32>>,
}

impl RowBlock {
    /// A block over pre-built columns (no selection). Every column must
    /// have exactly `rows` entries.
    pub fn from_columns(columns: Vec<Arc<ColumnVec>>, rows: usize) -> RowBlock {
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        RowBlock {
            columns,
            rows,
            sel: None,
        }
    }

    /// An empty block of the given width.
    pub fn empty(width: usize) -> RowBlock {
        RowBlock {
            columns: (0..width).map(|_| Arc::new(ColumnVec::empty())).collect(),
            rows: 0,
            sel: None,
        }
    }

    /// Column-major conversion from rows. `width` fixes the column count
    /// (needed when `rows` is empty); rows shorter than `width` pad with
    /// NULL and longer rows truncate — the SQL layer never produces ragged
    /// rows, so this only normalizes hand-built plans.
    pub fn from_rows(rows: &[Row], width: usize) -> RowBlock {
        let mut cols: Vec<ColumnVec> = (0..width).map(|_| ColumnVec::empty()).collect();
        for r in rows {
            for (c, col) in cols.iter_mut().enumerate() {
                col.push(r.get(c).cloned().unwrap_or(Datum::Null));
            }
        }
        RowBlock {
            columns: cols.into_iter().map(Arc::new).collect(),
            rows: rows.len(),
            sel: None,
        }
    }

    /// Row-major conversion back to rows (selected rows only, in order).
    pub fn to_rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.len());
        match &self.sel {
            None => {
                for i in 0..self.rows {
                    out.push(self.row_at_phys(i));
                }
            }
            Some(sel) => {
                for &i in sel {
                    out.push(self.row_at_phys(i as usize));
                }
            }
        }
        out
    }

    /// Materialize the row at *physical* index `i` (ignores the selection).
    pub fn row_at_phys(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.get(i)).collect())
    }

    /// Number of selected (logical) rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            None => self.rows,
            Some(sel) => sel.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical row count, the length of every column.
    pub fn phys_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    pub fn columns(&self) -> &[Arc<ColumnVec>] {
        &self.columns
    }

    pub fn column(&self, c: usize) -> &ColumnVec {
        &self.columns[c]
    }

    /// The selection vector, if any (physical indices, increasing).
    pub fn sel(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Physical index of logical row `i`.
    #[inline]
    pub fn phys_index(&self, i: usize) -> usize {
        match &self.sel {
            None => i,
            Some(sel) => sel[i] as usize,
        }
    }

    /// The datum at (logical row, column).
    #[inline]
    pub fn datum_at(&self, row: usize, col: usize) -> Datum {
        self.columns[col].get(self.phys_index(row))
    }

    /// Replace the selection with `sel` (physical indices into this
    /// block's columns — callers produce refinements, so indices must
    /// already be a subset of the current selection).
    pub fn with_sel(mut self, sel: Vec<u32>) -> RowBlock {
        debug_assert!(sel.iter().all(|&i| (i as usize) < self.rows));
        self.sel = Some(sel);
        self
    }

    /// Keep only the first `n` selected rows (LIMIT).
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len() {
            return;
        }
        match &mut self.sel {
            Some(sel) => sel.truncate(n),
            None => self.sel = Some((0..n as u32).collect()),
        }
    }

    /// Gather the selection into dense columns (selection becomes `None`).
    /// No-op (refcount bumps only) when nothing is filtered out.
    pub fn compact(&self) -> RowBlock {
        match &self.sel {
            None => self.clone(),
            Some(sel) => RowBlock {
                columns: self
                    .columns
                    .iter()
                    .map(|c| Arc::new(c.gather(sel)))
                    .collect(),
                rows: sel.len(),
                sel: None,
            },
        }
    }

    /// A view of the logical rows `lo..hi` (morsel cut). Columns are
    /// shared, not copied: a dense block gets a dense range selection, a
    /// filtered block a sub-slice of its selection. `lo == 0 && hi ==
    /// len()` returns a plain clone so single-morsel blocks stay dense.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> RowBlock {
        debug_assert!(lo <= hi && hi <= self.len());
        if lo == 0 && hi == self.len() {
            return self.clone();
        }
        let sel = match &self.sel {
            None => (lo as u32..hi as u32).collect(),
            Some(sel) => sel[lo..hi].to_vec(),
        };
        RowBlock {
            columns: self.columns.clone(),
            rows: self.rows,
            sel: Some(sel),
        }
    }

    /// Keep the listed columns, in order (projection by position). Columns
    /// are shared, not copied; the selection carries over.
    pub fn project(&self, cols: &[usize]) -> RowBlock {
        RowBlock {
            columns: cols.iter().map(|&c| Arc::clone(&self.columns[c])).collect(),
            rows: self.rows,
            sel: self.sel.clone(),
        }
    }

    /// Concatenate blocks (all of width `width`) into one dense block.
    pub fn concat(blocks: &[RowBlock], width: usize) -> RowBlock {
        if blocks.len() == 1 && blocks[0].sel.is_none() {
            return blocks[0].clone();
        }
        let mut cols: Vec<ColumnVec> = (0..width).map(|_| ColumnVec::empty()).collect();
        let mut rows = 0usize;
        for b in blocks {
            debug_assert_eq!(b.width(), width);
            rows += b.len();
            for (c, col) in cols.iter_mut().enumerate() {
                col.extend_gather(&b.columns[c], b.sel());
            }
        }
        RowBlock {
            columns: cols.into_iter().map(Arc::new).collect(),
            rows,
            sel: None,
        }
    }

    /// Append rows in place, copy-on-writing any `Arc`-shared column.
    /// Only valid on dense blocks (no selection) — the storage engine's
    /// resident blocks are always dense.
    pub fn append_rows(&mut self, rows: &[Row]) {
        assert!(self.sel.is_none(), "append_rows on a filtered block");
        for (c, col) in self.columns.iter_mut().enumerate() {
            let col = Arc::make_mut(col);
            for r in rows {
                col.push(r.get(c).cloned().unwrap_or(Datum::Null));
            }
        }
        self.rows += rows.len();
    }

    /// Per-selected-row hash of the listed columns — bit-identical to
    /// calling [`Row::hash_columns`] on each materialized row, computed
    /// column-at-a-time.
    pub fn hash_columns(&self, indices: &[usize]) -> Vec<u64> {
        let n = self.len();
        let mut hs = vec![HASH_COLUMNS_SEED; n];
        for &c in indices {
            let col = &self.columns[c];
            match &self.sel {
                None => {
                    for (i, h) in hs.iter_mut().enumerate() {
                        *h = hash_combine(*h, col.dist_hash(i));
                    }
                }
                Some(sel) => {
                    for (k, h) in hs.iter_mut().enumerate() {
                        *h = hash_combine(*h, col.dist_hash(sel[k] as usize));
                    }
                }
            }
        }
        hs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn sample_rows() -> Vec<Row> {
        vec![
            row![1i32, "a", 1.5f64],
            row![2i32, "b", 2.5f64],
            row![3i32, "c", 3.5f64],
            row![4i32, "d", 4.5f64],
        ]
    }

    #[test]
    fn from_rows_roundtrip() {
        let rows = sample_rows();
        let b = RowBlock::from_rows(&rows, 3);
        assert_eq!(b.len(), 4);
        assert_eq!(b.width(), 3);
        assert_eq!(b.to_rows(), rows);
        // Null-free monotyped columns pick the typed representation.
        assert!(matches!(b.column(0), ColumnVec::Int32(_)));
        assert!(matches!(b.column(1), ColumnVec::Str(_)));
        assert!(matches!(b.column(2), ColumnVec::Float64(_)));
    }

    #[test]
    fn nulls_degrade_to_any() {
        let rows = vec![row![1i32], Row::new(vec![Datum::Null]), row![3i32]];
        let b = RowBlock::from_rows(&rows, 1);
        assert!(matches!(b.column(0), ColumnVec::Any(_)));
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn mixed_types_degrade_to_any() {
        let rows = vec![row![1i32], row![2i64]];
        let b = RowBlock::from_rows(&rows, 1);
        assert!(matches!(b.column(0), ColumnVec::Any(_)));
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn selection_filters_to_rows() {
        let rows = sample_rows();
        let b = RowBlock::from_rows(&rows, 3).with_sel(vec![1, 3]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.to_rows(), vec![rows[1].clone(), rows[3].clone()]);
        let c = b.compact();
        assert_eq!(c.len(), 2);
        assert!(c.sel().is_none());
        assert_eq!(c.to_rows(), b.to_rows());
    }

    #[test]
    fn project_shares_columns() {
        let b = RowBlock::from_rows(&sample_rows(), 3);
        let p = b.project(&[2, 0]);
        assert_eq!(p.width(), 2);
        assert_eq!(p.to_rows()[0], row![1.5f64, 1i32]);
        assert!(Arc::ptr_eq(&p.columns()[1], &b.columns()[0]));
    }

    #[test]
    fn concat_preserves_selection_and_types() {
        let rows = sample_rows();
        let a = RowBlock::from_rows(&rows[..2], 3);
        let b = RowBlock::from_rows(&rows[2..], 3).with_sel(vec![1]);
        let c = RowBlock::concat(&[a, b], 3);
        assert_eq!(c.len(), 3);
        assert!(c.sel().is_none());
        assert_eq!(
            c.to_rows(),
            vec![rows[0].clone(), rows[1].clone(), rows[3].clone()]
        );
        assert!(matches!(c.column(0), ColumnVec::Int32(_)));
    }

    #[test]
    fn hash_columns_matches_row_hash() {
        let rows = vec![
            row![1i32, "a", 1.5f64],
            Row::new(vec![Datum::Null, Datum::str("b"), Datum::Int64(7)]),
            row![3i64, "c", 3.5f64],
            Row::new(vec![
                Datum::Bool(true),
                Datum::str("d"),
                Datum::Float64(4.0),
            ]),
            Row::new(vec![
                Datum::Date(15_000),
                Datum::str("e"),
                Datum::Float64(-0.25),
            ]),
        ];
        let b = RowBlock::from_rows(&rows, 3);
        for idx in [vec![0usize], vec![2], vec![0, 1, 2], vec![2, 0]] {
            let hs = b.hash_columns(&idx);
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(hs[i], r.hash_columns(&idx), "cols {idx:?} row {i}");
            }
        }
        // And under a selection.
        let s = b.clone().with_sel(vec![0, 2, 4]);
        let hs = s.hash_columns(&[0, 2]);
        assert_eq!(hs.len(), 3);
        for (k, &i) in [0usize, 2, 4].iter().enumerate() {
            assert_eq!(hs[k], rows[i].hash_columns(&[0, 2]));
        }
    }

    #[test]
    fn truncate_limits_selected_rows() {
        let mut b = RowBlock::from_rows(&sample_rows(), 3);
        b.truncate(2);
        assert_eq!(b.len(), 2);
        let mut s = RowBlock::from_rows(&sample_rows(), 3).with_sel(vec![0, 2, 3]);
        s.truncate(2);
        assert_eq!(s.to_rows().len(), 2);
        assert_eq!(s.to_rows()[1], sample_rows()[2]);
    }

    #[test]
    fn slice_rows_cuts_logical_ranges() {
        let rows = sample_rows();
        let b = RowBlock::from_rows(&rows, 3);
        // Whole-range slice of a dense block stays dense (shared columns).
        let whole = b.slice_rows(0, 4);
        assert!(whole.sel().is_none());
        assert!(Arc::ptr_eq(&whole.columns()[0], &b.columns()[0]));
        let m = b.slice_rows(1, 3);
        assert_eq!(m.to_rows(), vec![rows[1].clone(), rows[2].clone()]);
        assert!(Arc::ptr_eq(&m.columns()[0], &b.columns()[0]));
        // Slicing a filtered block sub-slices its selection.
        let f = b.clone().with_sel(vec![0, 2, 3]);
        let fm = f.slice_rows(1, 3);
        assert_eq!(fm.to_rows(), vec![rows[2].clone(), rows[3].clone()]);
        assert!(fm.slice_rows(0, 0).is_empty());
        // Morsel cuts tile the block: concatenation restores the rows.
        let parts: Vec<RowBlock> = (0..2).map(|k| b.slice_rows(k * 2, k * 2 + 2)).collect();
        let back = RowBlock::concat(&parts, 3);
        assert_eq!(back.to_rows(), rows);
    }

    #[test]
    fn push_degrades_in_place() {
        let mut c = ColumnVec::from_datums(vec![Datum::Int32(1), Datum::Int32(2)]);
        assert!(matches!(c, ColumnVec::Int32(_)));
        c.push(Datum::Null);
        assert!(matches!(c, ColumnVec::Any(_)));
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Datum::Int32(1));
        assert_eq!(c.get(2), Datum::Null);
        // Empty fallback re-types on first push.
        let mut e = ColumnVec::empty();
        e.push(Datum::str("x"));
        assert!(matches!(e, ColumnVec::Str(_)));
    }
}
