//! Columnar batches: [`ColumnVec`] and [`RowBlock`].
//!
//! The executor's vectorized engine moves tuples between operators as
//! column-major blocks instead of one [`Row`] at a time. A block holds one
//! [`ColumnVec`] per output column plus an optional *selection vector* — the
//! list of physical row indices that are logically present. Filters refine
//! the selection without touching the columns; projections drop or reorder
//! the `Arc`-shared columns without touching the rows; motions clone blocks
//! by bumping refcounts.
//!
//! A `ColumnVec` stores values in a typed vector when the column is
//! monotyped (`Vec<i64>`, `Vec<f64>`, …) plus an optional word-packed
//! validity bitmap ([`ColumnVec::validity`]) marking which slots are
//! non-NULL, and degrades to a `Vec<Datum>` ([`ColumnData::Any`]) only when
//! a second runtime type appears (or the column is entirely NULL, leaving
//! its type unknown). Typed vectors are what make tight per-kind predicate
//! loops possible (`mpp_expr`'s batch evaluator); the validity bitmap keeps
//! nullable columns on those typed paths; the `Any` fallback keeps every
//! SQL value representable with unchanged semantics.
//!
//! Invariants:
//! * every column of a block has exactly `rows` physical entries;
//! * every selection index is `< rows` and indices are in increasing order
//!   (operators only ever *refine* selections, so order is preserved);
//! * `Row`↔block conversion is lossless: `RowBlock::from_rows(rows).to_rows()
//!   == rows` for equal-width rows.
//!
//! Validity bitmap invariants (enforced by every constructor):
//! * `valid` is `None` when every slot is non-NULL (all-valid normalizes to
//!   `None`, so derived equality is representation-independent), and never
//!   present on an `Any` column (NULLs live as `Datum::Null` there);
//! * when present, the bitmap has `len().div_ceil(64)` words, bit `i` set
//!   iff slot `i` is non-NULL, and the tail bits of the last word zero;
//! * invalid slots hold a canonical *dummy* value (`false`, `0`, `0.0`,
//!   `""`), so kernels may run branch-free over all slots and two columns
//!   with equal logical contents compare equal.

use crate::row::{hash_combine, Row, HASH_COLUMNS_SEED};
use crate::value::{
    dist_hash_bool, dist_hash_f64, dist_hash_int, dist_hash_null, dist_hash_str, Datum,
};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Word-packed bitmap helpers (shared with the batch kernels).
// ---------------------------------------------------------------------

/// Bit `i` of a word-packed bitmap.
#[inline]
pub fn bitmap_get(words: &[u64], i: usize) -> bool {
    (words[i >> 6] >> (i & 63)) & 1 != 0
}

#[inline]
fn bitmap_set(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1 << (i & 63);
}

/// An all-ones bitmap of `n` bits with a zeroed tail.
pub fn bitmap_ones(n: usize) -> Vec<u64> {
    let mut words = vec![u64::MAX; n.div_ceil(64)];
    bitmap_zero_tail(&mut words, n);
    words
}

/// Clear the bits at and past `n` (the tail of the last word).
#[inline]
pub fn bitmap_zero_tail(words: &mut [u64], n: usize) {
    if n & 63 != 0 {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << (n & 63)) - 1;
        }
    }
}

/// Number of set bits.
#[inline]
pub fn bitmap_count(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Append one bit to a validity bitmap of `len` bits (`None` = all valid),
/// materializing the bitmap only when the first invalid bit arrives.
fn validity_push(valid: &mut Option<Vec<u64>>, len: usize, is_valid: bool) {
    if valid.is_none() {
        if is_valid {
            return;
        }
        *valid = Some(bitmap_ones(len));
    }
    let words = valid.as_mut().unwrap();
    if len & 63 == 0 {
        words.push(0);
    }
    if is_valid {
        bitmap_set(words, len);
    }
}

/// The dense value buffer of a [`ColumnVec`]: typed, or the `Any`
/// fallback holding arbitrary datums.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Bool(Vec<bool>),
    Int32(Vec<i32>),
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    /// Days since 1970-01-01, like [`Datum::Date`].
    Date(Vec<i32>),
    Str(Vec<Arc<str>>),
    /// Fallback for columns of mixed runtime types (or all-NULL columns,
    /// whose type is unknown).
    Any(Vec<Datum>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int32(v) => v.len(),
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Any(v) => v.len(),
        }
    }

    /// Overwrite every invalid slot with the canonical dummy value.
    fn scrub_invalid(&mut self, valid: &[u64]) {
        macro_rules! scrub {
            ($v:expr, $dummy:expr) => {
                for (i, x) in $v.iter_mut().enumerate() {
                    if !bitmap_get(valid, i) {
                        *x = $dummy;
                    }
                }
            };
        }
        match self {
            ColumnData::Bool(v) => scrub!(v, false),
            ColumnData::Int32(v) => scrub!(v, 0),
            ColumnData::Int64(v) => scrub!(v, 0),
            ColumnData::Float64(v) => scrub!(v, 0.0),
            ColumnData::Date(v) => scrub!(v, 0),
            ColumnData::Str(v) => {
                let empty: Arc<str> = Arc::from("");
                scrub!(v, Arc::clone(&empty))
            }
            ColumnData::Any(_) => unreachable!("validity bitmap on an Any column"),
        }
    }
}

/// One column of a [`RowBlock`]: a dense [`ColumnData`] buffer plus an
/// optional validity bitmap (see the module docs for the invariants).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVec {
    data: ColumnData,
    valid: Option<Vec<u64>>,
}

impl ColumnVec {
    /// Physical length of the column.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An empty column that will re-type itself on first push.
    pub fn empty() -> ColumnVec {
        ColumnVec {
            data: ColumnData::Any(Vec::new()),
            valid: None,
        }
    }

    /// The dense value buffer. Callers matching a typed variant must also
    /// consult [`Self::validity`] — invalid slots hold dummy values.
    #[inline]
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The validity bitmap: `None` means every slot is non-NULL.
    #[inline]
    pub fn validity(&self) -> Option<&[u64]> {
        self.valid.as_deref()
    }

    /// Is slot `i` non-NULL? (Always true for `Any` columns, whose NULLs
    /// live in the datums themselves.)
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.valid {
            None => true,
            Some(w) => bitmap_get(w, i),
        }
    }

    /// Number of NULL slots.
    pub fn null_count(&self) -> usize {
        match (&self.data, &self.valid) {
            (ColumnData::Any(v), _) => v.iter().filter(|d| d.is_null()).count(),
            (_, None) => 0,
            (_, Some(w)) => self.len() - bitmap_count(w),
        }
    }

    /// Assemble a column from a dense buffer and validity bitmap,
    /// canonicalizing: all-valid normalizes to `None`, tail bits are
    /// cleared, and invalid slots are scrubbed to the dummy value.
    /// Panics if `valid` is present on an `Any` buffer or has the wrong
    /// word count.
    pub fn from_parts(mut data: ColumnData, valid: Option<Vec<u64>>) -> ColumnVec {
        let n = data.len();
        let valid = match valid {
            None => None,
            Some(mut words) => {
                assert!(
                    !matches!(data, ColumnData::Any(_)),
                    "validity bitmap on an Any column"
                );
                assert_eq!(words.len(), n.div_ceil(64), "validity word count");
                bitmap_zero_tail(&mut words, n);
                if bitmap_count(&words) == n {
                    None
                } else {
                    data.scrub_invalid(&words);
                    Some(words)
                }
            }
        };
        ColumnVec { data, valid }
    }

    /// A null-free column over a dense buffer.
    pub fn from_data(data: ColumnData) -> ColumnVec {
        ColumnVec { data, valid: None }
    }

    /// The datum at physical index `i`. Cheap for every variant (`Str`
    /// clones an `Arc`).
    #[inline]
    pub fn get(&self, i: usize) -> Datum {
        if let Some(w) = &self.valid {
            if !bitmap_get(w, i) {
                return Datum::Null;
            }
        }
        match &self.data {
            ColumnData::Bool(v) => Datum::Bool(v[i]),
            ColumnData::Int32(v) => Datum::Int32(v[i]),
            ColumnData::Int64(v) => Datum::Int64(v[i]),
            ColumnData::Float64(v) => Datum::Float64(v[i]),
            ColumnData::Date(v) => Datum::Date(v[i]),
            ColumnData::Str(v) => Datum::Str(Arc::clone(&v[i])),
            ColumnData::Any(v) => v[i].clone(),
        }
    }

    /// Build a column from owned datums in a single pass: the first
    /// non-NULL value decides the typed representation (earlier NULLs
    /// backfill as invalid dummy slots), a second runtime type degrades
    /// to `Any`, and an all-NULL column stays `Any`.
    pub fn from_datums(values: Vec<Datum>) -> ColumnVec {
        let mut col = ColumnVec::empty();
        for d in values {
            col.push(d);
        }
        col
    }

    /// A column of `n` copies of `d` (constant broadcast).
    pub fn broadcast(d: &Datum, n: usize) -> ColumnVec {
        let data = match d {
            Datum::Bool(b) => ColumnData::Bool(vec![*b; n]),
            Datum::Int32(v) => ColumnData::Int32(vec![*v; n]),
            Datum::Int64(v) => ColumnData::Int64(vec![*v; n]),
            Datum::Float64(v) => ColumnData::Float64(vec![*v; n]),
            Datum::Date(v) => ColumnData::Date(vec![*v; n]),
            Datum::Str(s) => ColumnData::Str(vec![Arc::clone(s); n]),
            Datum::Null => ColumnData::Any(vec![Datum::Null; n]),
        };
        ColumnVec { data, valid: None }
    }

    /// Append one datum. NULLs onto a typed column set an invalid bit
    /// (dummy value slot); a mismatched runtime type degrades to `Any`;
    /// the first non-NULL value onto an all-NULL column adopts its type.
    pub fn push(&mut self, d: Datum) {
        let n = self.len();
        match (&mut self.data, &d) {
            (ColumnData::Bool(v), Datum::Bool(b)) => {
                v.push(*b);
                validity_push(&mut self.valid, n, true);
            }
            (ColumnData::Int32(v), Datum::Int32(x)) => {
                v.push(*x);
                validity_push(&mut self.valid, n, true);
            }
            (ColumnData::Int64(v), Datum::Int64(x)) => {
                v.push(*x);
                validity_push(&mut self.valid, n, true);
            }
            (ColumnData::Float64(v), Datum::Float64(x)) => {
                v.push(*x);
                validity_push(&mut self.valid, n, true);
            }
            (ColumnData::Date(v), Datum::Date(x)) => {
                v.push(*x);
                validity_push(&mut self.valid, n, true);
            }
            (ColumnData::Str(v), Datum::Str(s)) => {
                v.push(Arc::clone(s));
                validity_push(&mut self.valid, n, true);
            }
            (ColumnData::Any(v), _) => {
                if v.is_empty() {
                    // Re-type an empty fallback column on first push.
                    *self = ColumnVec::from_typed_datum(&d).unwrap_or(ColumnVec {
                        data: ColumnData::Any(vec![d]),
                        valid: None,
                    });
                } else if !d.is_null() && v.iter().all(|x| x.is_null()) {
                    // An all-NULL column meets its first typed value:
                    // adopt the typed representation, backfilling the
                    // NULLs as invalid dummy slots. (`all()` bails at the
                    // first non-NULL, so mixed columns stay O(1) here.)
                    self.upgrade_all_null(&d);
                } else {
                    v.push(d);
                }
            }
            (_, Datum::Null) => {
                self.push_dummy();
                validity_push(&mut self.valid, n, false);
            }
            _ => {
                self.degrade();
                match &mut self.data {
                    ColumnData::Any(v) => v.push(d),
                    _ => unreachable!("degrade always yields Any"),
                }
            }
        }
    }

    /// A one-element typed column for a non-NULL datum.
    fn from_typed_datum(d: &Datum) -> Option<ColumnVec> {
        let data = match d {
            Datum::Bool(b) => ColumnData::Bool(vec![*b]),
            Datum::Int32(x) => ColumnData::Int32(vec![*x]),
            Datum::Int64(x) => ColumnData::Int64(vec![*x]),
            Datum::Float64(x) => ColumnData::Float64(vec![*x]),
            Datum::Date(x) => ColumnData::Date(vec![*x]),
            Datum::Str(s) => ColumnData::Str(vec![Arc::clone(s)]),
            Datum::Null => return None,
        };
        Some(ColumnVec { data, valid: None })
    }

    /// Append the dummy value for the current typed representation.
    fn push_dummy(&mut self) {
        match &mut self.data {
            ColumnData::Bool(v) => v.push(false),
            ColumnData::Int32(v) => v.push(0),
            ColumnData::Int64(v) => v.push(0),
            ColumnData::Float64(v) => v.push(0.0),
            ColumnData::Date(v) => v.push(0),
            ColumnData::Str(v) => v.push(Arc::from("")),
            ColumnData::Any(_) => unreachable!("push_dummy on Any"),
        }
    }

    /// Replace an all-NULL `Any` column of length `n` with a typed column
    /// of `n` invalid dummy slots followed by `d`.
    fn upgrade_all_null(&mut self, d: &Datum) {
        let n = self.len();
        let mut col = ColumnVec::from_typed_datum(d).expect("non-NULL upgrade value");
        match &mut col.data {
            ColumnData::Bool(v) => {
                v.splice(0..0, std::iter::repeat_n(false, n));
            }
            ColumnData::Int32(v) => {
                v.splice(0..0, std::iter::repeat_n(0, n));
            }
            ColumnData::Int64(v) => {
                v.splice(0..0, std::iter::repeat_n(0, n));
            }
            ColumnData::Float64(v) => {
                v.splice(0..0, std::iter::repeat_n(0.0, n));
            }
            ColumnData::Date(v) => {
                v.splice(0..0, std::iter::repeat_n(0, n));
            }
            ColumnData::Str(v) => {
                v.splice(0..0, std::iter::repeat_with(|| Arc::from("")).take(n));
            }
            ColumnData::Any(_) => unreachable!(),
        }
        let mut words = vec![0u64; (n + 1).div_ceil(64)];
        bitmap_set(&mut words, n);
        col.valid = Some(words);
        *self = col;
    }

    /// Convert the representation to `Any` in place.
    fn degrade(&mut self) {
        let datums: Vec<Datum> = (0..self.len()).map(|i| self.get(i)).collect();
        self.data = ColumnData::Any(datums);
        self.valid = None;
    }

    /// A copy of this column in the `Any` representation — the degraded
    /// pre-validity-bitmap form. Benchmark and testing aid.
    pub fn degraded(&self) -> ColumnVec {
        let mut c = self.clone();
        c.degrade();
        c
    }

    /// A new column holding the rows at `idx`, in that order.
    pub fn gather(&self, idx: &[u32]) -> ColumnVec {
        let data = match &self.data {
            ColumnData::Bool(v) => ColumnData::Bool(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Int32(v) => ColumnData::Int32(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Int64(v) => ColumnData::Int64(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float64(v) => {
                ColumnData::Float64(idx.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Date(v) => ColumnData::Date(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Str(v) => {
                ColumnData::Str(idx.iter().map(|&i| Arc::clone(&v[i as usize])).collect())
            }
            ColumnData::Any(v) => {
                ColumnData::Any(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        };
        let valid = match &self.valid {
            None => None,
            Some(w) => {
                let mut out = vec![0u64; idx.len().div_ceil(64)];
                let mut invalid = false;
                for (k, &i) in idx.iter().enumerate() {
                    if bitmap_get(w, i as usize) {
                        bitmap_set(&mut out, k);
                    } else {
                        invalid = true;
                    }
                }
                invalid.then_some(out)
            }
        };
        ColumnVec { data, valid }
    }

    /// Append `other`'s rows at `idx` (all of `other` when `idx` is `None`),
    /// degrading the representation if the variants differ.
    pub fn extend_gather(&mut self, other: &ColumnVec, idx: Option<&[u32]>) {
        if self.is_empty() {
            *self = match idx {
                None => other.clone(),
                Some(idx) => other.gather(idx),
            };
            return;
        }
        let old_len = self.len();
        let added = idx.map_or(other.len(), |s| s.len());
        use ColumnData::*;
        match (&mut self.data, &other.data, idx) {
            (Bool(a), Bool(b), None) => a.extend_from_slice(b),
            (Int32(a), Int32(b), None) => a.extend_from_slice(b),
            (Int64(a), Int64(b), None) => a.extend_from_slice(b),
            (Float64(a), Float64(b), None) => a.extend_from_slice(b),
            (Date(a), Date(b), None) => a.extend_from_slice(b),
            (Str(a), Str(b), None) => a.extend(b.iter().map(Arc::clone)),
            (Any(a), Any(b), None) => a.extend(b.iter().cloned()),
            (Bool(a), Bool(b), Some(idx)) => a.extend(idx.iter().map(|&i| b[i as usize])),
            (Int32(a), Int32(b), Some(idx)) => a.extend(idx.iter().map(|&i| b[i as usize])),
            (Int64(a), Int64(b), Some(idx)) => a.extend(idx.iter().map(|&i| b[i as usize])),
            (Float64(a), Float64(b), Some(idx)) => a.extend(idx.iter().map(|&i| b[i as usize])),
            (Date(a), Date(b), Some(idx)) => a.extend(idx.iter().map(|&i| b[i as usize])),
            (Str(a), Str(b), Some(idx)) => {
                a.extend(idx.iter().map(|&i| Arc::clone(&b[i as usize])))
            }
            (Any(a), Any(b), Some(idx)) => a.extend(idx.iter().map(|&i| b[i as usize].clone())),
            _ => {
                self.degrade();
                let Any(a) = &mut self.data else {
                    unreachable!("degrade always yields Any")
                };
                match idx {
                    None => a.extend((0..other.len()).map(|i| other.get(i))),
                    Some(idx) => a.extend(idx.iter().map(|&i| other.get(i as usize))),
                }
                return;
            }
        }
        // Same-variant append: merge the validity bitmaps.
        if self.valid.is_none() && other.valid.is_none() {
            return;
        }
        if self.valid.is_none() {
            self.valid = Some(bitmap_ones(old_len));
        }
        let words = self.valid.as_mut().unwrap();
        words.resize((old_len + added).div_ceil(64), 0);
        // The old tail bits are zero (canonical), so setting is enough.
        for k in 0..added {
            let i = match idx {
                None => k,
                Some(s) => s[k] as usize,
            };
            if other.valid.as_deref().is_none_or(|w| bitmap_get(w, i)) {
                bitmap_set(words, old_len + k);
            }
        }
        if bitmap_count(words) == old_len + added {
            self.valid = None;
        }
    }

    /// Distribution hash of the value at physical index `i`, identical to
    /// `Datum::distribution_hash` of [`ColumnVec::get`]`(i)`.
    #[inline]
    pub fn dist_hash(&self, i: usize) -> u64 {
        if !self.is_valid(i) {
            return dist_hash_null();
        }
        match &self.data {
            ColumnData::Bool(v) => dist_hash_bool(v[i]),
            ColumnData::Int32(v) => dist_hash_int(v[i] as i64),
            ColumnData::Int64(v) => dist_hash_int(v[i]),
            ColumnData::Float64(v) => dist_hash_f64(v[i]),
            ColumnData::Date(v) => dist_hash_int(v[i] as i64),
            ColumnData::Str(v) => dist_hash_str(&v[i]),
            ColumnData::Any(v) => match &v[i] {
                Datum::Null => dist_hash_null(),
                d => d.distribution_hash(),
            },
        }
    }

    /// Combine this column's distribution hashes into `hs`, one slot per
    /// selected row (all physical rows when `sel` is `None`). Columnar:
    /// the variant dispatch is hoisted out of the row loop.
    pub fn dist_hash_into(&self, hs: &mut [u64], sel: Option<&[u32]>) {
        macro_rules! lanes {
            ($v:expr, $h:expr) => {{
                let h = $h;
                match (sel, &self.valid) {
                    (None, None) => {
                        for (k, slot) in hs.iter_mut().enumerate() {
                            *slot = hash_combine(*slot, h(&$v[k]));
                        }
                    }
                    (None, Some(w)) => {
                        for (k, slot) in hs.iter_mut().enumerate() {
                            let hx = if bitmap_get(w, k) {
                                h(&$v[k])
                            } else {
                                dist_hash_null()
                            };
                            *slot = hash_combine(*slot, hx);
                        }
                    }
                    (Some(sel), None) => {
                        for (k, slot) in hs.iter_mut().enumerate() {
                            *slot = hash_combine(*slot, h(&$v[sel[k] as usize]));
                        }
                    }
                    (Some(sel), Some(w)) => {
                        for (k, slot) in hs.iter_mut().enumerate() {
                            let i = sel[k] as usize;
                            let hx = if bitmap_get(w, i) {
                                h(&$v[i])
                            } else {
                                dist_hash_null()
                            };
                            *slot = hash_combine(*slot, hx);
                        }
                    }
                }
            }};
        }
        match &self.data {
            ColumnData::Bool(v) => lanes!(v, |x: &bool| dist_hash_bool(*x)),
            ColumnData::Int32(v) => lanes!(v, |x: &i32| dist_hash_int(*x as i64)),
            ColumnData::Int64(v) => lanes!(v, |x: &i64| dist_hash_int(*x)),
            ColumnData::Float64(v) => lanes!(v, |x: &f64| dist_hash_f64(*x)),
            ColumnData::Date(v) => lanes!(v, |x: &i32| dist_hash_int(*x as i64)),
            ColumnData::Str(v) => lanes!(v, |x: &Arc<str>| dist_hash_str(x)),
            ColumnData::Any(v) => lanes!(v, |d: &Datum| match d {
                Datum::Null => dist_hash_null(),
                d => d.distribution_hash(),
            }),
        }
    }
}

/// A column-major batch of rows with an optional selection vector.
///
/// Columns are `Arc`-shared: cloning a block, projecting columns, and
/// storing blocks in the motion cache are refcount bumps. The selection
/// vector (when present) lists the physical row indices that are logically
/// in the block, in increasing order; `len()` counts selected rows.
#[derive(Debug, Clone)]
pub struct RowBlock {
    columns: Vec<Arc<ColumnVec>>,
    /// Physical row count (every column's length).
    rows: usize,
    sel: Option<Vec<u32>>,
}

impl RowBlock {
    /// A block over pre-built columns (no selection). Every column must
    /// have exactly `rows` entries.
    pub fn from_columns(columns: Vec<Arc<ColumnVec>>, rows: usize) -> RowBlock {
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        RowBlock {
            columns,
            rows,
            sel: None,
        }
    }

    /// An empty block of the given width.
    pub fn empty(width: usize) -> RowBlock {
        RowBlock {
            columns: (0..width).map(|_| Arc::new(ColumnVec::empty())).collect(),
            rows: 0,
            sel: None,
        }
    }

    /// Column-major conversion from rows. `width` fixes the column count
    /// (needed when `rows` is empty); rows shorter than `width` pad with
    /// NULL and longer rows truncate — the SQL layer never produces ragged
    /// rows, so this only normalizes hand-built plans.
    pub fn from_rows(rows: &[Row], width: usize) -> RowBlock {
        let mut cols: Vec<ColumnVec> = (0..width).map(|_| ColumnVec::empty()).collect();
        for r in rows {
            for (c, col) in cols.iter_mut().enumerate() {
                col.push(r.get(c).cloned().unwrap_or(Datum::Null));
            }
        }
        RowBlock {
            columns: cols.into_iter().map(Arc::new).collect(),
            rows: rows.len(),
            sel: None,
        }
    }

    /// Row-major conversion back to rows (selected rows only, in order).
    pub fn to_rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.len());
        match &self.sel {
            None => {
                for i in 0..self.rows {
                    out.push(self.row_at_phys(i));
                }
            }
            Some(sel) => {
                for &i in sel {
                    out.push(self.row_at_phys(i as usize));
                }
            }
        }
        out
    }

    /// Materialize the row at *physical* index `i` (ignores the selection).
    pub fn row_at_phys(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.get(i)).collect())
    }

    /// Number of selected (logical) rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            None => self.rows,
            Some(sel) => sel.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical row count, the length of every column.
    pub fn phys_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    pub fn columns(&self) -> &[Arc<ColumnVec>] {
        &self.columns
    }

    pub fn column(&self, c: usize) -> &ColumnVec {
        &self.columns[c]
    }

    /// The selection vector, if any (physical indices, increasing).
    pub fn sel(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Physical index of logical row `i`.
    #[inline]
    pub fn phys_index(&self, i: usize) -> usize {
        match &self.sel {
            None => i,
            Some(sel) => sel[i] as usize,
        }
    }

    /// The datum at (logical row, column).
    #[inline]
    pub fn datum_at(&self, row: usize, col: usize) -> Datum {
        self.columns[col].get(self.phys_index(row))
    }

    /// Replace the selection with `sel` (physical indices into this
    /// block's columns — callers produce refinements, so indices must
    /// already be a subset of the current selection).
    pub fn with_sel(mut self, sel: Vec<u32>) -> RowBlock {
        debug_assert!(sel.iter().all(|&i| (i as usize) < self.rows));
        self.sel = Some(sel);
        self
    }

    /// Keep only the first `n` selected rows (LIMIT).
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len() {
            return;
        }
        match &mut self.sel {
            Some(sel) => sel.truncate(n),
            None => self.sel = Some((0..n as u32).collect()),
        }
    }

    /// Gather the selection into dense columns (selection becomes `None`).
    /// No-op (refcount bumps only) when nothing is filtered out.
    pub fn compact(&self) -> RowBlock {
        match &self.sel {
            None => self.clone(),
            Some(sel) => RowBlock {
                columns: self
                    .columns
                    .iter()
                    .map(|c| Arc::new(c.gather(sel)))
                    .collect(),
                rows: sel.len(),
                sel: None,
            },
        }
    }

    /// A view of the logical rows `lo..hi` (morsel cut). Columns are
    /// shared, not copied: a dense block gets a dense range selection, a
    /// filtered block a sub-slice of its selection. `lo == 0 && hi ==
    /// len()` returns a plain clone so single-morsel blocks stay dense.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> RowBlock {
        debug_assert!(lo <= hi && hi <= self.len());
        if lo == 0 && hi == self.len() {
            return self.clone();
        }
        let sel = match &self.sel {
            None => (lo as u32..hi as u32).collect(),
            Some(sel) => sel[lo..hi].to_vec(),
        };
        RowBlock {
            columns: self.columns.clone(),
            rows: self.rows,
            sel: Some(sel),
        }
    }

    /// Keep the listed columns, in order (projection by position). Columns
    /// are shared, not copied; the selection carries over.
    pub fn project(&self, cols: &[usize]) -> RowBlock {
        RowBlock {
            columns: cols.iter().map(|&c| Arc::clone(&self.columns[c])).collect(),
            rows: self.rows,
            sel: self.sel.clone(),
        }
    }

    /// Concatenate blocks (all of width `width`) into one dense block.
    pub fn concat(blocks: &[RowBlock], width: usize) -> RowBlock {
        if blocks.len() == 1 && blocks[0].sel.is_none() {
            return blocks[0].clone();
        }
        let mut cols: Vec<ColumnVec> = (0..width).map(|_| ColumnVec::empty()).collect();
        let mut rows = 0usize;
        for b in blocks {
            debug_assert_eq!(b.width(), width);
            rows += b.len();
            for (c, col) in cols.iter_mut().enumerate() {
                col.extend_gather(&b.columns[c], b.sel());
            }
        }
        RowBlock {
            columns: cols.into_iter().map(Arc::new).collect(),
            rows,
            sel: None,
        }
    }

    /// Append rows in place, copy-on-writing any `Arc`-shared column.
    /// Only valid on dense blocks (no selection) — the storage engine's
    /// resident blocks are always dense.
    pub fn append_rows(&mut self, rows: &[Row]) {
        assert!(self.sel.is_none(), "append_rows on a filtered block");
        for (c, col) in self.columns.iter_mut().enumerate() {
            let col = Arc::make_mut(col);
            for r in rows {
                col.push(r.get(c).cloned().unwrap_or(Datum::Null));
            }
        }
        self.rows += rows.len();
    }

    /// A copy of this block with every column degraded to the `Any`
    /// representation (the pre-validity-bitmap form). Benchmark aid.
    pub fn degraded(&self) -> RowBlock {
        RowBlock {
            columns: self
                .columns
                .iter()
                .map(|c| Arc::new(c.degraded()))
                .collect(),
            rows: self.rows,
            sel: self.sel.clone(),
        }
    }

    /// Per-selected-row hash of the listed columns — bit-identical to
    /// calling [`Row::hash_columns`] on each materialized row, computed
    /// column-at-a-time.
    pub fn hash_columns(&self, indices: &[usize]) -> Vec<u64> {
        let mut hs = vec![HASH_COLUMNS_SEED; self.len()];
        for &c in indices {
            self.columns[c].dist_hash_into(&mut hs, self.sel.as_deref());
        }
        hs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn sample_rows() -> Vec<Row> {
        vec![
            row![1i32, "a", 1.5f64],
            row![2i32, "b", 2.5f64],
            row![3i32, "c", 3.5f64],
            row![4i32, "d", 4.5f64],
        ]
    }

    #[test]
    fn from_rows_roundtrip() {
        let rows = sample_rows();
        let b = RowBlock::from_rows(&rows, 3);
        assert_eq!(b.len(), 4);
        assert_eq!(b.width(), 3);
        assert_eq!(b.to_rows(), rows);
        // Null-free monotyped columns pick the typed representation.
        assert!(matches!(b.column(0).data(), ColumnData::Int32(_)));
        assert!(matches!(b.column(1).data(), ColumnData::Str(_)));
        assert!(matches!(b.column(2).data(), ColumnData::Float64(_)));
        assert!(b.column(0).validity().is_none());
    }

    #[test]
    fn nulls_stay_typed_with_validity() {
        let rows = vec![row![1i32], Row::new(vec![Datum::Null]), row![3i32]];
        let b = RowBlock::from_rows(&rows, 1);
        let c = b.column(0);
        assert!(matches!(c.data(), ColumnData::Int32(_)));
        assert!(c.validity().is_some());
        assert!(c.is_valid(0) && !c.is_valid(1) && c.is_valid(2));
        assert_eq!(c.null_count(), 1);
        assert_eq!(b.to_rows(), rows);
        // The dummy slot holds the canonical value.
        let ColumnData::Int32(v) = c.data() else {
            unreachable!()
        };
        assert_eq!(v[1], 0);
    }

    #[test]
    fn leading_nulls_adopt_first_typed_value() {
        let rows = vec![
            Row::new(vec![Datum::Null]),
            Row::new(vec![Datum::Null]),
            row!["x"],
            Row::new(vec![Datum::Null]),
        ];
        let b = RowBlock::from_rows(&rows, 1);
        let c = b.column(0);
        assert!(matches!(c.data(), ColumnData::Str(_)));
        assert_eq!(c.null_count(), 3);
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn all_null_columns_stay_any() {
        let c = ColumnVec::from_datums(vec![Datum::Null, Datum::Null]);
        assert!(matches!(c.data(), ColumnData::Any(_)));
        assert_eq!(c.null_count(), 2);
        assert_eq!(c.get(0), Datum::Null);
    }

    #[test]
    fn mixed_types_degrade_to_any() {
        let rows = vec![row![1i32], row![2i64]];
        let b = RowBlock::from_rows(&rows, 1);
        assert!(matches!(b.column(0).data(), ColumnData::Any(_)));
        assert_eq!(b.to_rows(), rows);
        // NULL-then-mixed also degrades, keeping the NULL as a datum.
        let c = ColumnVec::from_datums(vec![Datum::Null, Datum::Int32(1), Datum::str("s")]);
        assert!(matches!(c.data(), ColumnData::Any(_)));
        assert_eq!(c.get(0), Datum::Null);
        assert_eq!(c.get(2), Datum::str("s"));
    }

    #[test]
    fn from_parts_canonicalizes() {
        // All-valid bitmap normalizes away.
        let c = ColumnVec::from_parts(ColumnData::Int64(vec![1, 2]), Some(vec![0b11]));
        assert!(c.validity().is_none());
        // Invalid slots are scrubbed to the dummy value; equality is
        // representation-independent.
        let a = ColumnVec::from_parts(ColumnData::Int64(vec![7, 99]), Some(vec![0b01]));
        let b = ColumnVec::from_parts(ColumnData::Int64(vec![7, 0]), Some(vec![0b01]));
        assert_eq!(a, b);
        assert_eq!(a.get(1), Datum::Null);
        // And matches the push-built column.
        let p = ColumnVec::from_datums(vec![Datum::Int64(7), Datum::Null]);
        assert_eq!(a, p);
    }

    #[test]
    fn selection_filters_to_rows() {
        let rows = sample_rows();
        let b = RowBlock::from_rows(&rows, 3).with_sel(vec![1, 3]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.to_rows(), vec![rows[1].clone(), rows[3].clone()]);
        let c = b.compact();
        assert_eq!(c.len(), 2);
        assert!(c.sel().is_none());
        assert_eq!(c.to_rows(), b.to_rows());
    }

    #[test]
    fn gather_carries_validity() {
        let c = ColumnVec::from_datums(vec![
            Datum::Int64(1),
            Datum::Null,
            Datum::Int64(3),
            Datum::Null,
        ]);
        let g = c.gather(&[1, 2, 3]);
        assert_eq!(g.get(0), Datum::Null);
        assert_eq!(g.get(1), Datum::Int64(3));
        assert_eq!(g.get(2), Datum::Null);
        assert_eq!(g.null_count(), 2);
        // Gathering only valid slots normalizes back to all-valid.
        let v = c.gather(&[0, 2]);
        assert!(v.validity().is_none());
        assert_eq!(v.get(1), Datum::Int64(3));
    }

    #[test]
    fn extend_gather_merges_validity() {
        let mut a = ColumnVec::from_datums(vec![Datum::Int64(1), Datum::Null]);
        let b = ColumnVec::from_datums(vec![Datum::Int64(3), Datum::Null, Datum::Int64(5)]);
        a.extend_gather(&b, None);
        assert_eq!(a.len(), 5);
        assert_eq!(a.get(1), Datum::Null);
        assert_eq!(a.get(3), Datum::Null);
        assert_eq!(a.get(4), Datum::Int64(5));
        // Null-free extending nullable keeps the bitmap; nullable
        // extending null-free materializes it.
        let mut c = ColumnVec::from_datums(vec![Datum::Int64(9)]);
        c.extend_gather(&b, Some(&[1]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Datum::Int64(9));
        assert_eq!(c.get(1), Datum::Null);
    }

    #[test]
    fn project_shares_columns() {
        let b = RowBlock::from_rows(&sample_rows(), 3);
        let p = b.project(&[2, 0]);
        assert_eq!(p.width(), 2);
        assert_eq!(p.to_rows()[0], row![1.5f64, 1i32]);
        assert!(Arc::ptr_eq(&p.columns()[1], &b.columns()[0]));
    }

    #[test]
    fn concat_preserves_selection_and_types() {
        let rows = sample_rows();
        let a = RowBlock::from_rows(&rows[..2], 3);
        let b = RowBlock::from_rows(&rows[2..], 3).with_sel(vec![1]);
        let c = RowBlock::concat(&[a, b], 3);
        assert_eq!(c.len(), 3);
        assert!(c.sel().is_none());
        assert_eq!(
            c.to_rows(),
            vec![rows[0].clone(), rows[1].clone(), rows[3].clone()]
        );
        assert!(matches!(c.column(0).data(), ColumnData::Int32(_)));
    }

    #[test]
    fn concat_keeps_nullable_columns_typed() {
        let rows1 = vec![row![1i64], Row::new(vec![Datum::Null])];
        let rows2 = vec![Row::new(vec![Datum::Null]), row![4i64]];
        let a = RowBlock::from_rows(&rows1, 1);
        let b = RowBlock::from_rows(&rows2, 1);
        let c = RowBlock::concat(&[a, b], 1);
        assert!(matches!(c.column(0).data(), ColumnData::Int64(_)));
        assert_eq!(c.column(0).null_count(), 2);
        assert_eq!(
            c.to_rows(),
            rows1.iter().chain(&rows2).cloned().collect::<Vec<_>>()
        );
    }

    #[test]
    fn hash_columns_matches_row_hash() {
        let rows = vec![
            row![1i32, "a", 1.5f64],
            Row::new(vec![Datum::Null, Datum::str("b"), Datum::Int64(7)]),
            row![3i64, "c", 3.5f64],
            Row::new(vec![
                Datum::Bool(true),
                Datum::str("d"),
                Datum::Float64(4.0),
            ]),
            Row::new(vec![
                Datum::Date(15_000),
                Datum::str("e"),
                Datum::Float64(-0.25),
            ]),
        ];
        let b = RowBlock::from_rows(&rows, 3);
        for idx in [vec![0usize], vec![2], vec![0, 1, 2], vec![2, 0]] {
            let hs = b.hash_columns(&idx);
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(hs[i], r.hash_columns(&idx), "cols {idx:?} row {i}");
            }
        }
        // And under a selection.
        let s = b.clone().with_sel(vec![0, 2, 4]);
        let hs = s.hash_columns(&[0, 2]);
        assert_eq!(hs.len(), 3);
        for (k, &i) in [0usize, 2, 4].iter().enumerate() {
            assert_eq!(hs[k], rows[i].hash_columns(&[0, 2]));
        }
    }

    #[test]
    fn hash_columns_nullable_typed_matches_row_hash() {
        // A typed Int64 column with a validity bitmap must hash NULL
        // slots exactly like the row engine hashes Datum::Null.
        let rows: Vec<Row> = (0..130)
            .map(|i| {
                if i % 7 == 0 {
                    Row::new(vec![Datum::Null, Datum::str("k")])
                } else {
                    row![i as i64, "k"]
                }
            })
            .collect();
        let b = RowBlock::from_rows(&rows, 2);
        assert!(matches!(b.column(0).data(), ColumnData::Int64(_)));
        let hs = b.hash_columns(&[0, 1]);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(hs[i], r.hash_columns(&[0, 1]), "row {i}");
        }
    }

    #[test]
    fn truncate_limits_selected_rows() {
        let mut b = RowBlock::from_rows(&sample_rows(), 3);
        b.truncate(2);
        assert_eq!(b.len(), 2);
        let mut s = RowBlock::from_rows(&sample_rows(), 3).with_sel(vec![0, 2, 3]);
        s.truncate(2);
        assert_eq!(s.to_rows().len(), 2);
        assert_eq!(s.to_rows()[1], sample_rows()[2]);
    }

    #[test]
    fn slice_rows_cuts_logical_ranges() {
        let rows = sample_rows();
        let b = RowBlock::from_rows(&rows, 3);
        // Whole-range slice of a dense block stays dense (shared columns).
        let whole = b.slice_rows(0, 4);
        assert!(whole.sel().is_none());
        assert!(Arc::ptr_eq(&whole.columns()[0], &b.columns()[0]));
        let m = b.slice_rows(1, 3);
        assert_eq!(m.to_rows(), vec![rows[1].clone(), rows[2].clone()]);
        assert!(Arc::ptr_eq(&m.columns()[0], &b.columns()[0]));
        // Slicing a filtered block sub-slices its selection.
        let f = b.clone().with_sel(vec![0, 2, 3]);
        let fm = f.slice_rows(1, 3);
        assert_eq!(fm.to_rows(), vec![rows[2].clone(), rows[3].clone()]);
        assert!(fm.slice_rows(0, 0).is_empty());
        // Morsel cuts tile the block: concatenation restores the rows.
        let parts: Vec<RowBlock> = (0..2).map(|k| b.slice_rows(k * 2, k * 2 + 2)).collect();
        let back = RowBlock::concat(&parts, 3);
        assert_eq!(back.to_rows(), rows);
    }

    #[test]
    fn push_keeps_types_and_degrades_on_mix() {
        let mut c = ColumnVec::from_datums(vec![Datum::Int32(1), Datum::Int32(2)]);
        assert!(matches!(c.data(), ColumnData::Int32(_)));
        // A NULL no longer degrades: it sets an invalid dummy slot.
        c.push(Datum::Null);
        assert!(matches!(c.data(), ColumnData::Int32(_)));
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Datum::Int32(1));
        assert_eq!(c.get(2), Datum::Null);
        // A mismatched runtime type still degrades, NULLs intact.
        c.push(Datum::str("x"));
        assert!(matches!(c.data(), ColumnData::Any(_)));
        assert_eq!(c.get(2), Datum::Null);
        assert_eq!(c.get(3), Datum::str("x"));
        // Empty fallback re-types on first push.
        let mut e = ColumnVec::empty();
        e.push(Datum::str("x"));
        assert!(matches!(e.data(), ColumnData::Str(_)));
    }

    #[test]
    fn degraded_roundtrips_values() {
        let c = ColumnVec::from_datums(vec![Datum::Int64(1), Datum::Null, Datum::Int64(3)]);
        let d = c.degraded();
        assert!(matches!(d.data(), ColumnData::Any(_)));
        for i in 0..3 {
            assert_eq!(c.get(i), d.get(i));
            assert_eq!(c.dist_hash(i), d.dist_hash(i));
        }
    }

    #[test]
    fn validity_spans_word_boundaries() {
        // 200 slots exercises multi-word bitmaps with a ragged tail.
        let datums: Vec<Datum> = (0..200)
            .map(|i| {
                if i % 3 == 0 {
                    Datum::Null
                } else {
                    Datum::Int64(i)
                }
            })
            .collect();
        let c = ColumnVec::from_datums(datums.clone());
        assert!(matches!(c.data(), ColumnData::Int64(_)));
        for (i, d) in datums.iter().enumerate() {
            assert_eq!(&c.get(i), d, "slot {i}");
        }
        assert_eq!(
            c.null_count(),
            datums.iter().filter(|d| d.is_null()).count()
        );
    }
}
