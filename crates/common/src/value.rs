//! [`Datum`] — the dynamically typed scalar value.
//!
//! Datums have a *total* order (`Null` sorts first, floats use IEEE total
//! ordering) so they can serve as partition-boundary values and hash-table
//! keys without wrapper types.

use crate::types::DataType;
use crate::{Error, Result};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single scalar value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Datum {
    Null,
    Bool(bool),
    Int32(i32),
    Int64(i64),
    Float64(f64),
    Str(Arc<str>),
    /// Days since 1970-01-01.
    Date(i32),
}

impl Datum {
    /// Construct a string datum.
    pub fn str(s: impl Into<Arc<str>>) -> Datum {
        Datum::Str(s.into())
    }

    /// Construct a date datum from a `YYYY-MM-DD` civil date.
    pub fn date_ymd(year: i32, month: u32, day: u32) -> Datum {
        Datum::Date(days_from_civil(year, month, day))
    }

    /// The runtime type of this datum, if not null.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Datum::Null => None,
            Datum::Bool(_) => Some(DataType::Bool),
            Datum::Int32(_) => Some(DataType::Int32),
            Datum::Int64(_) => Some(DataType::Int64),
            Datum::Float64(_) => Some(DataType::Float64),
            Datum::Str(_) => Some(DataType::Utf8),
            Datum::Date(_) => Some(DataType::Date),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Interpret as a boolean (SQL three-valued logic leaves `Null` as
    /// `None`).
    pub fn as_bool(&self) -> Result<Option<bool>> {
        match self {
            Datum::Null => Ok(None),
            Datum::Bool(b) => Ok(Some(*b)),
            other => Err(Error::TypeMismatch(format!("expected bool, got {other:?}"))),
        }
    }

    /// Numeric view as i64 (integers and dates only).
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Datum::Int32(v) => Ok(*v as i64),
            Datum::Int64(v) => Ok(*v),
            Datum::Date(v) => Ok(*v as i64),
            other => Err(Error::TypeMismatch(format!("expected int, got {other:?}"))),
        }
    }

    /// Numeric view as f64 (all numeric types and dates).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Datum::Int32(v) => Ok(*v as f64),
            Datum::Int64(v) => Ok(*v as f64),
            Datum::Float64(v) => Ok(*v),
            Datum::Date(v) => Ok(*v as f64),
            other => Err(Error::TypeMismatch(format!(
                "expected numeric, got {other:?}"
            ))),
        }
    }

    /// String view.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Datum::Str(s) => Ok(s),
            other => Err(Error::TypeMismatch(format!("expected text, got {other:?}"))),
        }
    }

    /// SQL comparison: `None` when either side is null, otherwise the
    /// ordering under numeric coercion.
    pub fn sql_cmp(&self, other: &Datum) -> Result<Option<Ordering>> {
        if self.is_null() || other.is_null() {
            return Ok(None);
        }
        Ok(Some(self.cmp_non_null(other)?))
    }

    fn cmp_non_null(&self, other: &Datum) -> Result<Ordering> {
        use Datum::*;
        match (self, other) {
            (Bool(a), Bool(b)) => Ok(a.cmp(b)),
            (Str(a), Str(b)) => Ok(a.as_ref().cmp(b.as_ref())),
            (Date(a), Date(b)) => Ok(a.cmp(b)),
            // Numeric (and date/int) coercion.
            _ => {
                let ta = self
                    .data_type()
                    .ok_or_else(|| Error::TypeMismatch("null in non-null comparison".into()))?;
                let tb = other
                    .data_type()
                    .ok_or_else(|| Error::TypeMismatch("null in non-null comparison".into()))?;
                if DataType::common_super_type(ta, tb).is_none() {
                    return Err(Error::TypeMismatch(format!(
                        "cannot compare {ta} with {tb}"
                    )));
                }
                if ta == DataType::Float64 || tb == DataType::Float64 {
                    Ok(self.as_f64()?.total_cmp(&other.as_f64()?))
                } else {
                    Ok(self.as_i64()?.cmp(&other.as_i64()?))
                }
            }
        }
    }

    /// Arithmetic used in expression evaluation; result type follows the
    /// usual widening rules.
    pub fn arith(&self, op: ArithOp, other: &Datum) -> Result<Datum> {
        use Datum::*;
        if self.is_null() || other.is_null() {
            return Ok(Null);
        }
        let ta = self.data_type().unwrap();
        let tb = other.data_type().unwrap();
        if !ta.is_numeric() && ta != DataType::Date {
            return Err(Error::TypeMismatch(format!("arithmetic on {ta}")));
        }
        if !tb.is_numeric() && tb != DataType::Date {
            return Err(Error::TypeMismatch(format!("arithmetic on {tb}")));
        }
        if ta == DataType::Float64 || tb == DataType::Float64 {
            let (a, b) = (self.as_f64()?, other.as_f64()?);
            let v = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => {
                    if b == 0.0 {
                        return Err(Error::Arithmetic("division by zero".into()));
                    }
                    a / b
                }
                ArithOp::Mod => {
                    if b == 0.0 {
                        return Err(Error::Arithmetic("modulo by zero".into()));
                    }
                    a % b
                }
            };
            return Ok(Float64(v));
        }
        let (a, b) = (self.as_i64()?, other.as_i64()?);
        let v = match op {
            ArithOp::Add => a.checked_add(b),
            ArithOp::Sub => a.checked_sub(b),
            ArithOp::Mul => a.checked_mul(b),
            ArithOp::Div => {
                if b == 0 {
                    return Err(Error::Arithmetic("division by zero".into()));
                }
                a.checked_div(b)
            }
            ArithOp::Mod => {
                if b == 0 {
                    return Err(Error::Arithmetic("modulo by zero".into()));
                }
                a.checked_rem(b)
            }
        }
        .ok_or_else(|| Error::Arithmetic("integer overflow".into()))?;
        // Date - Date and Date +/- Int stay in sensible types.
        match (self, other, op) {
            (Date(_), Date(_), ArithOp::Sub) => Ok(Int64(v)),
            (Date(_), _, ArithOp::Add) | (Date(_), _, ArithOp::Sub) => {
                Ok(Date(i32::try_from(v).map_err(|_| {
                    Error::Arithmetic("date out of range".into())
                })?))
            }
            _ => Ok(Int64(v)),
        }
    }

    /// A stable 64-bit hash used for MPP hash distribution. Numeric values
    /// that compare equal hash equal across physical types.
    pub fn distribution_hash(&self) -> u64 {
        match self {
            Datum::Null => dist_hash_null(),
            Datum::Bool(b) => dist_hash_bool(*b),
            Datum::Int32(v) => dist_hash_int(*v as i64),
            Datum::Int64(v) => dist_hash_int(*v),
            Datum::Float64(v) => dist_hash_f64(*v),
            Datum::Str(s) => dist_hash_str(s),
            // Dates hash as their day number: Date(n) compares equal to
            // Int(n) under the coercion rules, so they must hash equal.
            Datum::Date(v) => dist_hash_int(*v as i64),
        }
    }
}

// FNV-1a over a normalized (tag, payload) byte representation. The per-kind
// helpers are public so columnar batch hashing (`crate::block`) can hash
// typed vectors without constructing a `Datum` per value; they must stay
// bit-identical to `Datum::distribution_hash`.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Distribution hash of a NULL value.
#[inline]
pub fn dist_hash_null() -> u64 {
    fnv1a(FNV_OFFSET, &[0u8])
}

/// Distribution hash of a boolean.
#[inline]
pub fn dist_hash_bool(b: bool) -> u64 {
    fnv1a(fnv1a(FNV_OFFSET, &[1u8]), &[b as u8])
}

/// Distribution hash of an integer-class value (Int32/Int64/Date, and
/// integral floats, which must hash like the integer they equal).
#[inline]
pub fn dist_hash_int(v: i64) -> u64 {
    fnv1a(fnv1a(FNV_OFFSET, &[2u8]), &v.to_le_bytes())
}

/// Distribution hash of a float (integral floats hash as integers).
#[inline]
pub fn dist_hash_f64(v: f64) -> u64 {
    if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 {
        dist_hash_int(v as i64)
    } else {
        fnv1a(fnv1a(FNV_OFFSET, &[3u8]), &v.to_bits().to_le_bytes())
    }
}

/// Distribution hash of a string.
#[inline]
pub fn dist_hash_str(s: &str) -> u64 {
    fnv1a(fnv1a(FNV_OFFSET, &[4u8]), s.as_bytes())
}

/// Arithmetic operators supported by [`Datum::arith`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Datum {}

impl PartialOrd for Datum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Datum {
    /// Total order used for sorting and partition boundaries: `Null` first,
    /// then by type-coerced value; incomparable types order by type tag so
    /// the order stays total.
    fn cmp(&self, other: &Self) -> Ordering {
        use Datum::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            _ => self
                .cmp_non_null(other)
                .unwrap_or_else(|_| type_rank(self).cmp(&type_rank(other))),
        }
    }
}

fn type_rank(d: &Datum) -> u8 {
    match d {
        Datum::Null => 0,
        Datum::Bool(_) => 1,
        Datum::Int32(_) | Datum::Int64(_) | Datum::Float64(_) | Datum::Date(_) => 2,
        Datum::Str(_) => 3,
    }
}

impl Hash for Datum {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.distribution_hash());
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => f.write_str("NULL"),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Int32(v) => write!(f, "{v}"),
            Datum::Int64(v) => write!(f, "{v}"),
            Datum::Float64(v) => write!(f, "{v}"),
            Datum::Str(s) => write!(f, "'{s}'"),
            Datum::Date(d) => {
                let (y, m, dd) = civil_from_days(*d);
                write!(f, "{y:04}-{m:02}-{dd:02}")
            }
        }
    }
}

impl From<i32> for Datum {
    fn from(v: i32) -> Self {
        Datum::Int32(v)
    }
}
impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int64(v)
    }
}
impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Float64(v)
    }
}
impl From<bool> for Datum {
    fn from(v: bool) -> Self {
        Datum::Bool(v)
    }
}
impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::str(v)
    }
}
impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::str(v)
    }
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // [0, 11]
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Civil date for days since 1970-01-01 (inverse of [`days_from_civil`]).
pub fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// Parse a `YYYY-MM-DD` literal into a [`Datum::Date`].
pub fn parse_date(s: &str) -> Result<Datum> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return Err(Error::Parse(format!("bad date literal '{s}'")));
    }
    let y: i32 = parts[0]
        .parse()
        .map_err(|_| Error::Parse(format!("bad date literal '{s}'")))?;
    let m: u32 = parts[1]
        .parse()
        .map_err(|_| Error::Parse(format!("bad date literal '{s}'")))?;
    let d: u32 = parts[2]
        .parse()
        .map_err(|_| Error::Parse(format!("bad date literal '{s}'")))?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(Error::Parse(format!("bad date literal '{s}'")));
    }
    Ok(Datum::date_ymd(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_roundtrip() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
        for days in [-100_000, -1, 0, 1, 10_000, 20_000, 100_000] {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days, "roundtrip for {days}");
        }
    }

    #[test]
    fn date_display_and_parse() {
        let d = Datum::date_ymd(2013, 10, 1);
        assert_eq!(d.to_string(), "2013-10-01");
        assert_eq!(parse_date("2013-10-01").unwrap(), d);
        assert!(parse_date("2013-13-01").is_err());
        assert!(parse_date("oops").is_err());
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(
            Datum::Int32(3).sql_cmp(&Datum::Int64(3)).unwrap(),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Datum::Int32(3).sql_cmp(&Datum::Float64(3.5)).unwrap(),
            Some(Ordering::Less)
        );
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int32(1)).unwrap(), None);
        assert!(Datum::Int32(1).sql_cmp(&Datum::str("a")).is_err());
    }

    #[test]
    fn total_order_null_first() {
        let mut v = vec![Datum::Int32(2), Datum::Null, Datum::Int32(1)];
        v.sort();
        assert_eq!(v, vec![Datum::Null, Datum::Int32(1), Datum::Int32(2)]);
    }

    #[test]
    fn equal_numerics_hash_equal() {
        assert_eq!(
            Datum::Int32(42).distribution_hash(),
            Datum::Int64(42).distribution_hash()
        );
        assert_eq!(
            Datum::Int64(42).distribution_hash(),
            Datum::Float64(42.0).distribution_hash()
        );
        assert_ne!(
            Datum::Int32(42).distribution_hash(),
            Datum::Int32(43).distribution_hash()
        );
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            Datum::Int32(7)
                .arith(ArithOp::Add, &Datum::Int32(3))
                .unwrap(),
            Datum::Int64(10)
        );
        assert_eq!(
            Datum::Float64(1.5)
                .arith(ArithOp::Mul, &Datum::Int32(2))
                .unwrap(),
            Datum::Float64(3.0)
        );
        assert!(Datum::Int32(1)
            .arith(ArithOp::Div, &Datum::Int32(0))
            .is_err());
        assert_eq!(
            Datum::Int32(1).arith(ArithOp::Add, &Datum::Null).unwrap(),
            Datum::Null
        );
        // date - date = int days; date + int = date
        let d1 = Datum::date_ymd(2013, 1, 10);
        let d2 = Datum::date_ymd(2013, 1, 1);
        assert_eq!(d1.arith(ArithOp::Sub, &d2).unwrap(), Datum::Int64(9));
        assert_eq!(
            d2.arith(ArithOp::Add, &Datum::Int32(9)).unwrap(),
            Datum::date_ymd(2013, 1, 10)
        );
    }

    #[test]
    fn overflow_is_an_error() {
        assert!(Datum::Int64(i64::MAX)
            .arith(ArithOp::Add, &Datum::Int64(1))
            .is_err());
    }
}
