//! Workspace-wide error type.
//!
//! A single enum keeps error plumbing between crates trivial; variants are
//! grouped by the subsystem that raises them.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// The error type shared by all `mppart` crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A value had an unexpected type for the operation.
    TypeMismatch(String),
    /// An identifier (table, column, partition, parameter) did not resolve.
    NotFound(String),
    /// An object was defined twice.
    Duplicate(String),
    /// Schema or metadata is internally inconsistent.
    InvalidMetadata(String),
    /// A tuple could not be mapped to any partition (the `⊥` of the
    /// partitioning function in the paper's §2.1).
    NoMatchingPartition(String),
    /// SQL text failed to lex/parse.
    Parse(String),
    /// A name failed to bind against the catalog.
    Bind(String),
    /// The optimizer could not produce a plan.
    Optimize(String),
    /// A plan is structurally invalid for execution (e.g. a `DynamicScan`
    /// whose paired `PartitionSelector` is separated from it by a Motion).
    InvalidPlan(String),
    /// Runtime execution failure.
    Execution(String),
    /// Arithmetic overflow / division by zero and friends.
    Arithmetic(String),
    /// Feature intentionally out of scope.
    Unsupported(String),
    /// Execution stopped cooperatively: a cancel request, a dropped
    /// client connection, or a query deadline. Raised at block
    /// boundaries by the executor's cancellation checks.
    Cancelled(String),
    /// Anything else.
    Internal(String),
}

impl Error {
    /// Short machine-readable category name, handy for tests and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::TypeMismatch(_) => "type_mismatch",
            Error::NotFound(_) => "not_found",
            Error::Duplicate(_) => "duplicate",
            Error::InvalidMetadata(_) => "invalid_metadata",
            Error::NoMatchingPartition(_) => "no_matching_partition",
            Error::Parse(_) => "parse",
            Error::Bind(_) => "bind",
            Error::Optimize(_) => "optimize",
            Error::InvalidPlan(_) => "invalid_plan",
            Error::Execution(_) => "execution",
            Error::Arithmetic(_) => "arithmetic",
            Error::Unsupported(_) => "unsupported",
            Error::Cancelled(_) => "cancelled",
            Error::Internal(_) => "internal",
        }
    }

    fn message(&self) -> &str {
        match self {
            Error::TypeMismatch(m)
            | Error::NotFound(m)
            | Error::Duplicate(m)
            | Error::InvalidMetadata(m)
            | Error::NoMatchingPartition(m)
            | Error::Parse(m)
            | Error::Bind(m)
            | Error::Optimize(m)
            | Error::InvalidPlan(m)
            | Error::Execution(m)
            | Error::Arithmetic(m)
            | Error::Unsupported(m)
            | Error::Cancelled(m)
            | Error::Internal(m) => m,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = Error::NotFound("table orders".into());
        assert_eq!(e.to_string(), "not_found: table orders");
        assert_eq!(e.kind(), "not_found");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::Parse("x".into()), Error::Parse("x".into()));
        assert_ne!(Error::Parse("x".into()), Error::Bind("x".into()));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Internal("boom".into()));
    }
}
