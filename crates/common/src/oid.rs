//! Strongly typed object identifiers.
//!
//! The paper's runtime identifies partitioned tables and their leaf
//! partitions by OID, and pairs `PartitionSelector` / `DynamicScan`
//! operators by a *partScanId*. Newtypes keep these id spaces from being
//! mixed up at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Raw numeric value.
            pub fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// Identifier of a (root) table in the catalog. For a partitioned table
    /// this names the *logical* root; leaves get their own [`PartOid`].
    TableOid,
    "t"
);

id_newtype!(
    /// Identifier of one leaf partition — a separate physical table on disk
    /// in GPDB's representation (paper §3.2).
    PartOid,
    "p"
);

id_newtype!(
    /// Pairing identifier between a `PartitionSelector` (producer) and its
    /// `DynamicScan` (consumer). Unique per dynamic scan instance in a plan.
    PartScanId,
    "scan"
);

id_newtype!(
    /// One segment (worker) of the simulated MPP cluster.
    SegmentId,
    "seg"
);

id_newtype!(
    /// Stable identifier of one `Motion` node in a physical plan, assigned
    /// deterministically (pre-order) after planning. The executor keys the
    /// Motion materialization cache and per-motion statistics by it, so a
    /// cloned or re-executed plan behaves identically to the original —
    /// unlike the raw node address it replaced.
    MotionId,
    "motion"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(TableOid(7).to_string(), "t7");
        assert_eq!(PartOid(3).to_string(), "p3");
        assert_eq!(PartScanId(1).to_string(), "scan1");
        assert_eq!(SegmentId(0).to_string(), "seg0");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(PartOid(1));
        set.insert(PartOid(1));
        set.insert(PartOid(2));
        assert_eq!(set.len(), 2);
        assert!(PartOid(1) < PartOid(2));
    }

    #[test]
    fn from_raw_roundtrip() {
        let oid: TableOid = 42u32.into();
        assert_eq!(oid.raw(), 42);
    }
}
