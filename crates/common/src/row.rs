//! Rows and batches.

use crate::value::Datum;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One tuple. Values are positional against a [`crate::Schema`].
///
/// Rows share their backing storage (`Arc<[Datum]>`), so passing rows
/// between executor operators and across simulated Motion boundaries is a
/// refcount bump, not a deep copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Row {
    values: Arc<[Datum]>,
}

impl Row {
    pub fn new(values: Vec<Datum>) -> Row {
        Row {
            values: values.into(),
        }
    }

    pub fn empty() -> Row {
        Row::new(Vec::new())
    }

    pub fn values(&self) -> &[Datum] {
        &self.values
    }

    pub fn get(&self, idx: usize) -> Option<&Datum> {
        self.values.get(idx)
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Row::new(v)
    }

    /// Project by index; panics on out-of-range (plans are validated before
    /// execution).
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Hash of the listed columns, used by hash-distribution and hash joins.
    pub fn hash_columns(&self, indices: &[usize]) -> u64 {
        let mut h = HASH_COLUMNS_SEED;
        for &i in indices {
            h = hash_combine(h, self.values[i].distribution_hash());
        }
        h
    }
}

/// Seed of [`Row::hash_columns`], shared with the columnar batch hasher
/// ([`crate::block::RowBlock::hash_columns`]) which must agree bit-for-bit.
pub const HASH_COLUMNS_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Fold one column's distribution hash into a running multi-column hash.
#[inline]
pub fn hash_combine(h: u64, dist: u64) -> u64 {
    h.rotate_left(5).wrapping_mul(0x100_0000_01b3) ^ dist
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Datum>> for Row {
    fn from(values: Vec<Datum>) -> Self {
        Row::new(values)
    }
}

/// A batch of rows, the unit the executor's operators exchange.
pub type RowBatch = Vec<Row>;

/// Build a row from anything convertible to datums.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Datum::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_macro_and_accessors() {
        let r = row![1i32, 2.5f64, "abc", true];
        assert_eq!(r.len(), 4);
        assert_eq!(r.get(0), Some(&Datum::Int32(1)));
        assert_eq!(r.get(2), Some(&Datum::str("abc")));
        assert_eq!(r.get(9), None);
    }

    #[test]
    fn concat_and_project() {
        let a = row![1i32, 2i32];
        let b = row![3i32];
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        let p = c.project(&[2, 0]);
        assert_eq!(p, row![3i32, 1i32]);
    }

    #[test]
    fn column_hash_consistency() {
        let a = row![5i32, "x"];
        let b = row![5i64, "y"];
        // Hash over column 0 only: equal numeric values hash equal.
        assert_eq!(a.hash_columns(&[0]), b.hash_columns(&[0]));
        assert_ne!(a.hash_columns(&[0, 1]), b.hash_columns(&[0, 1]));
    }

    #[test]
    fn display() {
        assert_eq!(row![1i32, "a"].to_string(), "(1, 'a')");
    }
}
