//! # mpp-common
//!
//! Foundation types shared by every crate in the `mppart` workspace:
//!
//! * [`Datum`] — the dynamically typed scalar value flowing through the
//!   system (a miniature analogue of PostgreSQL's datum),
//! * [`DataType`] — the static type lattice,
//! * [`Schema`] / [`Column`] — relation shapes,
//! * [`Row`] — a tuple of datums,
//! * strongly typed object identifiers ([`TableOid`], [`PartOid`],
//!   [`PartScanId`], [`SegmentId`]),
//! * the workspace-wide [`Error`] type.
//!
//! The crate is dependency-light on purpose: everything above it (expressions,
//! catalog, storage, planner, executor) builds on these definitions.

pub mod block;
pub mod error;
pub mod oid;
pub mod row;
pub mod schema;
pub mod types;
pub mod value;

pub use block::{
    bitmap_count, bitmap_get, bitmap_ones, bitmap_zero_tail, ColumnData, ColumnVec, RowBlock,
};
pub use error::{Error, Result};
pub use oid::{MotionId, PartOid, PartScanId, SegmentId, TableOid};
pub use row::{Row, RowBatch};
pub use schema::{Column, Schema};
pub use types::DataType;
pub use value::Datum;
