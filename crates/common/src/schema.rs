//! Relation schemas.

use crate::types::DataType;
use crate::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One column of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Column {
        Column {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    pub fn not_null(mut self) -> Column {
        self.nullable = false;
        self
    }
}

/// An ordered list of columns. Cheap to clone (`Arc` inside).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Arc<Vec<Column>>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema {
            columns: Arc::new(columns),
        }
    }

    pub fn empty() -> Schema {
        Schema::new(Vec::new())
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, idx: usize) -> Result<&Column> {
        self.columns
            .get(idx)
            .ok_or_else(|| Error::NotFound(format!("column #{idx} (schema has {})", self.len())))
    }

    /// Index of the column with the given name (case-insensitive, first
    /// match wins — callers that need ambiguity detection use the binder).
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| Error::NotFound(format!("column '{name}'")))
    }

    /// Concatenate two schemas (e.g. the output of a join).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut cols = self.columns.as_ref().clone();
        cols.extend(other.columns.iter().cloned());
        Schema::new(cols)
    }

    /// Project a subset of columns by index.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let cols = indices
            .iter()
            .map(|&i| self.column(i).cloned())
            .collect::<Result<Vec<_>>>()?;
        Ok(Schema::new(cols))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int32).not_null(),
            Column::new("amount", DataType::Float64),
            Column::new("date", DataType::Date),
        ])
    }

    #[test]
    fn index_lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("AMOUNT").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn join_concatenates() {
        let s = sample();
        let joined = s.join(&Schema::new(vec![Column::new("x", DataType::Bool)]));
        assert_eq!(joined.len(), 4);
        assert_eq!(joined.column(3).unwrap().name, "x");
    }

    #[test]
    fn project_reorders() {
        let s = sample();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.column(0).unwrap().name, "date");
        assert_eq!(p.column(1).unwrap().name, "id");
        assert!(s.project(&[9]).is_err());
    }

    #[test]
    fn display_renders_types() {
        assert_eq!(sample().to_string(), "(id int4, amount float8, date date)");
    }
}
