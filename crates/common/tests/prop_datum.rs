//! Property tests for datum ordering, hashing and date arithmetic.

use mpp_common::value::{civil_from_days, days_from_civil};
use mpp_common::Datum;
use proptest::prelude::*;

fn arb_datum() -> impl Strategy<Value = Datum> {
    prop_oneof![
        Just(Datum::Null),
        any::<bool>().prop_map(Datum::Bool),
        any::<i32>().prop_map(Datum::Int32),
        any::<i64>().prop_map(Datum::Int64),
        (-1.0e12f64..1.0e12).prop_map(Datum::Float64),
        "[a-z]{0,8}".prop_map(Datum::str),
        (-200_000i32..200_000).prop_map(Datum::Date),
    ]
}

proptest! {
    /// The total order is reflexive, antisymmetric and transitive (checked
    /// via sort stability: sorting twice gives the same result).
    #[test]
    fn ordering_is_total_and_consistent(mut v in prop::collection::vec(arb_datum(), 0..20)) {
        v.sort();
        let once = v.clone();
        v.sort();
        prop_assert_eq!(once, v.clone());
        // Pairwise consistency of cmp with the sorted order.
        for w in v.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// cmp is antisymmetric.
    #[test]
    fn cmp_antisymmetric(a in arb_datum(), b in arb_datum()) {
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
    }

    /// Equal datums hash equal (including cross-width numerics).
    #[test]
    fn eq_implies_hash_eq(a in arb_datum(), b in arb_datum()) {
        if a == b {
            prop_assert_eq!(a.distribution_hash(), b.distribution_hash());
        }
    }

    /// Int32/Int64/integral-Float64 of the same value are equal and hash
    /// equal — required for hash-distribution co-location across types.
    #[test]
    fn numeric_widths_coincide(v in -1_000_000i32..1_000_000) {
        let a = Datum::Int32(v);
        let b = Datum::Int64(v as i64);
        let c = Datum::Float64(v as f64);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
        prop_assert_eq!(a.distribution_hash(), b.distribution_hash());
        prop_assert_eq!(b.distribution_hash(), c.distribution_hash());
    }

    /// Civil-date conversion round-trips for every day in ±500 years.
    #[test]
    fn civil_date_roundtrip(days in -182_000i32..182_000) {
        let (y, m, d) = civil_from_days(days);
        prop_assert_eq!(days_from_civil(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    /// Dates are ordered like their day numbers.
    #[test]
    fn date_order_matches_day_order(a in -50_000i32..50_000, b in -50_000i32..50_000) {
        prop_assert_eq!(Datum::Date(a).cmp(&Datum::Date(b)), a.cmp(&b));
    }

    /// Display of a date parses back (date literals round-trip through SQL).
    #[test]
    fn date_display_roundtrip(days in -50_000i32..50_000) {
        let d = Datum::Date(days);
        let s = d.to_string();
        prop_assert_eq!(mpp_common::value::parse_date(&s).unwrap(), d);
    }
}
