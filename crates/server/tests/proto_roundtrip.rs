//! Property tests for the wire codec: every message round-trips
//! byte-exactly, and no truncated or garbage input ever panics the
//! decoder — it must fail with a `DecodeError`, never a crash.

use mpp_common::{Datum, Row};
use mpp_server::{ClientMsg, ServerMsg};
use mppart::executor::ExecutionStats;
use mppart::CacheInfo;
use proptest::prelude::*;

fn datum() -> BoxedStrategy<Datum> {
    prop_oneof![
        Just(Datum::Null),
        any::<bool>().prop_map(Datum::Bool),
        any::<i32>().prop_map(Datum::Int32),
        any::<i64>().prop_map(Datum::Int64),
        // Finite floats only: the codec is bit-exact (NaN included) but
        // `PartialEq` on NaN would fail the comparison below.
        any::<i32>().prop_map(|v| Datum::Float64(v as f64 * 0.25)),
        "[a-z0-9]{0,12}".prop_map(Datum::str),
        any::<i32>().prop_map(Datum::Date),
    ]
    .boxed()
}

/// Uniform-width rows (the block body encodes one column count).
fn rows() -> BoxedStrategy<Vec<Row>> {
    prop::collection::vec((datum(), datum(), datum()), 0..24)
        .prop_map(|v| {
            v.into_iter()
                .map(|(a, b, c)| Row::new(vec![a, b, c]))
                .collect()
        })
        .boxed()
}

fn stats() -> BoxedStrategy<ExecutionStats> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(a, b, c, d, e, f)| ExecutionStats {
            part_opens: a,
            table_scans: b,
            tuples_scanned: c,
            rows_moved: d,
            rows_returned: e,
            blocks_produced: f,
            motions: a ^ b,
            selector_runs: c ^ d,
            rows_vectorized: e ^ f,
            rows_row_fallback: a ^ f,
            ..ExecutionStats::default()
        })
        .boxed()
}

fn cache_info() -> BoxedStrategy<Option<CacheInfo>> {
    prop_oneof![
        Just(None),
        (
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(
                |(hit, hits, misses, evictions, invalidations)| Some(CacheInfo {
                    hit,
                    hits,
                    misses,
                    evictions,
                    invalidations,
                })
            ),
    ]
    .boxed()
}

fn client_msg() -> BoxedStrategy<ClientMsg> {
    prop_oneof![
        (
            any::<u32>(),
            prop::collection::vec(("[a-z]{0,6}", "[a-z]{0,6}"), 0..3)
        )
            .prop_map(|(version, options)| ClientMsg::Hello {
                version,
                options: options
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            }),
        (
            "[a-zA-Z0-9 *(),.=<>]{0,40}",
            prop::collection::vec(datum(), 0..4)
        )
            .prop_map(|(sql, params)| ClientMsg::Query { sql, params }),
        ("[a-z]{0,8}", "[a-zA-Z0-9 ]{0,30}")
            .prop_map(|(name, sql)| ClientMsg::Prepare { name, sql }),
        ("[a-z]{0,8}", prop::collection::vec(datum(), 0..4))
            .prop_map(|(name, params)| ClientMsg::Execute { name, params }),
        "[a-z]{0,8}".prop_map(|name| ClientMsg::ClosePrepared { name }),
        Just(ClientMsg::Cancel),
        Just(ClientMsg::Stats),
        Just(ClientMsg::Goodbye),
        Just(ClientMsg::Shutdown),
    ]
    .boxed()
}

fn server_msg() -> BoxedStrategy<ServerMsg> {
    prop_oneof![
        any::<u32>().prop_map(|version| ServerMsg::HelloOk { version }),
        prop::collection::vec("[a-z_]{0,10}", 0..6).prop_map(|columns| {
            ServerMsg::RowDescription {
                columns: columns.into_iter().map(|c| c.to_string()).collect(),
            }
        }),
        rows().prop_map(|rows| ServerMsg::DataBlock { rows }),
        (stats(), cache_info())
            .prop_map(|(stats, cache)| ServerMsg::CommandComplete { stats, cache }),
        ("[a-z]{0,8}", any::<u32>())
            .prop_map(|(name, param_count)| ServerMsg::PrepareOk { name, param_count }),
        Just(ServerMsg::CloseOk),
        (
            "[a-z_]{1,12}",
            "[a-zA-Z0-9 ]{0,40}",
            prop_oneof![Just(None), stats().prop_map(Some)]
        )
            .prop_map(|(code, message, stats)| ServerMsg::Error {
                code,
                message,
                stats
            }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn client_messages_round_trip(msg in client_msg()) {
        let encoded = msg.encode();
        let decoded = ClientMsg::decode(&encoded).expect("decode");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn server_messages_round_trip(msg in server_msg()) {
        let encoded = msg.encode();
        let decoded = ServerMsg::decode(&encoded).expect("decode");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncated_client_frames_never_panic(msg in client_msg()) {
        let encoded = msg.encode();
        for len in 0..encoded.len() {
            // Every strict prefix must decode to an error, not a panic
            // or a silent short read.
            prop_assert!(ClientMsg::decode(&encoded[..len]).is_err());
        }
    }

    #[test]
    fn truncated_server_frames_never_panic(msg in server_msg()) {
        let encoded = msg.encode();
        for len in 0..encoded.len() {
            prop_assert!(ServerMsg::decode(&encoded[..len]).is_err());
        }
    }

    #[test]
    fn garbage_payloads_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..80)) {
        // Arbitrary bytes may happen to be a valid frame; the property
        // is only that the decoder always *returns*.
        let _ = ClientMsg::decode(&bytes);
        let _ = ServerMsg::decode(&bytes);
    }

    #[test]
    fn trailing_bytes_are_rejected(msg in client_msg(), junk in 1usize..8) {
        let mut encoded = msg.encode();
        encoded.extend(std::iter::repeat_n(0xabu8, junk));
        prop_assert!(ClientMsg::decode(&encoded).is_err());
    }
}
