//! Robustness under load and misbehaving clients: admission shedding,
//! bounded streaming memory against slow readers, mid-query cancel,
//! per-query limits, timeouts, and graceful shutdown.

use mpp_server::{Client, ClientError, ClientMsg, Server, ServerConfig, ServerMsg};
use mpp_session::SessionCtx;
use mpp_workloads::{setup_rs, SynthConfig};
use mppart::MppDb;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Demo tables with a *dense* join key (`b` in `[0, 5)`), so
/// `r JOIN s ON r.b = s.b` explodes to ~2M rows: slow enough to hold a
/// query slot for seconds in debug builds, big enough (~30 MB on the
/// wire) to overwhelm kernel socket buffering.
fn heavy_ctx() -> Arc<SessionCtx> {
    let db = MppDb::new(2);
    let cfg = SynthConfig {
        b_domain: 5,
        r_parts: Some(5),
        ..SynthConfig::default()
    };
    setup_rs(db.storage(), &cfg).unwrap();
    SessionCtx::with_db(db, 64)
}

/// ~1.4 s of work in a debug build, one output row.
const SLOW_SQL: &str = "SELECT count(*) FROM r JOIN s ON r.b = s.b";
/// Same join, materialized wide: ~2M rows x 5 ints ≈ 50 MB on the wire
/// (deliberately larger than the ~36 MB the kernel can absorb in loopback
/// socket buffers, so an unread result *must* stall the stream), streamed
/// as hundreds of blocks.
const HUGE_SQL: &str = "SELECT r.a, r.b, s.a, s.b, r.a FROM r JOIN s ON r.b = s.b";

fn start(cfg: ServerConfig) -> (Server, Arc<SessionCtx>) {
    let ctx = heavy_ctx();
    let server = Server::start(Arc::clone(&ctx), "127.0.0.1:0", cfg).unwrap();
    (server, ctx)
}

#[test]
fn inflight_limit_sheds_excess_queries_with_overloaded() {
    let (server, _ctx) = start(ServerConfig {
        max_inflight_queries: 2,
        admission_wait: Duration::from_millis(150),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let n = 8;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                let res = client.query(SLOW_SQL, &[]);
                let _ = client.goodbye();
                res
            })
        })
        .collect();

    let mut ok = 0;
    let mut shed = 0;
    for h in handles {
        match h.join().unwrap() {
            Ok(reply) => {
                assert_eq!(reply.rows.len(), 1);
                ok += 1;
            }
            Err(ClientError::Server { code, .. }) if code == mpp_server::CODE_OVERLOADED => {
                shed += 1
            }
            other => panic!("expected success or overloaded, got {other:?}"),
        }
    }
    // The two admitted queries run for seconds; the six waiters give up
    // after 150 ms. Thread-start skew can only move a waiter *earlier*,
    // so the split is deterministic.
    assert_eq!(ok, 2, "exactly the admitted queries should succeed");
    assert_eq!(shed, 6, "every waiter should shed");

    let m = server.metrics();
    assert_eq!(m.shed_queries, 6);
    assert_eq!(m.queries_ok, 2);

    // The server is healthy afterwards.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(
        client
            .query("SELECT count(*) FROM s", &[])
            .unwrap()
            .rows
            .len(),
        1
    );
    client.goodbye().unwrap();
    server.stop();
}

#[test]
fn connection_limit_sheds_at_handshake() {
    let (server, _ctx) = start(ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let c1 = Client::connect(addr).unwrap();
    let c2 = Client::connect(addr).unwrap();
    match Client::connect(addr) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, mpp_server::CODE_OVERLOADED),
        Err(other) => panic!("expected overloaded at handshake, got {other:?}"),
        Ok(_) => panic!("expected overloaded at handshake, got a connection"),
    }
    assert_eq!(server.metrics().shed_connections, 1);

    // Freeing a slot lets new connections in again.
    c1.goodbye().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    let c3 = loop {
        match Client::connect(addr) {
            Ok(c) => break c,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("slot never freed: {e}"),
        }
    };
    c3.goodbye().unwrap();
    c2.goodbye().unwrap();
    server.stop();
}

#[test]
fn slow_reader_backpressures_instead_of_buffering() {
    let channel_cap = 2;
    let (server, _ctx) = start(ServerConfig {
        stream_channel_blocks: channel_cap,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    client
        .send(&ClientMsg::Query {
            sql: HUGE_SQL.to_string(),
            params: Vec::new(),
        })
        .unwrap();

    // Read nothing. The worker thread fills the kernel socket buffers
    // and blocks; the executor fills the bounded channel and blocks.
    // Wait until the channel is demonstrably full — from then on the
    // executor is being back-pressured by our refusal to read.
    let deadline = Instant::now() + Duration::from_secs(120);
    let stalled = loop {
        assert!(Instant::now() < deadline, "stream never stalled");
        let m = server.metrics();
        if m.chunks_emitted >= m.blocks_streamed + channel_cap as u64 {
            break m;
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    assert_eq!(stalled.inflight_queries, 1, "query must still be running");
    // Hold the stall for a while: the server-side buffer must stay
    // bounded — frames held beyond what already reached the socket are
    // capped by the channel (+1 in the sender's hand, +1 in the
    // worker's hand), no matter how long we refuse to read.
    for _ in 0..10 {
        std::thread::sleep(Duration::from_millis(100));
        let m = server.metrics();
        assert!(
            m.chunks_emitted - m.blocks_streamed <= channel_cap as u64 + 2,
            "server buffered {} frames beyond the socket (cap {})",
            m.chunks_emitted - m.blocks_streamed,
            channel_cap
        );
    }

    // Drain: every row arrives, nothing was dropped while stalled.
    let mut rows = 0u64;
    let mut blocks = 0u64;
    loop {
        match client.recv().unwrap() {
            ServerMsg::RowDescription { .. } => {}
            ServerMsg::DataBlock { rows: r } => {
                rows += r.len() as u64;
                blocks += 1;
            }
            ServerMsg::CommandComplete { stats, .. } => {
                assert_eq!(stats.rows_returned, rows);
                break;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(
        blocks > channel_cap as u64,
        "result should span many blocks"
    );
    let end = server.metrics();
    assert!(
        end.chunks_emitted > stalled.chunks_emitted,
        "the stall was final?"
    );
    assert_eq!(end.inflight_queries, 0);

    client.goodbye().unwrap();
    server.stop();
}

#[test]
fn cancel_frame_stops_query_mid_stream() {
    let (server, ctx) = start(ServerConfig::default());
    let addr = server.local_addr();

    // Baseline: the full scan footprint of the uncancelled join. The
    // count form scans exactly the tuples the materialized form does,
    // without collecting 2M wide rows here.
    let full = ctx.session().sql(SLOW_SQL).unwrap();
    let full_scanned = full.stats.tuples_scanned;

    let mut client = Client::connect(addr).unwrap();
    client
        .send(&ClientMsg::Query {
            sql: HUGE_SQL.to_string(),
            params: Vec::new(),
        })
        .unwrap();

    let mut cancelled = false;
    let partial = loop {
        match client.recv().unwrap() {
            ServerMsg::RowDescription { .. } => {}
            ServerMsg::DataBlock { .. } => {
                if !cancelled {
                    // Out-of-band: the reader thread trips the token
                    // while blocks are still streaming.
                    client.canceller().unwrap().cancel().unwrap();
                    cancelled = true;
                }
            }
            ServerMsg::Error { code, stats, .. } => {
                assert_eq!(code, "cancelled");
                break stats.expect("partial stats must accompany a cancel");
            }
            ServerMsg::CommandComplete { .. } => {
                panic!("query completed before cancel took effect")
            }
            other => panic!("unexpected frame {other:?}"),
        }
    };
    assert!(
        partial.tuples_scanned < full_scanned,
        "cancel must stop the scan early: partial {} vs full {}",
        partial.tuples_scanned,
        full_scanned
    );
    assert_eq!(server.metrics().queries_cancelled, 1);

    // The connection survives its own cancel.
    let reply = client.query("SELECT count(*) FROM s", &[]).unwrap();
    assert_eq!(reply.rows.len(), 1);
    client.goodbye().unwrap();
    server.stop();
}

#[test]
fn dropped_connection_cancels_inflight_query() {
    let (server, _ctx) = start(ServerConfig::default());
    let addr = server.local_addr();

    {
        let mut client = Client::connect(addr).unwrap();
        client
            .send(&ClientMsg::Query {
                sql: HUGE_SQL.to_string(),
                params: Vec::new(),
            })
            .unwrap();
        // Wait until execution has demonstrably started, then vanish.
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.metrics().chunks_emitted == 0 {
            assert!(Instant::now() < deadline, "query never started");
            std::thread::sleep(Duration::from_millis(20));
        }
    } // drop = socket close

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let m = server.metrics();
        if m.inflight_queries == 0 && m.active_connections == 0 {
            assert_eq!(
                m.queries_ok, 0,
                "a query without a reader must not 'succeed'"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "query kept running after its client disappeared: {m:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.stop();
}

#[test]
fn per_query_limits_and_timeouts_kill_queries_with_stable_codes() {
    let (server, _ctx) = start(ServerConfig {
        max_rows_per_query: Some(1_000),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.query("SELECT a, b FROM r", &[]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "limit_rows"),
        other => panic!("expected limit_rows, got {other:?}"),
    }
    // Small results stay under the cap and still work.
    assert!(client.query("SELECT count(*) FROM r", &[]).is_ok());
    client.goodbye().unwrap();
    server.stop();

    let (server, _ctx) = start(ServerConfig {
        query_timeout: Some(Duration::from_millis(50)),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.query(SLOW_SQL, &[]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "timeout"),
        other => panic!("expected timeout, got {other:?}"),
    }
    client.goodbye().unwrap();
    server.stop();

    let (server, _ctx) = start(ServerConfig {
        max_bytes_per_query: Some(64 * 1024),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.query("SELECT a, b FROM r", &[]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "limit_bytes"),
        other => panic!("expected limit_bytes, got {other:?}"),
    }
    client.goodbye().unwrap();
    server.stop();
}

#[test]
fn graceful_shutdown_drains_inflight_queries() {
    let (server, _ctx) = start(ServerConfig {
        shutdown_drain: Duration::from_secs(30),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.query(SLOW_SQL, &[])
    });
    // Let the query get admitted, then begin shutdown.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.metrics().inflight_queries == 0 {
        assert!(Instant::now() < deadline, "query never started");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.stop();

    // The in-flight query completed despite the shutdown.
    let reply = worker
        .join()
        .unwrap()
        .expect("draining shutdown must not kill the query");
    assert_eq!(reply.rows.len(), 1);
    assert_eq!(server.metrics().queries_ok, 1);

    // And the listener is gone: nothing new gets in.
    assert!(Client::connect(addr).is_err());
}
