//! End-to-end over real sockets: wire results must be *identical* to
//! in-process `Session::sql` — multiset row equality plus error-kind
//! equality — for ad-hoc, prepared, EXPLAIN and DDL statements.

use mpp_common::{Datum, Row};
use mpp_server::{Client, ClientError, Server, ServerConfig, PROTOCOL_VERSION};
use mpp_server::{ClientMsg, ServerMsg};
use mpp_session::SessionCtx;
use mpp_workloads::{setup_rs, SynthConfig};
use mppart::MppDb;
use std::sync::Arc;

fn demo_ctx() -> Arc<SessionCtx> {
    let db = MppDb::new(2);
    setup_rs(db.storage(), &SynthConfig::default()).unwrap();
    SessionCtx::with_db(db, 64)
}

fn start(cfg: ServerConfig) -> (Server, Arc<SessionCtx>) {
    let ctx = demo_ctx();
    let server = Server::start(Arc::clone(&ctx), "127.0.0.1:0", cfg).unwrap();
    (server, ctx)
}

/// Order-insensitive row fingerprint: sorted debug renderings.
fn multiset(rows: &[Row]) -> Vec<String> {
    let mut keys: Vec<String> = rows.iter().map(|r| format!("{:?}", r.values())).collect();
    keys.sort();
    keys
}

const STATEMENTS: &[&str] = &[
    "SELECT count(*) FROM r",
    "SELECT a, b FROM r WHERE b = 5",
    "SELECT b, count(*) FROM r WHERE b < 50 GROUP BY b",
    "SELECT r.a, s.b FROM r JOIN s ON r.b = s.b WHERE r.a < 200",
    "SELECT a FROM r WHERE b BETWEEN 10 AND 20",
    "EXPLAIN SELECT count(*) FROM r WHERE b = 7",
];

#[test]
fn adhoc_queries_match_in_process() {
    let (server, ctx) = start(ServerConfig::default());
    let session = ctx.session();
    let mut client = Client::connect(server.local_addr()).unwrap();

    for sql in STATEMENTS {
        let wire = client.query(sql, &[]).unwrap();
        let local = session.sql(sql).unwrap();
        assert_eq!(
            multiset(&wire.rows),
            multiset(&local.rows),
            "row mismatch for {sql}"
        );
        assert_eq!(
            wire.stats.rows_returned, local.stats.rows_returned,
            "rows_returned mismatch for {sql}"
        );
        assert_eq!(
            wire.stats.tuples_scanned, local.stats.tuples_scanned,
            "tuples_scanned mismatch for {sql}"
        );
        assert!(!wire.columns.is_empty(), "no RowDescription for {sql}");
    }

    let explain = client.query("EXPLAIN SELECT count(*) FROM r", &[]).unwrap();
    assert_eq!(explain.columns, vec!["QUERY PLAN".to_string()]);

    client.goodbye().unwrap();
    server.stop();
}

#[test]
fn errors_carry_engine_kinds() {
    let (server, ctx) = start(ServerConfig::default());
    let session = ctx.session();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let cases = [
        "SELEKT 1",                     // parse
        "SELECT zzz FROM r",            // bind
        "SELECT a FROM no_such_table",  // not_found / bind
        "SELECT a FROM r WHERE b = $1", // missing parameter
    ];
    for sql in cases {
        let local_kind = session.sql(sql).unwrap_err().kind();
        match client.query(sql, &[]) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, local_kind, "error kind mismatch for {sql}")
            }
            other => panic!("expected server error for {sql}, got {other:?}"),
        }
    }

    // Connection stays usable after errors.
    let reply = client.query("SELECT count(*) FROM r", &[]).unwrap();
    assert_eq!(reply.rows.len(), 1);
    client.goodbye().unwrap();
    server.stop();
}

#[test]
fn prepared_statements_match_in_process() {
    let (server, ctx) = start(ServerConfig::default());
    let session = ctx.session();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let sql = "SELECT a, b FROM r WHERE b = $1";
    let param_count = client.prepare("q1", sql).unwrap();
    assert_eq!(param_count, 1);
    let local = session.prepare(sql).unwrap();

    for key in [1i32, 7, 42, 999] {
        let params = [Datum::Int32(key)];
        let wire = client.execute("q1", &params).unwrap();
        let in_proc = local.execute(&params).unwrap();
        assert_eq!(
            multiset(&wire.rows),
            multiset(&in_proc.rows),
            "prepared mismatch for key {key}"
        );
        assert_eq!(wire.columns, local.columns());
    }

    // Param arity error matches the in-process kind.
    let local_kind = local.execute(&[]).unwrap_err().kind();
    match client.execute("q1", &[]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, local_kind),
        other => panic!("expected arity error, got {other:?}"),
    }

    client.close_prepared("q1").unwrap();
    match client.execute("q1", &[Datum::Int32(1)]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "unknown_prepared"),
        other => panic!("expected unknown_prepared, got {other:?}"),
    }

    client.goodbye().unwrap();
    server.stop();
}

#[test]
fn ddl_and_inserts_work_over_the_wire() {
    let (server, ctx) = start(ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    let ddl = client
        .query("CREATE TABLE wire_t (k int NOT NULL, v int)", &[])
        .unwrap();
    assert!(ddl.columns.is_empty(), "DDL must not send RowDescription");

    client
        .query("INSERT INTO wire_t VALUES (1, 10), (2, 20), (3, 30)", &[])
        .unwrap();
    let reply = client
        .query("SELECT k, v FROM wire_t WHERE k <= 2", &[])
        .unwrap();
    assert_eq!(reply.rows.len(), 2);

    // The DDL is visible to in-process sessions on the same ctx.
    let local = ctx.session().sql("SELECT count(*) FROM wire_t").unwrap();
    assert_eq!(format!("{:?}", local.rows[0].values()), "[Int64(3)]");

    client.goodbye().unwrap();
    server.stop();
}

#[test]
fn large_results_arrive_in_multiple_data_blocks() {
    let (server, ctx) = start(ServerConfig::default());
    let session = ctx.session();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let sql = "SELECT a, b FROM r";
    let wire = client.query(sql, &[]).unwrap();
    let local = session.sql(sql).unwrap();
    assert_eq!(wire.rows.len(), local.rows.len());
    assert_eq!(multiset(&wire.rows), multiset(&local.rows));
    assert!(
        wire.data_blocks > 1,
        "10k rows should stream in several DataBlock frames, got {}",
        wire.data_blocks
    );

    client.goodbye().unwrap();
    server.stop();
}

#[test]
fn concurrent_clients_each_get_exact_results() {
    let (server, ctx) = start(ServerConfig {
        max_connections: 64,
        max_inflight_queries: 64,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let session = ctx.session();
    let expected: Vec<Vec<String>> = STATEMENTS
        .iter()
        .map(|sql| multiset(&session.sql(sql).unwrap().rows))
        .collect();

    let handles: Vec<_> = (0..8)
        .map(|worker| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for round in 0..3 {
                    for (i, sql) in STATEMENTS.iter().enumerate() {
                        let reply = client.query(sql, &[]).unwrap();
                        assert_eq!(
                            multiset(&reply.rows),
                            expected[i],
                            "worker {worker} round {round}: {sql}"
                        );
                    }
                }
                client.goodbye().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let m = server.metrics();
    assert_eq!(m.queries_err, 0);
    assert_eq!(m.queries_ok, 8 * 3 * STATEMENTS.len() as u64);
    server.stop();
}

#[test]
fn malformed_handshake_gets_error_and_server_survives() {
    let (server, _ctx) = start(ServerConfig::default());
    let addr = server.local_addr();

    // 1. Garbage frame instead of Hello.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        mpp_server::write_frame(&mut raw, &[0xde, 0xad, 0xbe, 0xef]).unwrap();
        raw.flush().unwrap();
        let frame = mpp_server::read_frame(&mut raw, mpp_server::MAX_FRAME)
            .unwrap()
            .expect("server should answer before closing");
        match ServerMsg::decode(&frame).unwrap() {
            ServerMsg::Error { code, .. } => assert_eq!(code, "protocol"),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    // 2. Wrong protocol version.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        let hello = ClientMsg::Hello {
            version: PROTOCOL_VERSION + 99,
            options: Vec::new(),
        };
        mpp_server::write_frame(&mut raw, &hello.encode()).unwrap();
        raw.flush().unwrap();
        let frame = mpp_server::read_frame(&mut raw, mpp_server::MAX_FRAME)
            .unwrap()
            .expect("server should answer before closing");
        match ServerMsg::decode(&frame).unwrap() {
            ServerMsg::Error { code, .. } => assert_eq!(code, "protocol"),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    // 3. A well-behaved client still works afterwards.
    let mut client = Client::connect(addr).unwrap();
    let reply = client.query("SELECT count(*) FROM r", &[]).unwrap();
    assert_eq!(reply.rows.len(), 1);
    client.goodbye().unwrap();
    server.stop();
}
