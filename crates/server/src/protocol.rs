//! The wire protocol: length-prefixed binary frames.
//!
//! Every message travels as one *frame*: a little-endian `u32` payload
//! length followed by the payload, whose first byte is the message type
//! and whose remainder is the message body. Client-originated types use
//! the `0x0_` range, server-originated types `0x8_`, so a stray frame
//! read in the wrong direction decodes to a clean error rather than a
//! misparse.
//!
//! Decoding never panics on hostile input: every length and count is
//! checked against the bytes actually present *before* any allocation
//! is sized from it, unknown type bytes and trailing garbage are
//! errors, and [`read_frame`] rejects length headers above
//! [`MAX_FRAME`] without reading (or allocating) the claimed payload.
//!
//! There is no serde in this layer on purpose: the vendored serde stub
//! has a no-op derive, and the frame layout is part of the protocol
//! contract — spelled out here, tested by round-trip in
//! `tests/proto_roundtrip.rs`.

use crate::metrics::MetricsSnapshot;
use mpp_common::{Datum, MotionId, PartOid, Row, TableOid};
use mppart::executor::{ExecutionStats, SegmentStats};
use mppart::CacheInfo;
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Protocol revision carried in `Hello`; the server rejects mismatches.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one frame's payload. Large results never need large
/// frames — they stream as many `DataBlock`s — so this is purely a
/// defense against hostile length headers.
pub const MAX_FRAME: usize = 16 << 20;

/// Error code carried by [`ServerMsg::Error`] when admission control
/// sheds a query or connection.
pub const CODE_OVERLOADED: &str = "overloaded";

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// First frame on every connection.
    Hello {
        version: u32,
        /// Free-form option pairs (reserved; the server currently
        /// ignores unknown keys rather than erroring).
        options: Vec<(String, String)>,
    },
    /// Run one SQL statement with positional `$n` parameters.
    Query { sql: String, params: Vec<Datum> },
    /// Plan a statement once under a connection-local name.
    Prepare { name: String, sql: String },
    /// Execute a named prepared statement.
    Execute { name: String, params: Vec<Datum> },
    /// Forget a named prepared statement.
    ClosePrepared { name: String },
    /// Stop the in-flight query at its next block boundary. Sent
    /// out-of-band: the server reads it while a query is streaming.
    Cancel,
    /// Ask for a server metrics snapshot.
    Stats,
    /// Orderly connection close.
    Goodbye,
    /// Ask the whole server to shut down gracefully.
    Shutdown,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Handshake accepted.
    HelloOk { version: u32 },
    /// Output column names, sent before the first `DataBlock` of any
    /// row-returning statement.
    RowDescription { columns: Vec<String> },
    /// One chunk of result rows. A large result is a sequence of these.
    DataBlock { rows: Vec<Row> },
    /// Successful end of a statement, with its execution statistics and
    /// (when the statement ran through the plan cache) cache counters.
    CommandComplete {
        stats: ExecutionStats,
        cache: Option<CacheInfo>,
    },
    /// `Prepare` succeeded.
    PrepareOk { name: String, param_count: u32 },
    /// `ClosePrepared` done (idempotent).
    CloseOk,
    /// Reply to `Stats`.
    StatsReply { metrics: MetricsSnapshot },
    /// Any failure: a stable machine-readable `code` (an engine error
    /// kind, or a server-level code such as `"overloaded"`,
    /// `"cancelled"`, `"timeout"`, `"limit_rows"`, `"limit_bytes"`,
    /// `"protocol"`, `"shutting_down"`, `"unknown_prepared"`), a human
    /// message, and — when execution had started — the partial
    /// statistics up to the failure point.
    Error {
        code: String,
        message: String,
        stats: Option<ExecutionStats>,
    },
}

// ---------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------

/// Write one frame: `u32` little-endian payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame's payload. `Ok(None)` is a clean EOF *at a frame
/// boundary*; EOF inside a frame is an error. A length header above
/// `max` is rejected before anything is allocated or read.
pub fn read_frame(r: &mut impl Read, max: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read(&mut len[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut len[1..])?,
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {n} exceeds limit {max}"),
        ));
    }
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------

/// Decode failure: what was wrong with the bytes. Never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

type DResult<T> = Result<T, DecodeError>;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Sequential reader over a payload that reports truncation instead of
/// panicking.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> DResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(DecodeError(format!(
                "truncated: need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> DResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> DResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError(format!("invalid bool byte {b:#04x}"))),
        }
    }

    fn u32(&mut self) -> DResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> DResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> DResult<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> DResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> DResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DecodeError("string is not valid UTF-8".into()))
    }

    /// A collection count, sanity-checked: each element needs at least
    /// `min_elem` bytes, so a count the remaining bytes cannot possibly
    /// satisfy is rejected *before* any allocation is sized from it.
    fn count(&mut self, what: &str, min_elem: usize) -> DResult<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(DecodeError(format!(
                "{what} count {n} impossible with {} bytes left",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn finish(&self) -> DResult<()> {
        if self.remaining() != 0 {
            return Err(DecodeError(format!(
                "{} trailing bytes after message",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Datum / Row encoding
// ---------------------------------------------------------------------

const DATUM_NULL: u8 = 0;
const DATUM_BOOL: u8 = 1;
const DATUM_INT32: u8 = 2;
const DATUM_INT64: u8 = 3;
const DATUM_FLOAT64: u8 = 4;
const DATUM_STR: u8 = 5;
const DATUM_DATE: u8 = 6;

fn put_datum(buf: &mut Vec<u8>, d: &Datum) {
    match d {
        Datum::Null => buf.push(DATUM_NULL),
        Datum::Bool(b) => {
            buf.push(DATUM_BOOL);
            buf.push(*b as u8);
        }
        Datum::Int32(v) => {
            buf.push(DATUM_INT32);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Datum::Int64(v) => {
            buf.push(DATUM_INT64);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Datum::Float64(v) => {
            buf.push(DATUM_FLOAT64);
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Datum::Str(s) => {
            buf.push(DATUM_STR);
            put_str(buf, s);
        }
        Datum::Date(v) => {
            buf.push(DATUM_DATE);
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn get_datum(c: &mut Cursor<'_>) -> DResult<Datum> {
    match c.u8()? {
        DATUM_NULL => Ok(Datum::Null),
        DATUM_BOOL => Ok(Datum::Bool(c.bool()?)),
        DATUM_INT32 => Ok(Datum::Int32(c.i32()?)),
        DATUM_INT64 => Ok(Datum::Int64(c.i64()?)),
        DATUM_FLOAT64 => Ok(Datum::Float64(f64::from_bits(c.u64()?))),
        DATUM_STR => Ok(Datum::str(c.str()?)),
        DATUM_DATE => Ok(Datum::Date(c.i32()?)),
        t => Err(DecodeError(format!("unknown datum tag {t:#04x}"))),
    }
}

fn put_params(buf: &mut Vec<u8>, params: &[Datum]) {
    put_u32(buf, params.len() as u32);
    for p in params {
        put_datum(buf, p);
    }
}

fn get_params(c: &mut Cursor<'_>) -> DResult<Vec<Datum>> {
    let n = c.count("param", 1)?;
    (0..n).map(|_| get_datum(c)).collect()
}

/// Encoded size of one row's datums (tag byte + payload each). The
/// server uses this to cut arbitrarily large executor chunks into
/// bounded `DataBlock` frames *before* encoding them.
pub(crate) fn row_wire_size(row: &Row) -> usize {
    row.values()
        .iter()
        .map(|d| match d {
            Datum::Null => 1,
            Datum::Bool(_) => 2,
            Datum::Int32(_) | Datum::Date(_) => 5,
            Datum::Int64(_) | Datum::Float64(_) => 9,
            Datum::Str(s) => 5 + s.len(),
        })
        .sum()
}

/// Row-major block body: row count, column count, then every datum.
/// Zero-column rows are legal (e.g. `SELECT` with no output columns
/// never occurs, but empty blocks do).
fn put_rows(buf: &mut Vec<u8>, rows: &[Row]) {
    put_u32(buf, rows.len() as u32);
    let cols = rows.first().map(|r| r.values().len()).unwrap_or(0);
    put_u32(buf, cols as u32);
    for row in rows {
        debug_assert_eq!(row.values().len(), cols, "ragged block");
        for d in row.values() {
            put_datum(buf, d);
        }
    }
}

fn get_rows(c: &mut Cursor<'_>) -> DResult<Vec<Row>> {
    let nrows = c.count("row", 1)?;
    let ncols = c.u32()? as usize;
    if nrows.saturating_mul(ncols) > c.remaining() {
        return Err(DecodeError(format!(
            "block {nrows}x{ncols} impossible with {} bytes left",
            c.remaining()
        )));
    }
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut vals = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            vals.push(get_datum(c)?);
        }
        rows.push(Row::new(vals));
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// Statistics encoding (satellite: every stats field crosses the wire)
// ---------------------------------------------------------------------

/// `parts_scanned` maps travel sorted by table then partition OID so
/// encoding is deterministic (same stats → same bytes).
fn put_parts_map(buf: &mut Vec<u8>, m: &HashMap<TableOid, HashSet<PartOid>>) {
    let mut tables: Vec<_> = m.iter().collect();
    tables.sort_by_key(|(t, _)| t.raw());
    put_u32(buf, tables.len() as u32);
    for (table, parts) in tables {
        put_u32(buf, table.raw());
        let mut sorted: Vec<_> = parts.iter().map(|p| p.raw()).collect();
        sorted.sort_unstable();
        put_u32(buf, sorted.len() as u32);
        for p in sorted {
            put_u32(buf, p);
        }
    }
}

fn get_parts_map(c: &mut Cursor<'_>) -> DResult<HashMap<TableOid, HashSet<PartOid>>> {
    let ntables = c.count("table", 8)?;
    let mut m = HashMap::with_capacity(ntables);
    for _ in 0..ntables {
        let table = TableOid(c.u32()?);
        let nparts = c.count("partition", 4)?;
        let mut parts = HashSet::with_capacity(nparts);
        for _ in 0..nparts {
            parts.insert(PartOid(c.u32()?));
        }
        m.insert(table, parts);
    }
    Ok(m)
}

/// `scan_rows` maps travel sorted by table OID, like `parts_scanned`.
fn put_scan_rows(buf: &mut Vec<u8>, m: &HashMap<TableOid, u64>) {
    let mut tables: Vec<_> = m.iter().collect();
    tables.sort_by_key(|(t, _)| t.raw());
    put_u32(buf, tables.len() as u32);
    for (table, rows) in tables {
        put_u32(buf, table.raw());
        put_u64(buf, *rows);
    }
}

fn get_scan_rows(c: &mut Cursor<'_>) -> DResult<HashMap<TableOid, u64>> {
    let ntables = c.count("table", 12)?;
    let mut m = HashMap::with_capacity(ntables);
    for _ in 0..ntables {
        let table = TableOid(c.u32()?);
        m.insert(table, c.u64()?);
    }
    Ok(m)
}

fn put_duration(buf: &mut Vec<u8>, d: Duration) {
    put_u64(buf, d.as_secs());
    put_u32(buf, d.subsec_nanos());
}

fn get_duration(c: &mut Cursor<'_>) -> DResult<Duration> {
    let secs = c.u64()?;
    let nanos = c.u32()?;
    if nanos >= 1_000_000_000 {
        return Err(DecodeError(format!("duration nanos {nanos} out of range")));
    }
    Ok(Duration::new(secs, nanos))
}

fn put_segment_stats(buf: &mut Vec<u8>, s: &SegmentStats) {
    put_duration(buf, s.elapsed);
    put_parts_map(buf, &s.parts_scanned);
    for v in [
        s.part_opens,
        s.table_scans,
        s.tuples_scanned,
        s.rows_moved,
        s.selector_runs,
        s.rows_vectorized,
        s.rows_row_fallback,
        s.blocks_produced,
    ] {
        put_u64(buf, v);
    }
    put_scan_rows(buf, &s.scan_rows);
}

fn get_segment_stats(c: &mut Cursor<'_>) -> DResult<SegmentStats> {
    Ok(SegmentStats {
        elapsed: get_duration(c)?,
        parts_scanned: get_parts_map(c)?,
        part_opens: c.u64()?,
        table_scans: c.u64()?,
        tuples_scanned: c.u64()?,
        rows_moved: c.u64()?,
        selector_runs: c.u64()?,
        rows_vectorized: c.u64()?,
        rows_row_fallback: c.u64()?,
        blocks_produced: c.u64()?,
        scan_rows: get_scan_rows(c)?,
    })
}

/// Encode the full [`ExecutionStats`] — every field, so the client's
/// view is exactly the in-process view.
fn put_execution_stats(buf: &mut Vec<u8>, s: &ExecutionStats) {
    put_parts_map(buf, &s.parts_scanned);
    for v in [
        s.part_opens,
        s.table_scans,
        s.tuples_scanned,
        s.rows_moved,
        s.motions,
        s.rows_returned,
        s.selector_runs,
        s.rows_vectorized,
        s.rows_row_fallback,
        s.blocks_produced,
    ] {
        put_u64(buf, v);
    }
    let mut motions: Vec<_> = s.per_motion_rows.iter().collect();
    motions.sort_by_key(|(id, _)| id.raw());
    put_u32(buf, motions.len() as u32);
    for (id, rows) in motions {
        put_u32(buf, id.raw());
        put_u64(buf, *rows);
    }
    put_scan_rows(buf, &s.scan_rows);
    put_u32(buf, s.per_segment.len() as u32);
    for seg in &s.per_segment {
        put_segment_stats(buf, seg);
    }
}

fn get_execution_stats(c: &mut Cursor<'_>) -> DResult<ExecutionStats> {
    let mut s = ExecutionStats {
        parts_scanned: get_parts_map(c)?,
        part_opens: c.u64()?,
        table_scans: c.u64()?,
        tuples_scanned: c.u64()?,
        rows_moved: c.u64()?,
        motions: c.u64()?,
        rows_returned: c.u64()?,
        selector_runs: c.u64()?,
        rows_vectorized: c.u64()?,
        rows_row_fallback: c.u64()?,
        blocks_produced: c.u64()?,
        per_motion_rows: HashMap::new(),
        scan_rows: HashMap::new(),
        per_segment: Vec::new(),
    };
    let nmotions = c.count("motion", 12)?;
    for _ in 0..nmotions {
        let id = MotionId(c.u32()?);
        let rows = c.u64()?;
        s.per_motion_rows.insert(id, rows);
    }
    s.scan_rows = get_scan_rows(c)?;
    let nsegs = c.count("segment", 12)?;
    for _ in 0..nsegs {
        s.per_segment.push(get_segment_stats(c)?);
    }
    Ok(s)
}

fn put_cache_info(buf: &mut Vec<u8>, info: &CacheInfo) {
    buf.push(info.hit as u8);
    put_u64(buf, info.hits);
    put_u64(buf, info.misses);
    put_u64(buf, info.evictions);
    put_u64(buf, info.invalidations);
}

fn get_cache_info(c: &mut Cursor<'_>) -> DResult<CacheInfo> {
    Ok(CacheInfo {
        hit: c.bool()?,
        hits: c.u64()?,
        misses: c.u64()?,
        evictions: c.u64()?,
        invalidations: c.u64()?,
    })
}

fn put_metrics(buf: &mut Vec<u8>, m: &MetricsSnapshot) {
    for v in [
        m.active_connections,
        m.total_connections,
        m.shed_connections,
        m.inflight_queries,
        m.queued_queries,
        m.shed_queries,
        m.queries_started,
        m.queries_ok,
        m.queries_err,
        m.queries_cancelled,
        m.rows_streamed,
        m.blocks_streamed,
        m.bytes_streamed,
        m.chunks_emitted,
        m.cache_hits,
        m.cache_misses,
        m.latency_count,
    ] {
        put_u64(buf, v);
    }
    put_u32(buf, m.latency_buckets.len() as u32);
    for b in &m.latency_buckets {
        put_u64(buf, *b);
    }
}

fn get_metrics(c: &mut Cursor<'_>) -> DResult<MetricsSnapshot> {
    let mut m = MetricsSnapshot {
        active_connections: c.u64()?,
        total_connections: c.u64()?,
        shed_connections: c.u64()?,
        inflight_queries: c.u64()?,
        queued_queries: c.u64()?,
        shed_queries: c.u64()?,
        queries_started: c.u64()?,
        queries_ok: c.u64()?,
        queries_err: c.u64()?,
        queries_cancelled: c.u64()?,
        rows_streamed: c.u64()?,
        blocks_streamed: c.u64()?,
        bytes_streamed: c.u64()?,
        chunks_emitted: c.u64()?,
        cache_hits: c.u64()?,
        cache_misses: c.u64()?,
        latency_count: c.u64()?,
        latency_buckets: Vec::new(),
    };
    let nbuckets = c.count("latency bucket", 8)?;
    m.latency_buckets = (0..nbuckets).map(|_| c.u64()).collect::<DResult<_>>()?;
    Ok(m)
}

// ---------------------------------------------------------------------
// Message encoding
// ---------------------------------------------------------------------

const CM_HELLO: u8 = 0x01;
const CM_QUERY: u8 = 0x02;
const CM_PREPARE: u8 = 0x03;
const CM_EXECUTE: u8 = 0x04;
const CM_CLOSE_PREPARED: u8 = 0x05;
const CM_CANCEL: u8 = 0x06;
const CM_STATS: u8 = 0x07;
const CM_GOODBYE: u8 = 0x08;
const CM_SHUTDOWN: u8 = 0x09;

const SM_HELLO_OK: u8 = 0x81;
const SM_ROW_DESCRIPTION: u8 = 0x82;
const SM_DATA_BLOCK: u8 = 0x83;
const SM_COMMAND_COMPLETE: u8 = 0x84;
const SM_PREPARE_OK: u8 = 0x85;
const SM_CLOSE_OK: u8 = 0x86;
const SM_STATS_REPLY: u8 = 0x87;
const SM_ERROR: u8 = 0x88;

impl ClientMsg {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            ClientMsg::Hello { version, options } => {
                buf.push(CM_HELLO);
                put_u32(&mut buf, *version);
                put_u32(&mut buf, options.len() as u32);
                for (k, v) in options {
                    put_str(&mut buf, k);
                    put_str(&mut buf, v);
                }
            }
            ClientMsg::Query { sql, params } => {
                buf.push(CM_QUERY);
                put_str(&mut buf, sql);
                put_params(&mut buf, params);
            }
            ClientMsg::Prepare { name, sql } => {
                buf.push(CM_PREPARE);
                put_str(&mut buf, name);
                put_str(&mut buf, sql);
            }
            ClientMsg::Execute { name, params } => {
                buf.push(CM_EXECUTE);
                put_str(&mut buf, name);
                put_params(&mut buf, params);
            }
            ClientMsg::ClosePrepared { name } => {
                buf.push(CM_CLOSE_PREPARED);
                put_str(&mut buf, name);
            }
            ClientMsg::Cancel => buf.push(CM_CANCEL),
            ClientMsg::Stats => buf.push(CM_STATS),
            ClientMsg::Goodbye => buf.push(CM_GOODBYE),
            ClientMsg::Shutdown => buf.push(CM_SHUTDOWN),
        }
        buf
    }

    pub fn decode(payload: &[u8]) -> DResult<ClientMsg> {
        let mut c = Cursor::new(payload);
        let msg = match c.u8()? {
            CM_HELLO => {
                let version = c.u32()?;
                let n = c.count("option", 8)?;
                let mut options = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = c.str()?;
                    let v = c.str()?;
                    options.push((k, v));
                }
                ClientMsg::Hello { version, options }
            }
            CM_QUERY => ClientMsg::Query {
                sql: c.str()?,
                params: get_params(&mut c)?,
            },
            CM_PREPARE => ClientMsg::Prepare {
                name: c.str()?,
                sql: c.str()?,
            },
            CM_EXECUTE => ClientMsg::Execute {
                name: c.str()?,
                params: get_params(&mut c)?,
            },
            CM_CLOSE_PREPARED => ClientMsg::ClosePrepared { name: c.str()? },
            CM_CANCEL => ClientMsg::Cancel,
            CM_STATS => ClientMsg::Stats,
            CM_GOODBYE => ClientMsg::Goodbye,
            CM_SHUTDOWN => ClientMsg::Shutdown,
            t => return Err(DecodeError(format!("unknown client message type {t:#04x}"))),
        };
        c.finish()?;
        Ok(msg)
    }
}

impl ServerMsg {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            ServerMsg::HelloOk { version } => {
                buf.push(SM_HELLO_OK);
                put_u32(&mut buf, *version);
            }
            ServerMsg::RowDescription { columns } => {
                buf.push(SM_ROW_DESCRIPTION);
                put_u32(&mut buf, columns.len() as u32);
                for col in columns {
                    put_str(&mut buf, col);
                }
            }
            ServerMsg::DataBlock { rows } => {
                buf.push(SM_DATA_BLOCK);
                put_rows(&mut buf, rows);
            }
            ServerMsg::CommandComplete { stats, cache } => {
                buf.push(SM_COMMAND_COMPLETE);
                put_execution_stats(&mut buf, stats);
                match cache {
                    None => buf.push(0),
                    Some(info) => {
                        buf.push(1);
                        put_cache_info(&mut buf, info);
                    }
                }
            }
            ServerMsg::PrepareOk { name, param_count } => {
                buf.push(SM_PREPARE_OK);
                put_str(&mut buf, name);
                put_u32(&mut buf, *param_count);
            }
            ServerMsg::CloseOk => buf.push(SM_CLOSE_OK),
            ServerMsg::StatsReply { metrics } => {
                buf.push(SM_STATS_REPLY);
                put_metrics(&mut buf, metrics);
            }
            ServerMsg::Error {
                code,
                message,
                stats,
            } => {
                buf.push(SM_ERROR);
                put_str(&mut buf, code);
                put_str(&mut buf, message);
                match stats {
                    None => buf.push(0),
                    Some(s) => {
                        buf.push(1);
                        put_execution_stats(&mut buf, s);
                    }
                }
            }
        }
        buf
    }

    pub fn decode(payload: &[u8]) -> DResult<ServerMsg> {
        let mut c = Cursor::new(payload);
        let msg = match c.u8()? {
            SM_HELLO_OK => ServerMsg::HelloOk { version: c.u32()? },
            SM_ROW_DESCRIPTION => {
                let n = c.count("column", 4)?;
                let columns = (0..n).map(|_| c.str()).collect::<DResult<_>>()?;
                ServerMsg::RowDescription { columns }
            }
            SM_DATA_BLOCK => ServerMsg::DataBlock {
                rows: get_rows(&mut c)?,
            },
            SM_COMMAND_COMPLETE => {
                let stats = get_execution_stats(&mut c)?;
                let cache = match c.u8()? {
                    0 => None,
                    1 => Some(get_cache_info(&mut c)?),
                    b => return Err(DecodeError(format!("invalid option byte {b:#04x}"))),
                };
                ServerMsg::CommandComplete { stats, cache }
            }
            SM_PREPARE_OK => ServerMsg::PrepareOk {
                name: c.str()?,
                param_count: c.u32()?,
            },
            SM_CLOSE_OK => ServerMsg::CloseOk,
            SM_STATS_REPLY => ServerMsg::StatsReply {
                metrics: get_metrics(&mut c)?,
            },
            SM_ERROR => {
                let code = c.str()?;
                let message = c.str()?;
                let stats = match c.u8()? {
                    0 => None,
                    1 => Some(get_execution_stats(&mut c)?),
                    b => return Err(DecodeError(format!("invalid option byte {b:#04x}"))),
                };
                ServerMsg::Error {
                    code,
                    message,
                    stats,
                }
            }
            t => return Err(DecodeError(format!("unknown server message type {t:#04x}"))),
        };
        c.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_common::SegmentId;

    /// Satellite requirement: a round-trip that exercises *every* field
    /// of the stats structures, so a forgotten field in the codec fails
    /// here rather than silently reading as zero on clients.
    #[test]
    fn execution_stats_round_trips_every_field() {
        let mut seg0 = SegmentStats {
            elapsed: Duration::new(3, 141_592_653),
            rows_moved: 17,
            selector_runs: 19,
            rows_vectorized: 23,
            rows_row_fallback: 29,
            blocks_produced: 31,
            ..SegmentStats::default()
        };
        seg0.record_part_scan(TableOid(7), PartOid(70), 11);
        seg0.record_part_scan(TableOid(7), PartOid(71), 13);
        seg0.record_table_scan(TableOid(9), 5);
        let mut seg1 = SegmentStats {
            elapsed: Duration::from_micros(42),
            ..SegmentStats::default()
        };
        seg1.record_part_scan(TableOid(8), PartOid(80), 37);

        let mut stats = ExecutionStats {
            motions: 41,
            ..ExecutionStats::default()
        };
        stats.merge_segments(vec![seg0, seg1]);
        stats.rows_returned = 43;
        stats.per_motion_rows.insert(MotionId(1), 47);
        stats.per_motion_rows.insert(MotionId(9), 53);

        // Nothing above left at its default, except fields merge fills.
        assert_ne!(stats, ExecutionStats::default());
        assert_eq!(stats.segment(SegmentId(0)).unwrap().part_opens, 2);

        let mut buf = Vec::new();
        put_execution_stats(&mut buf, &stats);
        let mut c = Cursor::new(&buf);
        let back = get_execution_stats(&mut c).unwrap();
        c.finish().unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn cache_info_and_metrics_round_trip() {
        let info = CacheInfo {
            hit: true,
            hits: 1,
            misses: 2,
            evictions: 3,
            invalidations: 4,
        };
        let mut buf = Vec::new();
        put_cache_info(&mut buf, &info);
        let mut c = Cursor::new(&buf);
        assert_eq!(get_cache_info(&mut c).unwrap(), info);
        c.finish().unwrap();

        let m = MetricsSnapshot {
            active_connections: 1,
            total_connections: 2,
            shed_connections: 3,
            inflight_queries: 4,
            queued_queries: 5,
            shed_queries: 6,
            queries_started: 7,
            queries_ok: 8,
            queries_err: 9,
            queries_cancelled: 10,
            rows_streamed: 11,
            blocks_streamed: 12,
            bytes_streamed: 13,
            chunks_emitted: 14,
            cache_hits: 15,
            cache_misses: 16,
            latency_count: 17,
            latency_buckets: (0..64).collect(),
        };
        let msg = ServerMsg::StatsReply { metrics: m };
        assert_eq!(ServerMsg::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn frame_io_round_trips_and_rejects_hostile_lengths() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, MAX_FRAME).unwrap().is_none());

        // A length header claiming 4 GiB must be rejected without
        // allocating or waiting for 4 GiB of payload.
        let hostile = u32::MAX.to_le_bytes();
        let err = read_frame(&mut &hostile[..], MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // EOF mid-frame is an error, not a clean end.
        let truncated = [5u8, 0, 0, 0, b'x'];
        assert!(read_frame(&mut &truncated[..], MAX_FRAME).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = ClientMsg::Cancel.encode();
        buf.push(0xee);
        assert!(ClientMsg::decode(&buf).is_err());
    }
}
