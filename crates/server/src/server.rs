//! The server: thread-per-connection over `std::net`, streaming results.
//!
//! ## Connection anatomy
//!
//! Each accepted socket gets two threads: a *reader* that parses every
//! incoming frame — so a `Cancel` is seen even while a query is
//! streaming — and a *worker* that owns the write half and executes
//! commands in order. A query runs on a third, per-query scoped thread:
//! the executor pushes result chunks through a **bounded**
//! `sync_channel` of pre-encoded `DataBlock` frames, and the worker
//! drains that channel onto the socket. A slow client therefore stalls
//! the executor (channel full → `send` blocks) instead of growing
//! server memory: at most `stream_channel_blocks + 1` chunks exist
//! between the executor and the socket.
//!
//! ## Robustness
//!
//! * **Admission control** — at most `max_connections` sockets and
//!   `max_inflight_queries` concurrently executing queries; excess
//!   queries wait up to `admission_wait`, then are shed with
//!   `Error{code: "overloaded"}`. The connection stays usable.
//! * **Cancellation** — a `Cancel` frame, a dropped connection, a
//!   per-query timeout, or a row/byte limit all trip the query's
//!   [`CancelToken`]; the executor notices at its next block boundary
//!   and unwinds with partial statistics, which travel back in the
//!   `Error` frame.
//! * **Graceful shutdown** — [`Server::stop`] stops accepting, lets
//!   in-flight queries drain up to `shutdown_drain`, then cancels
//!   stragglers and closes every socket before joining all threads.

use crate::metrics::{MetricsSnapshot, ServerMetrics};
use crate::protocol::{
    read_frame, write_frame, ClientMsg, ServerMsg, CODE_OVERLOADED, MAX_FRAME, PROTOCOL_VERSION,
};
use mpp_common::{Datum, Error};
use mpp_session::{PreparedStatement, Session, SessionCtx};
use mppart::{is_ddl, CancelToken, ResultChunk, StreamOutcome};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, sync_channel};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs; `Default` is sized for tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Sockets accepted concurrently; excess connections are shed at
    /// handshake with `Error{code: "overloaded"}`.
    pub max_connections: usize,
    /// Queries executing concurrently across all connections.
    pub max_inflight_queries: usize,
    /// How long a query waits for an execution slot before being shed.
    pub admission_wait: Duration,
    /// Bounded per-query channel capacity, in result chunks — the
    /// server-side memory bound for one streaming result.
    pub stream_channel_blocks: usize,
    /// Cap on result rows per query (`Error{code: "limit_rows"}`).
    pub max_rows_per_query: Option<u64>,
    /// Cap on encoded result bytes per query (`"limit_bytes"`).
    pub max_bytes_per_query: Option<u64>,
    /// Wall-clock deadline per query (`Error{code: "timeout"}`).
    pub query_timeout: Option<Duration>,
    /// How long a new connection may dawdle before its `Hello`.
    pub handshake_timeout: Duration,
    /// How long [`Server::stop`] waits for in-flight queries.
    pub shutdown_drain: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 64,
            max_inflight_queries: 16,
            admission_wait: Duration::from_secs(2),
            stream_channel_blocks: 8,
            max_rows_per_query: None,
            max_bytes_per_query: None,
            query_timeout: None,
            handshake_timeout: Duration::from_secs(5),
            shutdown_drain: Duration::from_secs(5),
        }
    }
}

/// Counting semaphore over `std::sync` (the vendored `parking_lot`
/// stub has no `Condvar`), with a bounded wait: admission control for
/// in-flight queries.
struct Admission {
    cap: usize,
    held: Mutex<usize>,
    freed: Condvar,
}

impl Admission {
    fn new(cap: usize) -> Admission {
        Admission {
            cap: cap.max(1),
            held: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Take a slot, waiting up to `wait`; `false` means shed.
    fn try_acquire(&self, wait: Duration) -> bool {
        let deadline = Instant::now() + wait;
        let mut held = self.held.lock().expect("admission lock poisoned");
        while *held >= self.cap {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _) = self
                .freed
                .wait_timeout(held, deadline - now)
                .expect("admission lock poisoned");
            held = g;
        }
        *held += 1;
        true
    }

    fn release(&self) {
        *self.held.lock().expect("admission lock poisoned") -= 1;
        self.freed.notify_one();
    }
}

/// Per-connection state reachable from other threads: the socket (for
/// forced close at shutdown) and the in-flight query's cancel token
/// (for `Cancel` frames and disconnect cleanup).
struct ConnShared {
    stream: TcpStream,
    active: Mutex<Option<CancelToken>>,
}

impl ConnShared {
    fn cancel_active(&self) {
        if let Some(tok) = self.active.lock().expect("conn lock poisoned").as_ref() {
            tok.cancel();
        }
    }
}

struct Shared {
    ctx: Arc<SessionCtx>,
    cfg: ServerConfig,
    metrics: ServerMetrics,
    admission: Admission,
    /// Accept loop stops and new queries are refused once set.
    shutdown: AtomicBool,
    /// Signalled by a wire `Shutdown` frame (or [`Server::request_stop`]);
    /// [`Server::wait_stop_requested`] blocks on it.
    stop_flag: Mutex<bool>,
    stop_cv: Condvar,
    conns: Mutex<HashMap<u64, Arc<ConnShared>>>,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
}

impl Shared {
    fn request_stop(&self) {
        *self.stop_flag.lock().expect("stop lock poisoned") = true;
        self.stop_cv.notify_all();
    }
}

/// A running server. Bind with [`Server::start`], stop with
/// [`Server::stop`] (graceful).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start accepting connections over the shared database `ctx`.
    pub fn start(ctx: Arc<SessionCtx>, addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            admission: Admission::new(cfg.max_inflight_queries),
            ctx,
            cfg,
            metrics: ServerMetrics::new(),
            shutdown: AtomicBool::new(false),
            stop_flag: Mutex::new(false),
            stop_cv: Condvar::new(),
            conns: Mutex::new(HashMap::new()),
            conn_handles: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("mppd-accept".into())
            .spawn(move || accept_loop(accept_shared, listener))?;
        Ok(Server {
            shared,
            addr: local,
            accept: Mutex::new(Some(accept)),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Flag that a shutdown has been requested (wire `Shutdown` frames
    /// do the same); wakes [`Server::wait_stop_requested`]. Does not
    /// itself stop anything — call [`Server::stop`] for that.
    pub fn request_stop(&self) {
        self.shared.request_stop();
    }

    /// Block until someone requests a stop.
    pub fn wait_stop_requested(&self) {
        let mut g = self.shared.stop_flag.lock().expect("stop lock poisoned");
        while !*g {
            g = self.shared.stop_cv.wait(g).expect("stop lock poisoned");
        }
    }

    /// Graceful shutdown: stop accepting, refuse new queries, give
    /// in-flight queries `shutdown_drain` to finish, then cancel
    /// stragglers, close every socket, and join all threads. Idempotent.
    pub fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.request_stop();
        // Wake the accept loop with a throwaway connection.
        drop(TcpStream::connect(self.addr));
        if let Some(h) = self.accept.lock().expect("accept lock poisoned").take() {
            let _ = h.join();
        }
        let deadline = Instant::now() + self.shared.cfg.shutdown_drain;
        while Instant::now() < deadline
            && self.shared.metrics.inflight_queries.load(Ordering::Relaxed) > 0
        {
            thread::sleep(Duration::from_millis(5));
        }
        let conns: Vec<_> = {
            let g = self.shared.conns.lock().expect("conns lock poisoned");
            g.values().cloned().collect()
        };
        for conn in conns {
            conn.cancel_active();
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        let handles: Vec<_> = {
            let mut g = self
                .shared
                .conn_handles
                .lock()
                .expect("handles lock poisoned");
            g.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name("mppd-conn".into())
            .spawn(move || conn_main(conn_shared, stream));
        if let Ok(h) = handle {
            shared
                .conn_handles
                .lock()
                .expect("handles lock poisoned")
                .push(h);
        }
    }
}

fn conn_main(shared: Arc<Shared>, stream: TcpStream) {
    ServerMetrics::inc(&shared.metrics.total_connections);
    let now_active = shared
        .metrics
        .active_connections
        .fetch_add(1, Ordering::Relaxed)
        + 1;
    let _ = stream.set_nodelay(true);
    if now_active > shared.cfg.max_connections as u64 {
        ServerMetrics::inc(&shared.metrics.shed_connections);
        shed_connection(&shared, stream);
    } else {
        // If a connection path panics, close the socket anyway — a
        // half-dead connection would leave its client blocked forever.
        let guard = stream.try_clone().ok();
        let served = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = serve_connection(&shared, stream);
        }));
        if served.is_err() {
            if let Some(s) = guard {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
    ServerMetrics::dec(&shared.metrics.active_connections);
}

/// Over the connection cap: consume the `Hello` (so the client is
/// already waiting on a reply), answer `overloaded`, close.
fn shed_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.handshake_timeout));
    let _ = read_frame(&mut stream, MAX_FRAME);
    let _ = send(
        &shared.metrics,
        &mut stream,
        &ServerMsg::Error {
            code: CODE_OVERLOADED.into(),
            message: "connection limit reached".into(),
            stats: None,
        },
    );
}

fn proto_error(message: impl Into<String>) -> ServerMsg {
    ServerMsg::Error {
        code: "protocol".into(),
        message: message.into(),
        stats: None,
    }
}

fn send(m: &ServerMetrics, stream: &mut TcpStream, msg: &ServerMsg) -> io::Result<()> {
    let payload = msg.encode();
    write_frame(stream, &payload)?;
    ServerMetrics::add(&m.bytes_streamed, payload.len() as u64);
    Ok(())
}

fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream) -> io::Result<()> {
    // Handshake, under a deadline so a silent client can't pin the slot.
    stream.set_read_timeout(Some(shared.cfg.handshake_timeout))?;
    let hello = match read_frame(&mut stream, MAX_FRAME) {
        Ok(Some(payload)) => payload,
        Ok(None) => return Ok(()),
        Err(e) => {
            // Oversized length header, mid-frame EOF, or a timeout: the
            // best-effort reply tells a confused-but-listening client
            // why it is being dropped.
            let _ = send(&shared.metrics, &mut stream, &proto_error(e.to_string()));
            return Ok(());
        }
    };
    match ClientMsg::decode(&hello) {
        Ok(ClientMsg::Hello { version, .. }) if version == PROTOCOL_VERSION => {
            send(
                &shared.metrics,
                &mut stream,
                &ServerMsg::HelloOk {
                    version: PROTOCOL_VERSION,
                },
            )?;
        }
        Ok(ClientMsg::Hello { version, .. }) => {
            let _ = send(
                &shared.metrics,
                &mut stream,
                &proto_error(format!(
                    "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
                )),
            );
            return Ok(());
        }
        Ok(_) | Err(_) => {
            let _ = send(
                &shared.metrics,
                &mut stream,
                &proto_error("handshake must begin with a well-formed Hello frame"),
            );
            return Ok(());
        }
    }
    stream.set_read_timeout(None)?;

    let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let conn = Arc::new(ConnShared {
        stream: stream.try_clone()?,
        active: Mutex::new(None),
    });
    shared
        .conns
        .lock()
        .expect("conns lock poisoned")
        .insert(id, Arc::clone(&conn));
    let out = serve_session(shared, &conn, stream);
    shared
        .conns
        .lock()
        .expect("conns lock poisoned")
        .remove(&id);
    out
}

/// What the reader thread forwards to the worker. `Cancel` frames are
/// handled in the reader itself (that is the point of the split) and
/// never appear here.
enum Event {
    Msg(ClientMsg),
    /// A frame that would not decode; the worker answers and closes.
    Bad(String),
    /// EOF or socket error: the client is gone.
    Gone,
}

fn reader_loop(mut stream: TcpStream, conn: Arc<ConnShared>, tx: mpsc::Sender<Event>) {
    loop {
        match read_frame(&mut stream, MAX_FRAME) {
            Ok(Some(payload)) => match ClientMsg::decode(&payload) {
                Ok(ClientMsg::Cancel) => conn.cancel_active(),
                Ok(msg) => {
                    if tx.send(Event::Msg(msg)).is_err() {
                        return;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Event::Bad(e.to_string()));
                    return;
                }
            },
            Ok(None) | Err(_) => {
                // A dropped connection cancels its in-flight query.
                conn.cancel_active();
                let _ = tx.send(Event::Gone);
                return;
            }
        }
    }
}

fn serve_session(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    mut stream: TcpStream,
) -> io::Result<()> {
    let (tx, rx) = mpsc::channel();
    let reader_stream = stream.try_clone()?;
    let reader_conn = Arc::clone(conn);
    let reader = thread::Builder::new()
        .name("mppd-read".into())
        .spawn(move || reader_loop(reader_stream, reader_conn, tx))?;

    let session = shared.ctx.session();
    let mut named: HashMap<String, PreparedStatement> = HashMap::new();

    while let Ok(event) = rx.recv() {
        let ok = match event {
            Event::Gone => break,
            Event::Bad(msg) => {
                let _ = send(&shared.metrics, &mut stream, &proto_error(msg));
                break;
            }
            Event::Msg(ClientMsg::Goodbye) => break,
            Event::Msg(ClientMsg::Hello { .. }) => {
                let _ = send(
                    &shared.metrics,
                    &mut stream,
                    &proto_error("duplicate Hello"),
                );
                break;
            }
            Event::Msg(ClientMsg::Shutdown) => {
                shared.request_stop();
                send(&shared.metrics, &mut stream, &ServerMsg::CloseOk)
            }
            Event::Msg(ClientMsg::Stats) => send(
                &shared.metrics,
                &mut stream,
                &ServerMsg::StatsReply {
                    metrics: shared.metrics.snapshot(),
                },
            ),
            Event::Msg(ClientMsg::Prepare { name, sql }) => match session.prepare(&sql) {
                Ok(ps) => {
                    let param_count = ps.param_count();
                    named.insert(name.clone(), ps);
                    send(
                        &shared.metrics,
                        &mut stream,
                        &ServerMsg::PrepareOk { name, param_count },
                    )
                }
                Err(e) => send(&shared.metrics, &mut stream, &engine_error(&e)),
            },
            Event::Msg(ClientMsg::ClosePrepared { name }) => {
                named.remove(&name);
                send(&shared.metrics, &mut stream, &ServerMsg::CloseOk)
            }
            Event::Msg(ClientMsg::Query { sql, params }) => run_query(
                shared,
                conn,
                &session,
                &mut stream,
                QueryKind::AdHoc(&sql),
                &params,
            ),
            Event::Msg(ClientMsg::Execute { name, params }) => match named.get(&name) {
                Some(ps) => run_query(
                    shared,
                    conn,
                    &session,
                    &mut stream,
                    QueryKind::Prepared(ps),
                    &params,
                ),
                None => send(
                    &shared.metrics,
                    &mut stream,
                    &ServerMsg::Error {
                        code: "unknown_prepared".into(),
                        message: format!("no prepared statement named {name:?}"),
                        stats: None,
                    },
                ),
            },
            // The reader intercepts Cancel; seeing one here means the
            // query it aimed at already finished. Ignore.
            Event::Msg(ClientMsg::Cancel) => Ok(()),
        };
        if ok.is_err() {
            break;
        }
    }

    let _ = stream.shutdown(Shutdown::Both);
    let _ = reader.join();
    Ok(())
}

fn engine_error(e: &Error) -> ServerMsg {
    ServerMsg::Error {
        code: e.kind().to_string(),
        message: e.to_string(),
        stats: None,
    }
}

enum QueryKind<'a> {
    AdHoc(&'a str),
    Prepared(&'a PreparedStatement),
}

/// Admission gate around [`stream_query`]. An `Err` means the socket is
/// broken and the connection should close; protocol-level failures are
/// `Ok` after an `Error` frame.
fn run_query(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    session: &Session,
    stream: &mut TcpStream,
    kind: QueryKind<'_>,
    params: &[Datum],
) -> io::Result<()> {
    let m = &shared.metrics;
    if shared.shutdown.load(Ordering::SeqCst) {
        return send(
            m,
            stream,
            &ServerMsg::Error {
                code: "shutting_down".into(),
                message: "server is shutting down".into(),
                stats: None,
            },
        );
    }
    ServerMetrics::inc(&m.queued_queries);
    let admitted = shared.admission.try_acquire(shared.cfg.admission_wait);
    ServerMetrics::dec(&m.queued_queries);
    if !admitted {
        ServerMetrics::inc(&m.shed_queries);
        return send(
            m,
            stream,
            &ServerMsg::Error {
                code: CODE_OVERLOADED.into(),
                message: format!(
                    "server is at its in-flight query limit ({})",
                    shared.cfg.max_inflight_queries
                ),
                stats: None,
            },
        );
    }
    ServerMetrics::inc(&m.queries_started);
    ServerMetrics::inc(&m.inflight_queries);
    let out = stream_query(shared, conn, session, stream, kind, params);
    ServerMetrics::dec(&m.inflight_queries);
    shared.admission.release();
    out
}

/// Re-chunking bounds for outgoing `DataBlock` frames: a frame carries
/// at most this many rows and stops growing once its estimated payload
/// passes the byte target — two orders of magnitude under `MAX_FRAME`,
/// whatever shape the executor's chunks have.
const DATA_BLOCK_MAX_ROWS: usize = 8192;
const DATA_BLOCK_TARGET_BYTES: usize = 1 << 20;

const LIMIT_NONE: u8 = 0;
const LIMIT_ROWS: u8 = 1;
const LIMIT_BYTES: u8 = 2;

fn stream_query(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    session: &Session,
    stream: &mut TcpStream,
    kind: QueryKind<'_>,
    params: &[Datum],
) -> io::Result<()> {
    let m = &shared.metrics;
    let started = Instant::now();

    // Resolve the plan first, so the RowDescription precedes the first
    // DataBlock. Failures before execution carry no statistics.
    enum Run<'a> {
        /// Session streaming path (DDL: no row description).
        Ddl(&'a str),
        /// Cache-resolved plan plus whether the lookup hit.
        Plan(Arc<mppart::PreparedQuery>, bool),
        Prepared(&'a PreparedStatement),
    }
    let run = match kind {
        QueryKind::AdHoc(sql) => match mpp_sql::parse(sql) {
            Err(e) => {
                ServerMetrics::inc(&m.queries_err);
                return send(m, stream, &engine_error(&e));
            }
            Ok(stmt) if is_ddl(&stmt) => Run::Ddl(sql),
            Ok(_) => match session.cached_prepare(sql) {
                Err(e) => {
                    ServerMetrics::inc(&m.queries_err);
                    return send(m, stream, &engine_error(&e));
                }
                Ok((q, hit)) => {
                    let columns = if q.is_explain() {
                        vec!["QUERY PLAN".to_string()]
                    } else {
                        q.plan()
                            .output_cols()
                            .iter()
                            .map(|c| c.name.to_string())
                            .collect()
                    };
                    send(m, stream, &ServerMsg::RowDescription { columns })?;
                    Run::Plan(q, hit)
                }
            },
        },
        QueryKind::Prepared(ps) => {
            send(
                m,
                stream,
                &ServerMsg::RowDescription {
                    columns: ps.columns(),
                },
            )?;
            Run::Prepared(ps)
        }
    };

    let cancel = match shared.cfg.query_timeout {
        Some(t) => CancelToken::with_timeout(t),
        None => CancelToken::new(),
    };
    *conn.active.lock().expect("conn lock poisoned") = Some(cancel.clone());

    let limit_hit = AtomicU8::new(LIMIT_NONE);
    let (tx, rx) = sync_channel::<(Vec<u8>, u64)>(shared.cfg.stream_channel_blocks.max(1));

    let (outcome, io_failure) = thread::scope(|scope| {
        let exec_cancel = cancel.clone();
        let exec_limit = &limit_hit;
        let exec = scope.spawn(move || {
            let mut rows_out = 0u64;
            let mut bytes_out = 0u64;
            let mut sink = |chunk: ResultChunk| -> mpp_common::Result<()> {
                let mut rows = Vec::new();
                chunk.append_to(&mut rows);
                // Executor chunks can be arbitrarily large (a join's
                // whole per-segment output may arrive as one block);
                // re-chunk into frames bounded by rows *and* bytes so
                // no DataBlock ever approaches MAX_FRAME.
                let mut remaining = rows;
                while !remaining.is_empty() {
                    let mut take = 0usize;
                    let mut est = 0usize;
                    while take < remaining.len()
                        && take < DATA_BLOCK_MAX_ROWS
                        && est < DATA_BLOCK_TARGET_BYTES
                    {
                        est += crate::protocol::row_wire_size(&remaining[take]);
                        take += 1;
                    }
                    let rest = remaining.split_off(take);
                    let batch = std::mem::replace(&mut remaining, rest);
                    rows_out += batch.len() as u64;
                    if let Some(cap) = shared.cfg.max_rows_per_query {
                        if rows_out > cap {
                            exec_limit.store(LIMIT_ROWS, Ordering::Relaxed);
                            exec_cancel.cancel();
                            return Err(Error::Cancelled(format!(
                                "result exceeded the per-query row limit ({cap})"
                            )));
                        }
                    }
                    let nrows = batch.len() as u64;
                    let frame = ServerMsg::DataBlock { rows: batch }.encode();
                    bytes_out += frame.len() as u64;
                    if let Some(cap) = shared.cfg.max_bytes_per_query {
                        if bytes_out > cap {
                            exec_limit.store(LIMIT_BYTES, Ordering::Relaxed);
                            exec_cancel.cancel();
                            return Err(Error::Cancelled(format!(
                                "result exceeded the per-query byte limit ({cap})"
                            )));
                        }
                    }
                    ServerMetrics::inc(&shared.metrics.chunks_emitted);
                    // Bounded: blocks when the worker (and thus the
                    // client) is behind. A send error means the drain
                    // loop is gone, which only happens if this scope is
                    // unwinding.
                    if tx.send((frame, nrows)).is_err() {
                        return Err(Error::Cancelled("client connection lost".into()));
                    }
                }
                Ok(())
            };
            match run {
                Run::Ddl(sql) => {
                    session.sql_stream_with_params(sql, params, &exec_cancel, &mut sink)
                }
                Run::Plan(q, hit) => {
                    let mut out =
                        shared
                            .ctx
                            .db()
                            .stream_prepared(&q, params, &exec_cancel, &mut sink);
                    out.cache = Some(shared.ctx.cache().info(hit));
                    out
                }
                Run::Prepared(ps) => ps.execute_stream(params, &exec_cancel, &mut sink),
            }
        });

        // Drain pre-encoded frames onto the socket. On a write failure,
        // cancel the query but keep draining (and discarding) so the
        // executor never blocks on a channel nobody reads.
        let mut io_failure: Option<io::Error> = None;
        for (frame, nrows) in rx.iter() {
            if io_failure.is_some() {
                continue;
            }
            match write_frame(stream, &frame) {
                Ok(()) => {
                    ServerMetrics::inc(&m.blocks_streamed);
                    ServerMetrics::add(&m.rows_streamed, nrows);
                    ServerMetrics::add(&m.bytes_streamed, frame.len() as u64);
                }
                Err(e) => {
                    cancel.cancel();
                    io_failure = Some(e);
                }
            }
        }
        // A panic on the query thread must not take the connection (and
        // its hung client) down with it: degrade to an Error frame.
        let outcome: StreamOutcome = exec.join().unwrap_or_else(|_| {
            StreamOutcome::failed(Error::Internal("query execution panicked".into()))
        });
        (outcome, io_failure)
    });

    *conn.active.lock().expect("conn lock poisoned") = None;

    if let Some(info) = &outcome.cache {
        ServerMetrics::inc(if info.hit {
            &m.cache_hits
        } else {
            &m.cache_misses
        });
    }

    if let Some(e) = io_failure {
        ServerMetrics::inc(&m.queries_err);
        return Err(e);
    }

    match outcome.result {
        Ok(()) => {
            ServerMetrics::inc(&m.queries_ok);
            m.record_latency(started.elapsed());
            send(
                m,
                stream,
                &ServerMsg::CommandComplete {
                    stats: outcome.stats,
                    cache: outcome.cache,
                },
            )
        }
        Err(e) => {
            let code = match limit_hit.load(Ordering::Relaxed) {
                LIMIT_ROWS => "limit_rows".to_string(),
                LIMIT_BYTES => "limit_bytes".to_string(),
                _ if cancel.timed_out() => "timeout".to_string(),
                _ => e.kind().to_string(),
            };
            ServerMetrics::inc(if code == "cancelled" {
                &m.queries_cancelled
            } else {
                &m.queries_err
            });
            m.record_latency(started.elapsed());
            send(
                m,
                stream,
                &ServerMsg::Error {
                    code,
                    message: e.to_string(),
                    stats: Some(outcome.stats),
                },
            )
        }
    }
}
