//! Blocking client for the wire protocol, used by tests, benches, and
//! the `mpp_cli` example.
//!
//! One [`Client`] is one connection; [`Client::query`] and
//! [`Client::execute`] collect a full streamed reply. The lower-level
//! [`Client::send`] / [`Client::recv`] pair is for tests that need to
//! observe individual frames (e.g. reading one `DataBlock` and then
//! cancelling). A [`Canceller`] is a cloned socket handle that can
//! inject a `Cancel` frame while `recv` is blocked on the same
//! connection from another thread.

use crate::metrics::MetricsSnapshot;
use crate::protocol::{read_frame, write_frame, ClientMsg, ServerMsg, MAX_FRAME, PROTOCOL_VERSION};
use mpp_common::{Datum, Row};
use mppart::executor::ExecutionStats;
use mppart::CacheInfo;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: transport, protocol, or a server `Error` frame.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    /// The byte stream violated the protocol (bad frame, bad sequence).
    Proto(String),
    /// The server answered with an `Error` frame. `code` is stable and
    /// machine-readable — an engine error kind (`"planning"`, …) or a
    /// server code (`"overloaded"`, `"cancelled"`, `"timeout"`, …);
    /// `stats` carries partial execution statistics when execution had
    /// started.
    Server {
        code: String,
        message: String,
        /// Boxed so the error stays small next to the `Ok` payloads.
        stats: Option<Box<ExecutionStats>>,
    },
}

impl ClientError {
    /// The server error code, if this is a server-reported failure.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }

    /// Partial execution statistics from a server-reported failure.
    pub fn stats(&self) -> Option<&ExecutionStats> {
        match self {
            ClientError::Server {
                stats: Some(stats), ..
            } => Some(stats.as_ref()),
            _ => None,
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Proto(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message, .. } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A fully collected statement result.
#[derive(Debug, Default)]
pub struct Reply {
    /// Output column names (empty for DDL, which sends no description).
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
    pub stats: ExecutionStats,
    pub cache: Option<CacheInfo>,
    /// How many `DataBlock` frames the result arrived in.
    pub data_blocks: usize,
}

/// One protocol connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect and handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client { stream };
        client.send(&ClientMsg::Hello {
            version: PROTOCOL_VERSION,
            options: Vec::new(),
        })?;
        match client.recv()? {
            ServerMsg::HelloOk { .. } => Ok(client),
            ServerMsg::Error {
                code,
                message,
                stats,
            } => Err(ClientError::Server {
                code,
                message,
                stats: stats.map(Box::new),
            }),
            other => Err(ClientError::Proto(format!(
                "unexpected handshake reply {other:?}"
            ))),
        }
    }

    /// Write one frame. Low-level; prefer [`Client::query`].
    pub fn send(&mut self, msg: &ClientMsg) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &msg.encode()).map_err(ClientError::Io)
    }

    /// Read one frame. Low-level; prefer [`Client::query`].
    pub fn recv(&mut self) -> Result<ServerMsg, ClientError> {
        match read_frame(&mut self.stream, MAX_FRAME) {
            Ok(Some(payload)) => {
                ServerMsg::decode(&payload).map_err(|e| ClientError::Proto(e.to_string()))
            }
            Ok(None) => Err(ClientError::Proto("server closed the connection".into())),
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    /// Run one SQL statement and collect the streamed result.
    pub fn query(&mut self, sql: &str, params: &[Datum]) -> Result<Reply, ClientError> {
        self.send(&ClientMsg::Query {
            sql: sql.to_string(),
            params: params.to_vec(),
        })?;
        self.collect_reply()
    }

    /// Plan `sql` under `name`; returns the statement's parameter count.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<u32, ClientError> {
        self.send(&ClientMsg::Prepare {
            name: name.to_string(),
            sql: sql.to_string(),
        })?;
        match self.recv()? {
            ServerMsg::PrepareOk { param_count, .. } => Ok(param_count),
            ServerMsg::Error {
                code,
                message,
                stats,
            } => Err(ClientError::Server {
                code,
                message,
                stats: stats.map(Box::new),
            }),
            other => Err(ClientError::Proto(format!(
                "unexpected Prepare reply {other:?}"
            ))),
        }
    }

    /// Execute a statement prepared under `name`.
    pub fn execute(&mut self, name: &str, params: &[Datum]) -> Result<Reply, ClientError> {
        self.send(&ClientMsg::Execute {
            name: name.to_string(),
            params: params.to_vec(),
        })?;
        self.collect_reply()
    }

    /// Forget a prepared statement (idempotent).
    pub fn close_prepared(&mut self, name: &str) -> Result<(), ClientError> {
        self.send(&ClientMsg::ClosePrepared {
            name: name.to_string(),
        })?;
        match self.recv()? {
            ServerMsg::CloseOk => Ok(()),
            other => Err(ClientError::Proto(format!(
                "unexpected ClosePrepared reply {other:?}"
            ))),
        }
    }

    /// Fetch the server's metrics snapshot.
    pub fn server_stats(&mut self) -> Result<MetricsSnapshot, ClientError> {
        self.send(&ClientMsg::Stats)?;
        match self.recv()? {
            ServerMsg::StatsReply { metrics } => Ok(metrics),
            other => Err(ClientError::Proto(format!(
                "unexpected Stats reply {other:?}"
            ))),
        }
    }

    /// Ask for the in-flight query on *this* connection to stop. Usually
    /// sent from a [`Canceller`] while the main thread is mid-`recv`;
    /// exposed here too for single-threaded drive-by-frames tests.
    pub fn cancel(&mut self) -> Result<(), ClientError> {
        self.send(&ClientMsg::Cancel)
    }

    /// A second handle to this connection's socket that can inject a
    /// `Cancel` frame from another thread.
    pub fn canceller(&self) -> io::Result<Canceller> {
        Ok(Canceller {
            stream: self.stream.try_clone()?,
        })
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.send(&ClientMsg::Shutdown)?;
        match self.recv()? {
            ServerMsg::CloseOk => Ok(()),
            other => Err(ClientError::Proto(format!(
                "unexpected Shutdown reply {other:?}"
            ))),
        }
    }

    /// Orderly close.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        self.send(&ClientMsg::Goodbye)
    }

    fn collect_reply(&mut self) -> Result<Reply, ClientError> {
        let mut reply = Reply::default();
        loop {
            match self.recv()? {
                ServerMsg::RowDescription { columns } => reply.columns = columns,
                ServerMsg::DataBlock { rows } => {
                    reply.data_blocks += 1;
                    reply.rows.extend(rows);
                }
                ServerMsg::CommandComplete { stats, cache } => {
                    reply.stats = stats;
                    reply.cache = cache;
                    return Ok(reply);
                }
                ServerMsg::Error {
                    code,
                    message,
                    stats,
                } => {
                    return Err(ClientError::Server {
                        code,
                        message,
                        stats: stats.map(Box::new),
                    })
                }
                other => {
                    return Err(ClientError::Proto(format!(
                        "unexpected frame {other:?} in query reply"
                    )))
                }
            }
        }
    }
}

/// Cloned socket handle for out-of-band cancellation.
pub struct Canceller {
    stream: TcpStream,
}

impl Canceller {
    pub fn cancel(&mut self) -> io::Result<()> {
        write_frame(&mut self.stream, &ClientMsg::Cancel.encode())
    }
}
