//! # mpp-server
//!
//! The engine as a network service: a length-prefixed binary protocol
//! (see [`protocol`]) spoken over `std::net` sockets by a
//! thread-per-connection [`server::Server`], plus the blocking
//! [`client::Client`] the tests, benches, and the `mpp_cli` example
//! drive it with.
//!
//! Results **stream**: the executor's chunks flow through a bounded
//! channel straight onto the socket as `DataBlock` frames, so a large
//! result never materializes server-side and a slow reader
//! back-pressures the executor instead of growing memory. Admission
//! control sheds excess load with `Error{code: "overloaded"}`,
//! cooperative cancellation stops queries at block boundaries, and
//! [`metrics::MetricsSnapshot`] exposes the whole picture over the
//! `Stats` message. The full frame table and design rationale live in
//! `DESIGN.md` ("Network service layer").
//!
//! There is deliberately no async runtime here: the workspace builds
//! offline against vendored API stubs (see `vendor/README.md`), so the
//! server uses `std::net` + threads — which also keeps the streaming
//! path identical to the in-process one (`Session::sql` collects from
//! the same executor sink the socket drains).

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use client::{Canceller, Client, ClientError, Reply};
pub use metrics::{MetricsSnapshot, ServerMetrics};
pub use protocol::{
    read_frame, write_frame, ClientMsg, DecodeError, ServerMsg, CODE_OVERLOADED, MAX_FRAME,
    PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig};
