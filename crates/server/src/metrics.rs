//! Server observability: lock-free counters and a latency histogram.
//!
//! Every counter is a relaxed `AtomicU64` — the hot path (one query)
//! touches a handful of them, never a lock. Latency lands in log2
//! buckets of microseconds, so quantiles come from a 64-slot histogram
//! walk with bounded (one-bucket) overestimation rather than from
//! recording every sample.
//!
//! [`MetricsSnapshot`] is the plain-data view that crosses the wire in
//! a `StatsReply` frame; its field set is part of the protocol (see
//! `protocol.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// Live counters owned by the server. All increments are relaxed: the
/// numbers are monitoring data, not synchronization.
pub struct ServerMetrics {
    pub active_connections: AtomicU64,
    pub total_connections: AtomicU64,
    pub shed_connections: AtomicU64,
    pub inflight_queries: AtomicU64,
    pub queued_queries: AtomicU64,
    pub shed_queries: AtomicU64,
    pub queries_started: AtomicU64,
    pub queries_ok: AtomicU64,
    pub queries_err: AtomicU64,
    pub queries_cancelled: AtomicU64,
    /// Result rows that reached a client socket.
    pub rows_streamed: AtomicU64,
    /// `DataBlock` frames written to client sockets.
    pub blocks_streamed: AtomicU64,
    /// Frame payload bytes written to client sockets (all frame types).
    pub bytes_streamed: AtomicU64,
    /// Result chunks the executor pushed into per-query channels. With
    /// a slow reader this runs ahead of `blocks_streamed` by at most
    /// the channel capacity + 1 — the observable form of the streaming
    /// memory bound.
    pub chunks_emitted: AtomicU64,
    /// Plan-cache hits/misses observed by wire queries.
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    latency_count: AtomicU64,
    latency: [AtomicU64; BUCKETS],
}

impl Default for ServerMetrics {
    fn default() -> ServerMetrics {
        ServerMetrics {
            active_connections: AtomicU64::new(0),
            total_connections: AtomicU64::new(0),
            shed_connections: AtomicU64::new(0),
            inflight_queries: AtomicU64::new(0),
            queued_queries: AtomicU64::new(0),
            shed_queries: AtomicU64::new(0),
            queries_started: AtomicU64::new(0),
            queries_ok: AtomicU64::new(0),
            queries_err: AtomicU64::new(0),
            queries_cancelled: AtomicU64::new(0),
            rows_streamed: AtomicU64::new(0),
            blocks_streamed: AtomicU64::new(0),
            bytes_streamed: AtomicU64::new(0),
            chunks_emitted: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            latency_count: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ServerMetrics {
    pub fn new() -> ServerMetrics {
        ServerMetrics::default()
    }

    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn dec(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }

    /// Record one query's wall-clock latency.
    pub fn record_latency(&self, elapsed: Duration) {
        let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
        self.latency[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter. Individual loads are
    /// relaxed, so the snapshot is per-counter consistent, not a global
    /// atomic cut — fine for monitoring.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            active_connections: self.active_connections.load(Ordering::Relaxed),
            total_connections: self.total_connections.load(Ordering::Relaxed),
            shed_connections: self.shed_connections.load(Ordering::Relaxed),
            inflight_queries: self.inflight_queries.load(Ordering::Relaxed),
            queued_queries: self.queued_queries.load(Ordering::Relaxed),
            shed_queries: self.shed_queries.load(Ordering::Relaxed),
            queries_started: self.queries_started.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_err: self.queries_err.load(Ordering::Relaxed),
            queries_cancelled: self.queries_cancelled.load(Ordering::Relaxed),
            rows_streamed: self.rows_streamed.load(Ordering::Relaxed),
            blocks_streamed: self.blocks_streamed.load(Ordering::Relaxed),
            bytes_streamed: self.bytes_streamed.load(Ordering::Relaxed),
            chunks_emitted: self.chunks_emitted.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            latency_count: self.latency_count.load(Ordering::Relaxed),
            latency_buckets: self
                .latency
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// log2 bucket index of a microsecond latency: bucket `i` holds samples
/// in `[2^(i-1), 2^i)` (bucket 0 holds 0µs).
fn bucket_of(micros: u64) -> usize {
    (u64::BITS - micros.leading_zeros()) as usize
}

/// Plain-data copy of [`ServerMetrics`]; what `StatsReply` carries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub active_connections: u64,
    pub total_connections: u64,
    pub shed_connections: u64,
    pub inflight_queries: u64,
    pub queued_queries: u64,
    pub shed_queries: u64,
    pub queries_started: u64,
    pub queries_ok: u64,
    pub queries_err: u64,
    pub queries_cancelled: u64,
    pub rows_streamed: u64,
    pub blocks_streamed: u64,
    pub bytes_streamed: u64,
    pub chunks_emitted: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub latency_count: u64,
    /// log2-of-microseconds histogram; see [`MetricsSnapshot::latency_quantile_micros`].
    pub latency_buckets: Vec<u64>,
}

impl MetricsSnapshot {
    /// The `q`-quantile (0.0..=1.0) of recorded query latencies, in
    /// microseconds, as the upper bound of the histogram bucket the
    /// quantile falls in (at most 2x the true value). 0 when nothing
    /// has been recorded.
    pub fn latency_quantile_micros(&self, q: f64) -> u64 {
        if self.latency_count == 0 {
            return 0;
        }
        let rank = ((q * self.latency_count as f64).ceil() as u64).clamp(1, self.latency_count);
        let mut seen = 0u64;
        for (i, n) in self.latency_buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_of_micros() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
    }

    #[test]
    fn quantiles_walk_the_histogram() {
        let m = ServerMetrics::new();
        // 90 fast queries (~8µs), 10 slow (~2ms).
        for _ in 0..90 {
            m.record_latency(Duration::from_micros(8));
        }
        for _ in 0..10 {
            m.record_latency(Duration::from_millis(2));
        }
        let snap = m.snapshot();
        assert_eq!(snap.latency_count, 100);
        let p50 = snap.latency_quantile_micros(0.50);
        let p99 = snap.latency_quantile_micros(0.99);
        assert!(p50 <= 16, "p50 {p50}");
        assert!(p99 >= 2_000, "p99 {p99}");
        assert!(p50 < p99);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = ServerMetrics::new().snapshot();
        assert_eq!(snap.latency_quantile_micros(0.99), 0);
    }
}
