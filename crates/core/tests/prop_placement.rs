//! Property tests for PartitionSelector placement: for *any* operator
//! tree shape, the §2.3 algorithms must produce exactly one selector per
//! dynamic scan, placed so the §3.1 pairing rules hold.

// `--cfg ci_quick` (set via RUSTFLAGS by time-bounded CI lanes) shrinks
// the proptest case count; the cfg is probed, not declared, so silence
// the unexpected-cfgs lint.
#![allow(unexpected_cfgs)]

/// Full case count normally; an eighth (floor 32) under `ci_quick`.
fn prop_cases(full: u32) -> u32 {
    if cfg!(ci_quick) {
        (full / 8).max(32)
    } else {
        full
    }
}

use mpp_catalog::builders::range_parts_equal_width;
use mpp_catalog::{Catalog, Distribution, TableDesc};
use mpp_common::{Column, DataType, Datum, PartScanId, Schema};
use mpp_core::{place_partition_selectors, validate_selector_pairing};
use mpp_expr::{ColRef, Expr};
use mpp_plan::{JoinType, PhysicalPlan};
use proptest::prelude::*;

/// Catalog with several partitioned tables t1..t4 (schema (a, b),
/// partitioned on b) and one plain table t0.
fn catalog() -> Catalog {
    let cat = Catalog::new();
    let schema = Schema::new(vec![
        Column::new("a", DataType::Int32),
        Column::new("b", DataType::Int32),
    ]);
    for i in 0..5u32 {
        let oid = cat.allocate_table_oid();
        let partitioning = if i == 0 {
            None
        } else {
            let first = cat.allocate_part_oids(10);
            Some(range_parts_equal_width(1, Datum::Int32(0), Datum::Int32(100), 10, first).unwrap())
        };
        cat.register(TableDesc {
            oid,
            name: format!("t{i}"),
            schema: schema.clone(),
            distribution: Distribution::Hashed(vec![0]),
            partitioning,
        })
        .unwrap();
    }
    cat
}

/// A recipe for a random physical tree. Leaves pick one of the tables;
/// interior nodes are filters (with or without a key predicate) and
/// joins (on the partition key or not).
#[derive(Debug, Clone)]
enum Shape {
    Scan {
        table: u32,
    },
    Filter {
        on_key: bool,
        child: Box<Shape>,
    },
    Join {
        on_key: bool,
        left: Box<Shape>,
        right: Box<Shape>,
    },
    Agg {
        child: Box<Shape>,
    },
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    let leaf = (0u32..5).prop_map(|table| Shape::Scan { table });
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (any::<bool>(), inner.clone()).prop_map(|(on_key, c)| Shape::Filter {
                on_key,
                child: Box::new(c)
            }),
            (any::<bool>(), inner.clone(), inner.clone()).prop_map(|(on_key, l, r)| {
                Shape::Join {
                    on_key,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }),
            inner
                .clone()
                .prop_map(|c| Shape::Agg { child: Box::new(c) }),
        ]
    })
}

struct Builder {
    cat: Catalog,
    next_col: u32,
    next_scan: u32,
}

impl Builder {
    /// Build a physical tree; returns (plan, a-colref, b-colref) of some
    /// table in the subtree for predicate construction.
    fn build(&mut self, shape: &Shape) -> (PhysicalPlan, ColRef, ColRef) {
        match shape {
            Shape::Scan { table } => {
                let a = ColRef::new(self.next_col, "a");
                let b = ColRef::new(self.next_col + 1, "b");
                self.next_col += 2;
                let desc = self.cat.table_by_name(&format!("t{table}")).unwrap();
                let plan = if desc.is_partitioned() {
                    let id = PartScanId(self.next_scan);
                    self.next_scan += 1;
                    PhysicalPlan::DynamicScan {
                        table: desc.oid,
                        table_name: desc.name.clone(),
                        part_scan_id: id,
                        output: vec![a.clone(), b.clone()],
                        filter: None,
                        restrict: None,
                    }
                } else {
                    PhysicalPlan::TableScan {
                        table: desc.oid,
                        table_name: desc.name.clone(),
                        output: vec![a.clone(), b.clone()],
                        filter: None,
                    }
                };
                (plan, a, b)
            }
            Shape::Filter { on_key, child } => {
                let (c, a, b) = self.build(child);
                let col = if *on_key { b.clone() } else { a.clone() };
                let plan = PhysicalPlan::Filter {
                    pred: Expr::lt(Expr::col(col), Expr::lit(40i32)),
                    child: Box::new(c),
                };
                (plan, a, b)
            }
            Shape::Join {
                on_key,
                left,
                right,
            } => {
                let (l, la, lb) = self.build(left);
                let (r, ra, rb) = self.build(right);
                let (lk, rk) = if *on_key {
                    (la.clone(), rb)
                } else {
                    (la.clone(), ra)
                };
                let plan = PhysicalPlan::HashJoin {
                    join_type: JoinType::Inner,
                    left_keys: vec![Expr::col(lk)],
                    right_keys: vec![Expr::col(rk)],
                    residual: None,
                    left: Box::new(l),
                    right: Box::new(r),
                };
                (plan, la, lb)
            }
            Shape::Agg { child } => {
                let (c, a, b) = self.build(child);
                let out = ColRef::new(self.next_col, "cnt");
                self.next_col += 1;
                let plan = PhysicalPlan::HashAgg {
                    group_by: vec![a.clone()],
                    aggs: vec![mpp_plan::AggCall::count_star()],
                    output: vec![a.clone(), out],
                    child: Box::new(c),
                };
                (plan, a, b)
            }
        }
    }
}

fn count_scans(plan: &PhysicalPlan) -> usize {
    plan.count_op("DynamicScan")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(256)))]

    /// Placement always yields a valid plan with exactly one selector per
    /// dynamic scan, and never duplicates or drops scans.
    #[test]
    fn placement_yields_valid_plans(shape in arb_shape()) {
        let cat = catalog();
        let mut b = Builder { cat: cat.clone(), next_col: 1, next_scan: 1 };
        let (plan, _, _) = b.build(&shape);
        let scans_before = count_scans(&plan);
        let placed = place_partition_selectors(&cat, plan).unwrap();
        prop_assert_eq!(count_scans(&placed), scans_before);
        prop_assert_eq!(placed.count_op("PartitionSelector"), scans_before);
        validate_selector_pairing(&placed)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// Placement is idempotent for any shape.
    #[test]
    fn placement_is_idempotent(shape in arb_shape()) {
        let cat = catalog();
        let mut b = Builder { cat: cat.clone(), next_col: 1, next_scan: 1 };
        let (plan, _, _) = b.build(&shape);
        let once = place_partition_selectors(&cat, plan).unwrap();
        let twice = place_partition_selectors(&cat, once.clone()).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// A key-filter directly over a dynamic scan always ends up annotated
    /// on the selector (static elimination is never missed).
    #[test]
    fn key_filters_reach_selectors(table in 1u32..5) {
        let cat = catalog();
        let mut b = Builder { cat: cat.clone(), next_col: 1, next_scan: 1 };
        let shape = Shape::Filter {
            on_key: true,
            child: Box::new(Shape::Scan { table }),
        };
        let (plan, _, _) = b.build(&shape);
        let placed = place_partition_selectors(&cat, plan).unwrap();
        let mut annotated = false;
        placed.visit(&mut |p| {
            if let PhysicalPlan::PartitionSelector { predicates, .. } = p {
                if predicates[0].is_some() {
                    annotated = true;
                }
            }
        });
        prop_assert!(annotated);
    }
}
