//! Plan validity checking for partition propagation (paper §3.1,
//! Figure 12).
//!
//! A (PartitionSelector, DynamicScan) pair communicates over shared memory
//! within one process, so a valid plan must guarantee:
//!
//! 1. every DynamicScan has exactly one PartitionSelector with its
//!    `partScanId`;
//! 2. the selector *executes before* the scan: at their lowest common
//!    ancestor the selector's branch comes first (children run left to
//!    right) — in particular the selector must not be an ancestor of its
//!    own scan, which would invert the order;
//! 3. **no Motion sits between either of them and their lowest common
//!    ancestor** — a Motion is a process boundary, and OIDs written on one
//!    side of it would never be seen on the other (the "invalid plan" of
//!    Figure 12).

use mpp_common::{Error, PartScanId, Result};
use mpp_plan::PhysicalPlan;

/// A path from the root to a node: the child index taken at every step,
/// plus whether any Motion was crossed after a given depth.
#[derive(Debug, Clone)]
struct NodePath {
    steps: Vec<usize>,
    /// For each depth d, whether the node at depth d (0 = root) is a
    /// Motion.
    motion_at: Vec<bool>,
}

fn find_paths(
    plan: &PhysicalPlan,
    mut on_selector: impl FnMut(PartScanId, NodePath),
    mut on_scan: impl FnMut(PartScanId, NodePath),
) {
    fn rec(
        p: &PhysicalPlan,
        steps: &mut Vec<usize>,
        motions: &mut Vec<bool>,
        on_selector: &mut impl FnMut(PartScanId, NodePath),
        on_scan: &mut impl FnMut(PartScanId, NodePath),
    ) {
        motions.push(matches!(p, PhysicalPlan::Motion { .. }));
        match p {
            PhysicalPlan::PartitionSelector { part_scan_id, .. } => on_selector(
                *part_scan_id,
                NodePath {
                    steps: steps.clone(),
                    motion_at: motions.clone(),
                },
            ),
            PhysicalPlan::DynamicScan { part_scan_id, .. } => on_scan(
                *part_scan_id,
                NodePath {
                    steps: steps.clone(),
                    motion_at: motions.clone(),
                },
            ),
            _ => {}
        }
        for (i, c) in p.children().iter().enumerate() {
            steps.push(i);
            rec(c, steps, motions, on_selector, on_scan);
            steps.pop();
        }
        motions.pop();
    }
    let mut steps = Vec::new();
    let mut motions = Vec::new();
    rec(
        plan,
        &mut steps,
        &mut motions,
        &mut on_selector,
        &mut on_scan,
    );
}

/// Check conditions 1–3 above for every (selector, scan) pair in the plan.
pub fn validate_selector_pairing(plan: &PhysicalPlan) -> Result<()> {
    let mut selectors: Vec<(PartScanId, NodePath)> = Vec::new();
    let mut scans: Vec<(PartScanId, NodePath)> = Vec::new();
    find_paths(
        plan,
        |id, p| selectors.push((id, p)),
        |id, p| scans.push((id, p)),
    );

    for (id, scan_path) in &scans {
        let mine: Vec<&NodePath> = selectors
            .iter()
            .filter(|(sid, _)| sid == id)
            .map(|(_, p)| p)
            .collect();
        if mine.is_empty() {
            return Err(Error::InvalidPlan(format!(
                "DynamicScan {id} has no PartitionSelector"
            )));
        }
        if mine.len() > 1 {
            return Err(Error::InvalidPlan(format!(
                "DynamicScan {id} has {} PartitionSelectors",
                mine.len()
            )));
        }
        let sel_path = mine[0];

        // Depth of the lowest common ancestor = length of the common step
        // prefix.
        let lca = sel_path
            .steps
            .iter()
            .zip(&scan_path.steps)
            .take_while(|(a, b)| a == b)
            .count();

        // Condition 2a: the selector must not be an ancestor of the scan.
        if sel_path.steps.len() == lca && scan_path.steps.len() > lca {
            return Err(Error::InvalidPlan(format!(
                "PartitionSelector {id} is an ancestor of its own DynamicScan; \
                 it would run after the scan (use the Sequence form)"
            )));
        }
        // ... nor vice versa.
        if scan_path.steps.len() == lca {
            return Err(Error::InvalidPlan(format!(
                "DynamicScan {id} is an ancestor of its PartitionSelector"
            )));
        }

        // Condition 2b: selector branch executes before scan branch.
        if sel_path.steps[lca] >= scan_path.steps[lca] {
            return Err(Error::InvalidPlan(format!(
                "PartitionSelector {id} is placed after its DynamicScan in \
                 execution order"
            )));
        }

        // Condition 3: no Motion strictly below the LCA on either path.
        // motion_at[d] describes the node at depth d; the LCA node itself
        // sits at depth `lca`, so check depths lca+1.. on both paths.
        let crosses_motion = |p: &NodePath| p.motion_at.iter().skip(lca + 1).any(|&m| m);
        if crosses_motion(sel_path) {
            return Err(Error::InvalidPlan(format!(
                "a Motion separates PartitionSelector {id} from the common \
                 ancestor with its DynamicScan (paper Figure 12)"
            )));
        }
        if crosses_motion(scan_path) {
            return Err(Error::InvalidPlan(format!(
                "a Motion separates DynamicScan {id} from the common \
                 ancestor with its PartitionSelector (paper Figure 12)"
            )));
        }
    }

    // Selectors without a scan are also invalid.
    for (id, _) in &selectors {
        if !scans.iter().any(|(sid, _)| sid == id) {
            return Err(Error::InvalidPlan(format!(
                "PartitionSelector {id} has no DynamicScan"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_common::{PartScanId, TableOid};
    use mpp_expr::{ColRef, Expr};
    use mpp_plan::{JoinType, MotionKind};

    fn scan(id: u32) -> PhysicalPlan {
        PhysicalPlan::DynamicScan {
            table: TableOid(1),
            table_name: "t".into(),
            part_scan_id: PartScanId(id),
            output: vec![ColRef::new(1, "a")],
            filter: None,
            restrict: None,
        }
    }

    fn selector(id: u32, child: Option<PhysicalPlan>) -> PhysicalPlan {
        PhysicalPlan::PartitionSelector {
            table: TableOid(1),
            table_name: "t".into(),
            part_scan_id: PartScanId(id),
            part_keys: vec![ColRef::new(1, "a")],
            predicates: vec![None],
            child: child.map(Box::new),
        }
    }

    fn table_scan() -> PhysicalPlan {
        PhysicalPlan::TableScan {
            table: TableOid(2),
            table_name: "s".into(),
            output: vec![ColRef::new(2, "b")],
            filter: None,
        }
    }

    fn join(left: PhysicalPlan, right: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan::HashJoin {
            join_type: JoinType::Inner,
            left_keys: vec![Expr::col(ColRef::new(2, "b"))],
            right_keys: vec![Expr::col(ColRef::new(1, "a"))],
            residual: None,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    #[test]
    fn sequence_form_is_valid() {
        let plan = PhysicalPlan::Sequence {
            children: vec![selector(1, None), scan(1)],
        };
        assert!(validate_selector_pairing(&plan).is_ok());
    }

    #[test]
    fn join_dpe_form_is_valid() {
        // Selector on outer side, scan on inner side — Figure 5(d).
        let plan = join(selector(1, Some(table_scan())), scan(1));
        assert!(validate_selector_pairing(&plan).is_ok());
    }

    #[test]
    fn missing_selector_is_invalid() {
        let err = validate_selector_pairing(&scan(1)).unwrap_err();
        assert!(err.to_string().contains("no PartitionSelector"));
    }

    #[test]
    fn orphan_selector_is_invalid() {
        let plan = selector(1, Some(table_scan()));
        assert!(validate_selector_pairing(&plan).is_err());
    }

    #[test]
    fn selector_after_scan_is_invalid() {
        let plan = PhysicalPlan::Sequence {
            children: vec![scan(1), selector(1, None)],
        };
        assert!(validate_selector_pairing(&plan).is_err());
    }

    #[test]
    fn selector_above_own_scan_is_invalid() {
        // Pass-through selector directly over its own scan: would run
        // after the scan in a materialize-children-first model.
        let plan = selector(1, Some(scan(1)));
        let err = validate_selector_pairing(&plan).unwrap_err();
        assert!(err.to_string().contains("ancestor"));
    }

    #[test]
    fn motion_between_selector_and_join_is_invalid() {
        // Figure 12 right side: Motion above the selector on the outer
        // branch breaks the pairing.
        let plan = join(
            PhysicalPlan::Motion {
                kind: MotionKind::Broadcast,
                child: Box::new(selector(1, Some(table_scan()))),
            },
            scan(1),
        );
        let err = validate_selector_pairing(&plan).unwrap_err();
        assert!(err.to_string().contains("Motion"), "{err}");
    }

    #[test]
    fn motion_between_scan_and_join_is_invalid() {
        let plan = join(
            selector(1, Some(table_scan())),
            PhysicalPlan::Motion {
                kind: MotionKind::Redistribute(vec![ColRef::new(1, "a")]),
                child: Box::new(scan(1)),
            },
        );
        assert!(validate_selector_pairing(&plan).is_err());
    }

    #[test]
    fn motion_above_both_is_valid() {
        // Figure 12 left side: the whole pair below one Motion is fine —
        // the pair still shares a process.
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(join(selector(1, Some(table_scan())), scan(1))),
        };
        assert!(validate_selector_pairing(&plan).is_ok());
    }

    #[test]
    fn duplicate_selectors_are_invalid() {
        let plan = PhysicalPlan::Sequence {
            children: vec![selector(1, None), selector(1, None), scan(1)],
        };
        assert!(validate_selector_pairing(&plan).is_err());
    }
}
