//! Cascades-style Memo optimization with partition propagation as a
//! physical property (paper §3.1).
//!
//! The Memo compactly encodes the plan space as *groups* of logically
//! equivalent expressions. Optimization requests carry two requirements:
//!
//! * a **distribution** requirement (`Any` / `Hashed` / `Replicated` /
//!   `Singleton`), enforced by `Motion` operators;
//! * a list of **partition propagation** requirements
//!   `<partScanId, partKeys, partPredicates>`, enforced by
//!   `PartitionSelector` operators.
//!
//! Enforcer ordering implements the paper's §3.1 restriction: a partition
//! propagation request whose DynamicScan is *not* in a group's subtree can
//! only be satisfied by a pass-through PartitionSelector **on top** of
//! that group's plan — above any Motion — because a Motion between the
//! selector and the consuming scan would break their shared-memory
//! channel (Figure 12). Requests whose scan *is* in the subtree are routed
//! down through the operators (being augmented with partition-filtering
//! predicates on the way, as in §2.3) and materialize at the DynamicScan
//! as the `Sequence(PartitionSelector, DynamicScan)` shape.
//!
//! Join expressions route an inner-side request with a key-constraining
//! join predicate to their *outer* child (making it non-local there — the
//! dynamic partition elimination of Figure 5(d)), and the cost model
//! credits the join with the partitions the inner scan then avoids; this
//! is what makes Figure 14's "replicate the outer side to enable DPE"
//! plan win or lose on cost.

use crate::cardinality::{CardinalityEstimator, ColumnBinding};
use crate::cost::CostModel;
use crate::optimizer::DistSpec;
use mpp_catalog::{Catalog, Distribution};
use mpp_common::{Error, PartScanId, Result, TableOid};
use mpp_expr::analysis::{derive_interval_set, find_preds_on_keys, DerivedSet};
use mpp_expr::{collect_columns, split_conjuncts, ColRef, Expr};
use mpp_plan::{AggCall, JoinType, LogicalPlan, MotionKind, PhysicalPlan};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};

type GroupId = usize;

/// Distribution requirement of an optimization request.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum DistReq {
    Any,
    Hashed(Vec<ColRef>),
    Replicated,
    Singleton,
}

/// One partition propagation requirement: "a PartitionSelector for this
/// scan, with these per-level predicates, must exist in your plan".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PartReq {
    scan_id: PartScanId,
    table: TableOid,
    table_name: String,
    keys: Vec<ColRef>,
    preds: Vec<Option<Expr>>,
}

impl PartReq {
    fn augmented(&self, per_level: &[Option<Expr>]) -> PartReq {
        let preds = self
            .preds
            .iter()
            .zip(per_level)
            .map(|(old, new)| match new {
                None => old.clone(),
                Some(p) => Some(mpp_expr::conj(old.clone(), p.clone())),
            })
            .collect();
        PartReq {
            preds,
            ..self.clone()
        }
    }
}

/// A full optimization request (paper Figure 13's `{dist, <…>}` pairs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct OptRequest {
    dist: DistReq,
    parts: Vec<PartReq>,
}

impl OptRequest {
    fn any() -> OptRequest {
        OptRequest {
            dist: DistReq::Any,
            parts: vec![],
        }
    }

    fn with_parts(mut self, mut parts: Vec<PartReq>) -> OptRequest {
        parts.sort_by_key(|p| p.scan_id);
        self.parts = parts;
        self
    }
}

/// Group expressions: operators whose children are group references.
#[derive(Debug, Clone)]
enum MExpr {
    // Physical only — logical expressions are implemented eagerly at
    // insertion, so the group stores the physical alternatives plus enough
    // logical identity for exploration.
    Scan {
        table: TableOid,
        name: String,
        output: Vec<ColRef>,
    },
    DynScan {
        table: TableOid,
        name: String,
        scan_id: PartScanId,
        output: Vec<ColRef>,
    },
    Filter {
        pred: Expr,
        child: GroupId,
    },
    Project {
        exprs: Vec<Expr>,
        output: Vec<ColRef>,
        child: GroupId,
    },
    HashJoin {
        join_type: JoinType,
        left_keys: Vec<Expr>,
        right_keys: Vec<Expr>,
        residual: Option<Expr>,
        left: GroupId,
        right: GroupId,
    },
    NLJoin {
        join_type: JoinType,
        pred: Option<Expr>,
        left: GroupId,
        right: GroupId,
    },
    HashAgg {
        group_by: Vec<ColRef>,
        aggs: Vec<AggCall>,
        output: Vec<ColRef>,
        child: GroupId,
    },
    Values {
        rows: Vec<Vec<mpp_common::Datum>>,
        output: Vec<ColRef>,
    },
    Limit {
        n: u64,
        child: GroupId,
    },
    Sort {
        keys: Vec<(ColRef, bool)>,
        child: GroupId,
    },
}

impl MExpr {
    fn children(&self) -> Vec<GroupId> {
        match self {
            MExpr::Scan { .. } | MExpr::DynScan { .. } | MExpr::Values { .. } => vec![],
            MExpr::Filter { child, .. }
            | MExpr::Project { child, .. }
            | MExpr::HashAgg { child, .. }
            | MExpr::Limit { child, .. }
            | MExpr::Sort { child, .. } => vec![*child],
            MExpr::HashJoin { left, right, .. } | MExpr::NLJoin { left, right, .. } => {
                vec![*left, *right]
            }
        }
    }
}

/// What satisfied a request: a group expression, or an enforcer on top of
/// the same group.
#[derive(Debug, Clone)]
enum Choice {
    Expr {
        idx: usize,
        child_reqs: Vec<OptRequest>,
    },
    MotionEnf {
        kind: MotionKind,
        child: OptRequest,
    },
    SelectorEnf {
        part: PartReq,
        child: OptRequest,
    },
}

struct Group {
    exprs: Vec<MExpr>,
    output: Vec<ColRef>,
    rows: f64,
    /// Product of base-table cardinalities in the subtree (used by the
    /// DPE fraction estimate).
    base_rows: f64,
    /// Dynamic scans defined in this group's subtree.
    scans: HashSet<PartScanId>,
    /// Natural distribution delivered with no motion (for scans); derived
    /// operators deliver whatever their inputs were asked for.
    best: HashMap<OptRequest, Option<(f64, Choice)>>,
}

/// The result the main optimizer consumes.
pub(crate) struct MemoResult {
    pub(crate) plan: PhysicalPlan,
    pub(crate) dist: DistSpec,
    pub(crate) rows: f64,
}

/// The memo-based optimizer. Holds references to the owning
/// [`crate::optimizer::Optimizer`]'s state.
pub(crate) struct MemoOptimizer<'a> {
    catalog: &'a Catalog,
    cost: &'a CostModel,
    binding: &'a ColumnBinding,
    next_scan_id: &'a AtomicU32,
}

struct Memo<'a> {
    groups: Vec<Group>,
    catalog: &'a Catalog,
    cost: &'a CostModel,
    binding: &'a ColumnBinding,
}

impl<'a> MemoOptimizer<'a> {
    pub(crate) fn new(
        catalog: &'a Catalog,
        cost: &'a CostModel,
        binding: &'a ColumnBinding,
        next_scan_id: &'a AtomicU32,
    ) -> MemoOptimizer<'a> {
        MemoOptimizer {
            catalog,
            cost,
            binding,
            next_scan_id,
        }
    }

    pub(crate) fn optimize(&self, logical: &LogicalPlan) -> Result<MemoResult> {
        let mut memo = Memo {
            groups: Vec::new(),
            catalog: self.catalog,
            cost: self.cost,
            binding: self.binding,
        };
        let root = memo.insert(logical, self.next_scan_id)?;
        // Initial request: any distribution, and partition propagation for
        // every dynamic scan in the tree (paper Figure 13 req #1).
        let parts: Vec<PartReq> = memo.groups[root]
            .scans
            .iter()
            .map(|&id| memo.part_req_for(root, id))
            .collect::<Result<_>>()?;
        let req = OptRequest::any().with_parts(parts);
        let cost = memo
            .optimize_group(root, &req)
            .ok_or_else(|| Error::Optimize("memo found no valid plan".into()))?;
        let _ = cost;
        let plan = memo.extract(root, &req)?;
        let dist = derive_distribution(&plan, self.catalog);
        Ok(MemoResult {
            plan,
            dist,
            rows: memo.groups[root].rows,
        })
    }
}

impl<'a> Memo<'a> {
    fn part_req_for(&self, root: GroupId, id: PartScanId) -> Result<PartReq> {
        // Find the DynScan expression for this id.
        for g in &self.groups {
            for e in &g.exprs {
                if let MExpr::DynScan {
                    table,
                    name,
                    scan_id,
                    output,
                } = e
                {
                    if *scan_id == id {
                        let tree = self.catalog.part_tree(*table)?;
                        let keys = tree
                            .key_indices()
                            .iter()
                            .map(|&i| output[i].clone())
                            .collect::<Vec<_>>();
                        let levels = keys.len();
                        return Ok(PartReq {
                            scan_id: id,
                            table: *table,
                            table_name: name.clone(),
                            keys,
                            preds: vec![None; levels],
                        });
                    }
                }
            }
        }
        let _ = root;
        Err(Error::Internal(format!("scan {id} not in memo")))
    }

    /// Insert a logical plan, implementing physical alternatives eagerly
    /// (including commuted joins — the Figure 13 `HashJoin[1,2]` /
    /// `HashJoin[2,1]` pair).
    fn insert(&mut self, plan: &LogicalPlan, next_scan_id: &AtomicU32) -> Result<GroupId> {
        let est = CardinalityEstimator::new(self.catalog, self.binding);
        match plan {
            LogicalPlan::Get {
                table,
                table_name,
                output,
            } => {
                let desc = self.catalog.table(*table)?;
                let rows = est.table_cardinality(*table);
                let mut scans = HashSet::new();
                let expr = if desc.is_partitioned() {
                    let id = PartScanId(next_scan_id.fetch_add(1, Ordering::Relaxed));
                    scans.insert(id);
                    MExpr::DynScan {
                        table: *table,
                        name: table_name.clone(),
                        scan_id: id,
                        output: output.clone(),
                    }
                } else {
                    MExpr::Scan {
                        table: *table,
                        name: table_name.clone(),
                        output: output.clone(),
                    }
                };
                Ok(self.add_group(vec![expr], output.clone(), rows, rows, scans))
            }
            LogicalPlan::Select { pred, child } => {
                let c = self.insert(child, next_scan_id)?;
                let rows = (self.groups[c].rows * est.selectivity(pred)).max(1.0);
                let output = self.groups[c].output.clone();
                let scans = self.groups[c].scans.clone();
                let base = self.groups[c].base_rows;
                Ok(self.add_group(
                    vec![MExpr::Filter {
                        pred: pred.clone(),
                        child: c,
                    }],
                    output,
                    rows,
                    base,
                    scans,
                ))
            }
            LogicalPlan::Project {
                exprs,
                output,
                child,
            } => {
                let c = self.insert(child, next_scan_id)?;
                let rows = self.groups[c].rows;
                let scans = self.groups[c].scans.clone();
                let base = self.groups[c].base_rows;
                Ok(self.add_group(
                    vec![MExpr::Project {
                        exprs: exprs.clone(),
                        output: output.clone(),
                        child: c,
                    }],
                    output.clone(),
                    rows,
                    base,
                    scans,
                ))
            }
            LogicalPlan::Join {
                join_type,
                pred,
                left,
                right,
            } => {
                let l = self.insert(left, next_scan_id)?;
                let r = self.insert(right, next_scan_id)?;
                let rows = est.join_cardinality(self.groups[l].rows, self.groups[r].rows, pred);
                let mut output = self.groups[l].output.clone();
                if join_type.outputs_right() {
                    output.extend(self.groups[r].output.clone());
                }
                let mut scans = self.groups[l].scans.clone();
                scans.extend(self.groups[r].scans.iter().copied());

                let mut exprs = self.join_impls(*join_type, pred, l, r)?;
                // Exploration: inner-join commutativity.
                if *join_type == JoinType::Inner {
                    exprs.extend(self.join_impls(*join_type, pred, r, l)?);
                }
                let base = self.groups[l].base_rows * self.groups[r].base_rows;
                Ok(self.add_group(exprs, output, rows, base, scans))
            }
            LogicalPlan::Agg {
                group_by,
                aggs,
                output,
                child,
            } => {
                let c = self.insert(child, next_scan_id)?;
                let rows = est.agg_cardinality(self.groups[c].rows, group_by);
                let scans = self.groups[c].scans.clone();
                let base = self.groups[c].base_rows;
                Ok(self.add_group(
                    vec![MExpr::HashAgg {
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                        output: output.clone(),
                        child: c,
                    }],
                    output.clone(),
                    rows,
                    base,
                    scans,
                ))
            }
            LogicalPlan::Values { rows, output } => {
                let n = rows.len() as f64;
                Ok(self.add_group(
                    vec![MExpr::Values {
                        rows: rows.clone(),
                        output: output.clone(),
                    }],
                    output.clone(),
                    n,
                    n,
                    HashSet::new(),
                ))
            }
            LogicalPlan::Limit { n, child } => {
                let c = self.insert(child, next_scan_id)?;
                let rows = self.groups[c].rows.min(*n as f64);
                let output = self.groups[c].output.clone();
                let scans = self.groups[c].scans.clone();
                let base = self.groups[c].base_rows;
                Ok(self.add_group(
                    vec![MExpr::Limit { n: *n, child: c }],
                    output,
                    rows,
                    base,
                    scans,
                ))
            }
            LogicalPlan::Sort { keys, child } => {
                let c = self.insert(child, next_scan_id)?;
                let rows = self.groups[c].rows;
                let output = self.groups[c].output.clone();
                let scans = self.groups[c].scans.clone();
                let base = self.groups[c].base_rows;
                Ok(self.add_group(
                    vec![MExpr::Sort {
                        keys: keys.clone(),
                        child: c,
                    }],
                    output,
                    rows,
                    base,
                    scans,
                ))
            }
            LogicalPlan::Update { .. }
            | LogicalPlan::Delete { .. }
            | LogicalPlan::Insert { .. } => Err(Error::Unsupported(
                "DML is planned by the deterministic pipeline, not the memo".into(),
            )),
        }
    }

    /// Physical join alternatives for one child order.
    fn join_impls(
        &self,
        join_type: JoinType,
        pred: &Expr,
        left: GroupId,
        right: GroupId,
    ) -> Result<Vec<MExpr>> {
        // Semi/anti/outer joins are direction-sensitive: only generate them
        // in the original orientation.
        let left_cols: BTreeSet<ColRef> = self.groups[left].output.iter().cloned().collect();
        let right_cols: BTreeSet<ColRef> = self.groups[right].output.iter().cloned().collect();
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual = Vec::new();
        for conj in split_conjuncts(pred) {
            if let Expr::Cmp {
                op: mpp_expr::CmpOp::Eq,
                left: a,
                right: b,
            } = &conj
            {
                let a_cols = collect_columns(a);
                let b_cols = collect_columns(b);
                if !a_cols.is_empty()
                    && !b_cols.is_empty()
                    && a_cols.iter().all(|c| left_cols.contains(c))
                    && b_cols.iter().all(|c| right_cols.contains(c))
                {
                    left_keys.push(a.as_ref().clone());
                    right_keys.push(b.as_ref().clone());
                    continue;
                }
                if !a_cols.is_empty()
                    && !b_cols.is_empty()
                    && b_cols.iter().all(|c| left_cols.contains(c))
                    && a_cols.iter().all(|c| right_cols.contains(c))
                {
                    left_keys.push(b.as_ref().clone());
                    right_keys.push(a.as_ref().clone());
                    continue;
                }
            }
            residual.push(conj);
        }
        let mut out = Vec::new();
        if !left_keys.is_empty() {
            out.push(MExpr::HashJoin {
                join_type,
                left_keys,
                right_keys,
                residual: if residual.is_empty() {
                    None
                } else {
                    Some(Expr::and(residual))
                },
                left,
                right,
            });
        } else {
            out.push(MExpr::NLJoin {
                join_type,
                pred: Some(pred.clone()),
                left,
                right,
            });
        }
        Ok(out)
    }

    fn add_group(
        &mut self,
        exprs: Vec<MExpr>,
        output: Vec<ColRef>,
        rows: f64,
        base_rows: f64,
        scans: HashSet<PartScanId>,
    ) -> GroupId {
        self.groups.push(Group {
            exprs,
            output,
            rows,
            base_rows,
            scans,
            best: HashMap::new(),
        });
        self.groups.len() - 1
    }

    /// Optimize `group` for `req`; returns the best cost, memoized.
    fn optimize_group(&mut self, gid: GroupId, req: &OptRequest) -> Option<f64> {
        if let Some(entry) = self.groups[gid].best.get(req) {
            return entry.as_ref().map(|(c, _)| *c);
        }
        // Mark in-progress to cut accidental cycles (shouldn't occur: the
        // group graph is a DAG and enforcer recursion strictly shrinks the
        // request).
        self.groups[gid].best.insert(req.clone(), None);

        let rows = self.groups[gid].rows;
        let mut best: Option<(f64, Choice)> = None;
        let consider = |cost: f64, choice: Choice, best: &mut Option<(f64, Choice)>| {
            if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                *best = Some((cost, choice));
            }
        };

        // 1. Non-local partition requests are satisfied only by a
        //    pass-through PartitionSelector on top (paper §3.1).
        let (local, nonlocal): (Vec<PartReq>, Vec<PartReq>) = req
            .parts
            .iter()
            .cloned()
            .partition(|p| self.groups[gid].scans.contains(&p.scan_id));
        if let Some(part) = nonlocal.first() {
            let mut rest = local.clone();
            rest.extend(nonlocal.iter().skip(1).cloned());
            let child_req = OptRequest {
                dist: req.dist.clone(),
                parts: vec![],
            }
            .with_parts(rest);
            if let Some(child_cost) = self.optimize_group(gid, &child_req) {
                let total = child_cost + self.cost.partition_selector(rows);
                consider(
                    total,
                    Choice::SelectorEnf {
                        part: part.clone(),
                        child: child_req,
                    },
                    &mut best,
                );
            }
            // Nothing else can satisfy a non-local part request.
            self.groups[gid].best.insert(req.clone(), best.clone());
            return best.map(|(c, _)| c);
        }

        // 2. Group expressions.
        for idx in 0..self.groups[gid].exprs.len() {
            let expr = self.groups[gid].exprs[idx].clone();
            for (child_reqs, local_cost) in self.expr_alternatives(gid, &expr, req) {
                let mut total = local_cost;
                let mut ok = true;
                for (child, creq) in expr.children().iter().zip(&child_reqs) {
                    match self.optimize_group(*child, creq) {
                        Some(c) => total += c,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    consider(total, Choice::Expr { idx, child_reqs }, &mut best);
                }
            }
        }

        // 3. Motion enforcer for a non-Any distribution requirement (all
        //    remaining part requests are local and stay below the motion).
        if req.dist != DistReq::Any {
            let child_req = OptRequest {
                dist: DistReq::Any,
                parts: req.parts.clone(),
            };
            let kind = match &req.dist {
                DistReq::Hashed(cols) => Some(MotionKind::Redistribute(cols.clone())),
                DistReq::Replicated => Some(MotionKind::Broadcast),
                DistReq::Singleton => Some(MotionKind::Gather),
                DistReq::Any => None,
            };
            if let Some(kind) = kind {
                if let Some(child_cost) = self.optimize_group(gid, &child_req) {
                    let motion_cost = match &kind {
                        MotionKind::Redistribute(_) => self.cost.redistribute(rows),
                        MotionKind::Broadcast => self.cost.broadcast(rows),
                        _ => self.cost.gather(rows),
                    };
                    consider(
                        child_cost + motion_cost,
                        Choice::MotionEnf {
                            kind,
                            child: child_req,
                        },
                        &mut best,
                    );
                }
            }
        }

        self.groups[gid].best.insert(req.clone(), best.clone());
        best.map(|(c, _)| c)
    }

    /// Alternatives for satisfying `req` with `expr`: (child requests,
    /// local cost).
    fn expr_alternatives(
        &mut self,
        gid: GroupId,
        expr: &MExpr,
        req: &OptRequest,
    ) -> Vec<(Vec<OptRequest>, f64)> {
        let rows = self.groups[gid].rows;
        match expr {
            MExpr::Scan { table, output, .. } => {
                if !req.parts.is_empty() {
                    return vec![];
                }
                let natural = self.natural_dist_expr(*table, output);
                if !self.dist_compatible(&natural, &req.dist) {
                    return vec![];
                }
                let base = self.catalog.stats(*table).row_count as f64;
                vec![(vec![], self.cost.table_scan(base))]
            }
            MExpr::DynScan {
                table,
                scan_id,
                output,
                ..
            } => {
                // Accept only a part request for this very scan.
                let frac = match req.parts.len() {
                    0 => 1.0,
                    1 if req.parts[0].scan_id == *scan_id => {
                        self.static_fraction(*table, &req.parts[0])
                    }
                    _ => return vec![],
                };
                let natural = self.natural_dist_expr(*table, output);
                if !self.dist_compatible(&natural, &req.dist) {
                    return vec![];
                }
                let tree = match self.catalog.part_tree(*table) {
                    Ok(t) => t,
                    Err(_) => return vec![],
                };
                let base = self.catalog.stats(*table).row_count as f64;
                vec![(
                    vec![],
                    self.cost.dynamic_scan(base, tree.num_leaves(), frac),
                )]
            }
            MExpr::Filter { pred, .. } => {
                // Pass the distribution through; augment part requests with
                // this filter's key predicates (Algorithm 3 in memo form).
                let parts = req
                    .parts
                    .iter()
                    .map(|p| match find_preds_on_keys(pred, &p.keys) {
                        Some(per_level) => p.augmented(&per_level),
                        None => p.clone(),
                    })
                    .collect();
                let creq = OptRequest {
                    dist: req.dist.clone(),
                    parts: vec![],
                }
                .with_parts(parts);
                vec![(vec![creq], self.cost.filter(rows))]
            }
            MExpr::Project { exprs, output, .. } => {
                // A projection renames columns: a Hashed requirement must
                // be translated through simple pass-through expressions;
                // requirements on computed columns can only be enforced
                // above the projection (by the Motion enforcer).
                let child_dist = match &req.dist {
                    DistReq::Hashed(cols) => {
                        let mapped: Option<Vec<ColRef>> =
                            cols.iter()
                                .map(|c| {
                                    output.iter().position(|o| o == c).and_then(|i| {
                                        match &exprs[i] {
                                            Expr::Col(inner) => Some(inner.clone()),
                                            _ => None,
                                        }
                                    })
                                })
                                .collect();
                        match mapped {
                            Some(m) => DistReq::Hashed(m),
                            None => return vec![],
                        }
                    }
                    other => other.clone(),
                };
                let creq = OptRequest {
                    dist: child_dist,
                    parts: req.parts.clone(),
                };
                vec![(vec![creq], self.cost.project(rows))]
            }
            MExpr::Limit { .. } => {
                let creq = OptRequest {
                    dist: DistReq::Singleton,
                    parts: req.parts.clone(),
                };
                if matches!(req.dist, DistReq::Any | DistReq::Singleton) {
                    vec![(vec![creq], 0.0)]
                } else {
                    vec![]
                }
            }
            MExpr::Sort { .. } => {
                let creq = OptRequest {
                    dist: DistReq::Singleton,
                    parts: req.parts.clone(),
                };
                if matches!(req.dist, DistReq::Any | DistReq::Singleton) {
                    // n log n sort cost, in tuple units.
                    vec![(vec![creq], rows * rows.max(2.0).log2() * 0.05)]
                } else {
                    vec![]
                }
            }
            MExpr::Values { .. } => {
                if !req.parts.is_empty() {
                    return vec![];
                }
                if matches!(req.dist, DistReq::Any | DistReq::Singleton) {
                    vec![(vec![], rows)]
                } else {
                    vec![]
                }
            }
            MExpr::HashAgg { group_by, .. } => {
                let child_dist = if group_by.is_empty() {
                    DistReq::Singleton
                } else {
                    DistReq::Hashed(group_by.clone())
                };
                let delivered_ok = match &req.dist {
                    DistReq::Any => true,
                    DistReq::Singleton => group_by.is_empty(),
                    DistReq::Hashed(h) => h == group_by,
                    DistReq::Replicated => false,
                };
                if !delivered_ok {
                    return vec![];
                }
                let child_rows = {
                    let child = expr.children()[0];
                    self.groups[child].rows
                };
                let creq = OptRequest {
                    dist: child_dist,
                    parts: req.parts.clone(),
                };
                vec![(vec![creq], self.cost.hash_agg(child_rows))]
            }
            MExpr::HashJoin {
                join_type,
                left_keys,
                right_keys,
                residual,
                left,
                right,
            } => self.join_alternatives(
                gid,
                *join_type,
                Some((left_keys, right_keys)),
                &join_pred_expr(left_keys, right_keys, residual),
                *left,
                *right,
                req,
            ),
            MExpr::NLJoin {
                join_type,
                pred,
                left,
                right,
            } => self.join_alternatives(
                gid,
                *join_type,
                None,
                &pred.clone().unwrap_or_else(|| Expr::lit(true)),
                *left,
                *right,
                req,
            ),
        }
    }

    /// Join alternatives: route part requests (Algorithm 4 in memo form)
    /// and enumerate distribution pairs.
    #[allow(clippy::too_many_arguments)]
    fn join_alternatives(
        &mut self,
        gid: GroupId,
        join_type: JoinType,
        keys: Option<(&Vec<Expr>, &Vec<Expr>)>,
        join_pred: &Expr,
        left: GroupId,
        right: GroupId,
        req: &OptRequest,
    ) -> Vec<(Vec<OptRequest>, f64)> {
        let out_rows = self.groups[gid].rows;
        let l_rows = self.groups[left].rows;
        let r_rows = self.groups[right].rows;

        // Route part requests.
        let mut l_parts = Vec::new();
        let mut r_parts = Vec::new();
        let mut dpe_routed = false;
        let mut dpe_fraction = 1.0f64;
        for p in &req.parts {
            if self.groups[left].scans.contains(&p.scan_id) {
                l_parts.push(p.clone());
            } else if let Some(per_level) = find_preds_on_keys(join_pred, &p.keys) {
                // DPE: augmented request to the outer side (non-local
                // there → pass-through selector on top of the outer plan).
                // Filters on the inner chain contribute their key
                // predicates as well, since the request no longer travels
                // through them.
                let mut routed = p.augmented(&per_level);
                if let Some(inner) = self.inner_chain_preds(right, &p.keys) {
                    routed = routed.augmented(&inner);
                }
                l_parts.push(routed);
                dpe_routed = true;
                let l_base = self.groups[left].base_rows;
                dpe_fraction = dpe_fraction.min(self.dpe_fraction(p, l_rows, l_base));
            } else {
                r_parts.push(p.clone());
            }
        }

        // The join's local cost. When DPE applies, the inner child's
        // already-memoized full-scan cost is credited back here with the
        // partitions the selector will eliminate.
        let mut local = match keys {
            Some(_) => self.cost.hash_join(l_rows, r_rows * dpe_fraction, out_rows),
            None => self.cost.nl_join(l_rows, r_rows),
        };
        if dpe_fraction < 1.0 {
            if let Some((table, leaves)) = self.single_dyn_scan_shape(right) {
                let base = self.catalog.stats(table).row_count as f64;
                let full = self.cost.dynamic_scan(base, leaves, 1.0);
                let pruned = self.cost.dynamic_scan(base, leaves, dpe_fraction);
                local -= full - pruned;
            }
        }

        // Distribution pairs: (left req, right req) such that matching
        // tuples meet on one segment.
        let mut pairs: Vec<(DistReq, DistReq)> = Vec::new();
        let hashable = keys
            .map(|(lk, rk)| {
                let lc: Option<Vec<ColRef>> = lk
                    .iter()
                    .map(|e| match e {
                        Expr::Col(c) => Some(c.clone()),
                        _ => None,
                    })
                    .collect();
                let rc: Option<Vec<ColRef>> = rk
                    .iter()
                    .map(|e| match e {
                        Expr::Col(c) => Some(c.clone()),
                        _ => None,
                    })
                    .collect();
                lc.zip(rc)
            })
            .unwrap_or(None);
        match &req.dist {
            DistReq::Any => {
                if let Some((lc, rc)) = &hashable {
                    pairs.push((DistReq::Hashed(lc.clone()), DistReq::Hashed(rc.clone())));
                }
                // Right side everywhere: valid for every join type.
                pairs.push((DistReq::Any, DistReq::Replicated));
                // Left side everywhere: inner joins only (left rows must
                // not be duplicated for semi/anti/outer).
                if join_type == JoinType::Inner {
                    pairs.push((DistReq::Replicated, DistReq::Any));
                }
                pairs.push((DistReq::Singleton, DistReq::Singleton));
            }
            DistReq::Hashed(h) => {
                if let Some((lc, rc)) = &hashable {
                    if h == lc {
                        pairs.push((DistReq::Hashed(lc.clone()), DistReq::Hashed(rc.clone())));
                    }
                }
            }
            DistReq::Singleton => pairs.push((DistReq::Singleton, DistReq::Singleton)),
            DistReq::Replicated => {
                pairs.push((DistReq::Replicated, DistReq::Replicated));
            }
        }

        let mut out = Vec::new();
        for (ld, rd) in pairs {
            // When a DPE request was routed to the outer side, the inner
            // side must stay motion-free above its scan: request the
            // scan's natural distribution so no enforcer is needed there.
            let rd = if dpe_routed {
                match self.natural_dist_of_group(right) {
                    Some(nat) if self.dist_compatible(&nat, &rd) => nat,
                    Some(_) | None => continue,
                }
            } else {
                rd
            };
            let lreq = OptRequest {
                dist: ld,
                parts: vec![],
            }
            .with_parts(l_parts.clone());
            let rreq = OptRequest {
                dist: rd,
                parts: vec![],
            }
            .with_parts(r_parts.clone());
            out.push((vec![lreq, rreq], local));
        }
        out
    }

    /// Expected fraction of partitions scanned under DPE through this
    /// request: the outer side's filter selectivity (rows surviving vs.
    /// its base cardinality) approximates the surviving fraction of the
    /// key domain under the uniform-key assumption.
    fn dpe_fraction(&self, p: &PartReq, outer_rows: f64, outer_base: f64) -> f64 {
        let Ok(tree) = self.catalog.part_tree(p.table) else {
            return 1.0;
        };
        let parts = tree.num_leaves() as f64;
        // Filter selectivity and absolute row count both bound the touched
        // fraction (see the pipeline's dpe_fraction for the reasoning).
        let ratio = if outer_base > 0.0 {
            outer_rows / outer_base
        } else {
            1.0
        };
        let by_count = outer_rows / parts;
        ratio.min(by_count).clamp(1.0 / parts, 1.0)
    }

    /// Partition-key predicates contributed by the Filter chain of a
    /// group whose subtree bottoms out in the dynamic scan.
    fn inner_chain_preds(&self, gid: GroupId, keys: &[ColRef]) -> Option<Vec<Option<Expr>>> {
        let mut acc: Option<Vec<Option<Expr>>> = None;
        let mut g = gid;
        loop {
            match self.groups[g].exprs.first()? {
                MExpr::Filter { pred, child } => {
                    if let Some(per_level) = find_preds_on_keys(pred, keys) {
                        acc = Some(match acc {
                            None => per_level,
                            Some(prev) => prev
                                .into_iter()
                                .zip(per_level)
                                .map(|(a, b)| match (a, b) {
                                    (None, x) | (x, None) => x,
                                    (Some(a), Some(b)) => Some(mpp_expr::conj(Some(a), b)),
                                })
                                .collect(),
                        });
                    }
                    g = *child;
                }
                MExpr::Project { child, .. } | MExpr::Limit { child, .. } => g = *child,
                _ => return acc,
            }
        }
    }

    /// If the group's subtree is a single (possibly filtered/projected)
    /// DynamicScan, return (table, leaf count) for cost crediting.
    fn single_dyn_scan_shape(&self, gid: GroupId) -> Option<(TableOid, usize)> {
        let g = &self.groups[gid];
        if g.scans.len() != 1 {
            return None;
        }
        for e in &g.exprs {
            match e {
                MExpr::DynScan { table, .. } => {
                    let leaves = self.catalog.part_tree(*table).ok()?.num_leaves();
                    return Some((*table, leaves));
                }
                MExpr::Filter { child, .. } | MExpr::Project { child, .. } => {
                    return self.single_dyn_scan_shape(*child);
                }
                _ => {}
            }
        }
        None
    }

    fn dist_compatible(&self, delivered: &DistReq, required: &DistReq) -> bool {
        required == &DistReq::Any || delivered == required
    }

    /// Natural distribution of a scan, expressed over its output colrefs.
    fn natural_dist_expr(&self, table: TableOid, output: &[ColRef]) -> DistReq {
        match self.catalog.table(table).map(|d| d.distribution.clone()) {
            Ok(Distribution::Hashed(cols)) => {
                DistReq::Hashed(cols.iter().map(|&i| output[i].clone()).collect())
            }
            Ok(Distribution::Replicated) => DistReq::Replicated,
            _ => DistReq::Singleton,
        }
    }

    /// Natural (no-motion) distribution of a group whose subtree bottoms
    /// out in a scan: used to pin the inner side of a DPE join in place.
    fn natural_dist_of_group(&self, gid: GroupId) -> Option<DistReq> {
        match self.groups[gid].exprs.first()? {
            MExpr::Scan { table, output, .. } | MExpr::DynScan { table, output, .. } => {
                let desc = self.catalog.table(*table).ok()?;
                Some(match &desc.distribution {
                    Distribution::Hashed(cols) => {
                        DistReq::Hashed(cols.iter().map(|&i| output[i].clone()).collect())
                    }
                    Distribution::Replicated => DistReq::Replicated,
                    Distribution::Singleton => DistReq::Singleton,
                })
            }
            MExpr::Filter { child, .. } | MExpr::Project { child, .. } => {
                self.natural_dist_of_group(*child)
            }
            _ => None,
        }
    }

    /// Fraction of partitions selected by the request's static predicates.
    fn static_fraction(&self, table: TableOid, p: &PartReq) -> f64 {
        let Ok(tree) = self.catalog.part_tree(table) else {
            return 1.0;
        };
        let derived: Vec<DerivedSet> = p
            .keys
            .iter()
            .zip(&p.preds)
            .map(|(key, pred)| match pred {
                Some(pred) => derive_interval_set(pred, key, None),
                None => DerivedSet::full(),
            })
            .collect();
        match tree.select_partitions(&derived) {
            Ok(sel) => (sel.len() as f64 / tree.num_leaves() as f64).max(0.001),
            Err(_) => 1.0,
        }
    }

    /// Extract the best physical plan for (group, request).
    fn extract(&self, gid: GroupId, req: &OptRequest) -> Result<PhysicalPlan> {
        let entry = self.groups[gid]
            .best
            .get(req)
            .and_then(|e| e.as_ref())
            .ok_or_else(|| Error::Internal("extracting unoptimized request".into()))?;
        match &entry.1 {
            Choice::SelectorEnf { part, child } => {
                let inner = self.extract(gid, child)?;
                Ok(PhysicalPlan::PartitionSelector {
                    table: part.table,
                    table_name: part.table_name.clone(),
                    part_scan_id: part.scan_id,
                    part_keys: part.keys.clone(),
                    predicates: part.preds.clone(),
                    child: Some(Box::new(inner)),
                })
            }
            Choice::MotionEnf { kind, child } => {
                let inner = self.extract(gid, child)?;
                Ok(PhysicalPlan::Motion {
                    kind: kind.clone(),
                    child: Box::new(inner),
                })
            }
            Choice::Expr { idx, child_reqs } => {
                self.extract_expr(gid, &self.groups[gid].exprs[*idx], child_reqs, req)
            }
        }
    }

    fn extract_expr(
        &self,
        gid: GroupId,
        expr: &MExpr,
        child_reqs: &[OptRequest],
        req: &OptRequest,
    ) -> Result<PhysicalPlan> {
        let _ = gid;
        Ok(match expr {
            MExpr::Scan {
                table,
                name,
                output,
            } => PhysicalPlan::TableScan {
                table: *table,
                table_name: name.clone(),
                output: output.clone(),
                filter: None,
            },
            MExpr::DynScan {
                table,
                name,
                scan_id,
                output,
            } => {
                let scan = PhysicalPlan::DynamicScan {
                    table: *table,
                    table_name: name.clone(),
                    part_scan_id: *scan_id,
                    output: output.clone(),
                    filter: None,
                    restrict: None,
                };
                // A part request satisfied at the scan materializes as the
                // Sequence(selector, scan) shape of Figure 5.
                if let Some(p) = req.parts.first() {
                    PhysicalPlan::Sequence {
                        children: vec![
                            PhysicalPlan::PartitionSelector {
                                table: *table,
                                table_name: name.clone(),
                                part_scan_id: *scan_id,
                                part_keys: p.keys.clone(),
                                predicates: p.preds.clone(),
                                child: None,
                            },
                            scan,
                        ],
                    }
                } else {
                    scan
                }
            }
            MExpr::Filter { pred, child } => PhysicalPlan::Filter {
                pred: pred.clone(),
                child: Box::new(self.extract(*child, &child_reqs[0])?),
            },
            MExpr::Project {
                exprs,
                output,
                child,
            } => PhysicalPlan::Project {
                exprs: exprs.clone(),
                output: output.clone(),
                child: Box::new(self.extract(*child, &child_reqs[0])?),
            },
            MExpr::HashJoin {
                join_type,
                left_keys,
                right_keys,
                residual,
                left,
                right,
            } => PhysicalPlan::HashJoin {
                join_type: *join_type,
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
                residual: residual.clone(),
                left: Box::new(self.extract(*left, &child_reqs[0])?),
                right: Box::new(self.extract(*right, &child_reqs[1])?),
            },
            MExpr::NLJoin {
                join_type,
                pred,
                left,
                right,
            } => PhysicalPlan::NLJoin {
                join_type: *join_type,
                pred: pred.clone(),
                left: Box::new(self.extract(*left, &child_reqs[0])?),
                right: Box::new(self.extract(*right, &child_reqs[1])?),
            },
            MExpr::HashAgg {
                group_by,
                aggs,
                output,
                child,
            } => PhysicalPlan::HashAgg {
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                output: output.clone(),
                child: Box::new(self.extract(*child, &child_reqs[0])?),
            },
            MExpr::Values { rows, output } => PhysicalPlan::Values {
                rows: rows.clone(),
                output: output.clone(),
            },
            MExpr::Limit { n, child } => PhysicalPlan::Limit {
                n: *n,
                child: Box::new(self.extract(*child, &child_reqs[0])?),
            },
            MExpr::Sort { keys, child } => PhysicalPlan::Sort {
                keys: keys.clone(),
                child: Box::new(self.extract(*child, &child_reqs[0])?),
            },
        })
    }
}

fn join_pred_expr(left_keys: &[Expr], right_keys: &[Expr], residual: &Option<Expr>) -> Expr {
    let mut conjuncts: Vec<Expr> = left_keys
        .iter()
        .zip(right_keys)
        .map(|(l, r)| Expr::eq(l.clone(), r.clone()))
        .collect();
    if let Some(r) = residual {
        conjuncts.push(r.clone());
    }
    Expr::and(conjuncts)
}

/// Derive the delivered distribution of an extracted plan (used to decide
/// the root gather).
pub(crate) fn derive_distribution(plan: &PhysicalPlan, catalog: &Catalog) -> DistSpec {
    match plan {
        PhysicalPlan::TableScan { table, output, .. }
        | PhysicalPlan::DynamicScan { table, output, .. } => {
            match catalog.table(*table).map(|d| d.distribution.clone()) {
                Ok(Distribution::Hashed(cols)) => {
                    DistSpec::Hashed(cols.iter().map(|&i| output[i].clone()).collect())
                }
                Ok(Distribution::Replicated) => DistSpec::Replicated,
                _ => DistSpec::Singleton,
            }
        }
        PhysicalPlan::Motion { kind, .. } => match kind {
            MotionKind::Gather | MotionKind::GatherOne => DistSpec::Singleton,
            MotionKind::Broadcast => DistSpec::Replicated,
            MotionKind::Redistribute(cols) => DistSpec::Hashed(cols.clone()),
        },
        PhysicalPlan::HashJoin { left, right, .. } => {
            let l = derive_distribution(left, catalog);
            if l == DistSpec::Replicated {
                derive_distribution(right, catalog)
            } else {
                l
            }
        }
        PhysicalPlan::NLJoin { left, .. } => derive_distribution(left, catalog),
        PhysicalPlan::HashAgg {
            group_by, child, ..
        } => {
            if group_by.is_empty() {
                derive_distribution(child, catalog)
            } else {
                DistSpec::Hashed(group_by.clone())
            }
        }
        PhysicalPlan::Values { .. } => DistSpec::Singleton,
        PhysicalPlan::Limit { .. } => DistSpec::Singleton,
        PhysicalPlan::Sequence { children } => children
            .last()
            .map(|c| derive_distribution(c, catalog))
            .unwrap_or(DistSpec::Singleton),
        PhysicalPlan::PartitionSelector { child: Some(c), .. } => derive_distribution(c, catalog),
        PhysicalPlan::Filter { child, .. }
        | PhysicalPlan::Project { child, .. }
        | PhysicalPlan::InitPlanOids { child, .. } => derive_distribution(child, catalog),
        _ => DistSpec::Singleton,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_catalog::builders::range_parts_equal_width;
    use mpp_catalog::{TableDesc, TableStats};
    use mpp_common::{Column, DataType, Datum, Schema};
    use mpp_plan::explain;

    /// The paper's §3.1 example: R(pk, v) partitioned on pk and hash
    /// distributed on pk; S(a, b) hash distributed on a.
    fn figure13_catalog(r_rows: u64, s_rows: u64) -> (Catalog, TableOid, TableOid) {
        let cat = Catalog::new();
        let r_schema = Schema::new(vec![
            Column::new("pk", DataType::Int32),
            Column::new("v", DataType::Int32),
        ]);
        let r = cat.allocate_table_oid();
        let first = cat.allocate_part_oids(100);
        cat.register(TableDesc {
            oid: r,
            name: "r".into(),
            schema: r_schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: Some(
                range_parts_equal_width(0, Datum::Int32(0), Datum::Int32(1000), 100, first)
                    .unwrap(),
            ),
        })
        .unwrap();
        cat.set_stats(r, TableStats::new(r_rows));
        let s_schema = Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("b", DataType::Int32),
        ]);
        let s = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid: s,
            name: "s".into(),
            schema: s_schema,
            distribution: Distribution::Hashed(vec![1]),
            partitioning: None,
        })
        .unwrap();
        cat.set_stats(s, TableStats::new(s_rows));
        (cat, r, s)
    }

    fn figure13_query(cat: &Catalog, r: TableOid, s: TableOid) -> LogicalPlan {
        // SELECT * FROM R, S WHERE R.pk = S.a
        let _ = cat;
        LogicalPlan::Join {
            join_type: JoinType::Inner,
            pred: Expr::eq(
                Expr::col(ColRef::new(1, "pk")),
                Expr::col(ColRef::new(3, "a")),
            ),
            left: Box::new(LogicalPlan::Get {
                table: r,
                table_name: "r".into(),
                output: vec![ColRef::new(1, "pk"), ColRef::new(2, "v")],
            }),
            right: Box::new(LogicalPlan::Get {
                table: s,
                table_name: "s".into(),
                output: vec![ColRef::new(3, "a"), ColRef::new(4, "b")],
            }),
        }
    }

    fn run_memo(cat: &Catalog, plan: &LogicalPlan) -> PhysicalPlan {
        let cost = CostModel::with_segments(4);
        let mut binding = ColumnBinding::new();
        fn bind(plan: &LogicalPlan, b: &mut ColumnBinding) {
            if let LogicalPlan::Get { table, output, .. } = plan {
                for (i, c) in output.iter().enumerate() {
                    b.bind(c.id, *table, i);
                }
            }
            for c in plan.children() {
                bind(c, b);
            }
        }
        bind(plan, &mut binding);
        let next = AtomicU32::new(1);
        let m = MemoOptimizer::new(cat, &cost, &binding, &next);
        m.optimize(plan).unwrap().plan
    }

    #[test]
    fn figure14_memo_picks_dpe_plan_when_outer_is_small() {
        // Big partitioned R, small S: Plan 4 (replicate S, select into R)
        // must win.
        let (cat, r, s) = figure13_catalog(1_000_000, 500);
        let plan = run_memo(&cat, &figure13_query(&cat, r, s));
        let text = explain(&plan);
        // A pass-through selector with the join predicate exists.
        let mut dpe = false;
        plan.visit(&mut |p| {
            if let PhysicalPlan::PartitionSelector {
                child: Some(_),
                predicates,
                ..
            } = p
            {
                if predicates.iter().any(Option::is_some) {
                    dpe = true;
                }
            }
        });
        assert!(dpe, "expected DPE plan:\n{text}");
        // The big partitioned side (R) must stay in place: no Motion
        // between the join and its DynamicScan, and the outer (S) side
        // carries a Motion below the selector (replicate or co-locating
        // redistribute — the memo picks the cheaper, both enable DPE).
        let mut r_moved = false;
        plan.visit(&mut |p| {
            if let PhysicalPlan::Motion { child, .. } = p {
                if child.has_part_scan_id(PartScanId(1)) && child.count_op("HashJoin") == 0 {
                    r_moved = true;
                }
            }
        });
        assert!(
            !r_moved,
            "the 1M-row partitioned side must not move:\n{text}"
        );
        assert!(text.contains("Motion"), "{text}");
        crate::validate::validate_selector_pairing(&plan).unwrap();
    }

    #[test]
    fn memo_skips_dpe_when_outer_is_huge() {
        // Tiny R, enormous S: moving 5M rows to enable DPE over a 100-row
        // table is a loss; the memo must not put any Motion on the S side.
        let (cat, r, s) = figure13_catalog(100, 5_000_000);
        let plan = run_memo(&cat, &figure13_query(&cat, r, s));
        let text = explain(&plan);
        let mut s_moved = false;
        plan.visit(&mut |p| {
            if let PhysicalPlan::Motion { kind, child } = p {
                let mut has_s = false;
                child.visit(&mut |c| {
                    if let PhysicalPlan::TableScan { table_name, .. } = c {
                        if table_name == "s" {
                            has_s = true;
                        }
                    }
                });
                if has_s
                    && child.count_op("HashJoin") == 0
                    && !matches!(kind, MotionKind::Gather | MotionKind::GatherOne)
                {
                    s_moved = true;
                }
            }
        });
        assert!(!s_moved, "the 5M-row side must not move:\n{text}");
        crate::validate::validate_selector_pairing(&plan).unwrap();
    }

    #[test]
    fn memo_static_selection_for_filtered_scan() {
        let (cat, r, _) = figure13_catalog(10_000, 100);
        let logical = LogicalPlan::Select {
            pred: Expr::lt(Expr::col(ColRef::new(1, "pk")), Expr::lit(100i32)),
            child: Box::new(LogicalPlan::Get {
                table: r,
                table_name: "r".into(),
                output: vec![ColRef::new(1, "pk"), ColRef::new(2, "v")],
            }),
        };
        let plan = run_memo(&cat, &logical);
        let text = explain(&plan);
        assert!(text.contains("Sequence"), "{text}");
        let mut static_pred = false;
        plan.visit(&mut |p| {
            if let PhysicalPlan::PartitionSelector {
                child: None,
                predicates,
                ..
            } = p
            {
                if predicates[0].is_some() {
                    static_pred = true;
                }
            }
        });
        assert!(
            static_pred,
            "selector carries the filter predicate:\n{text}"
        );
        crate::validate::validate_selector_pairing(&plan).unwrap();
    }

    #[test]
    fn memo_rejects_dml() {
        let (cat, r, _) = figure13_catalog(100, 100);
        let cost = CostModel::with_segments(4);
        let binding = ColumnBinding::new();
        let next = AtomicU32::new(1);
        let m = MemoOptimizer::new(&cat, &cost, &binding, &next);
        let dml = LogicalPlan::Insert {
            table: r,
            child: Box::new(LogicalPlan::Values {
                rows: vec![],
                output: vec![],
            }),
        };
        assert!(m.optimize(&dml).is_err());
    }

    #[test]
    fn derive_distribution_tracks_motions() {
        let (cat, r, _) = figure13_catalog(100, 100);
        let scan = PhysicalPlan::DynamicScan {
            table: r,
            table_name: "r".into(),
            part_scan_id: PartScanId(1),
            output: vec![ColRef::new(1, "pk"), ColRef::new(2, "v")],
            filter: None,
            restrict: None,
        };
        assert_eq!(
            derive_distribution(&scan, &cat),
            DistSpec::Hashed(vec![ColRef::new(1, "pk")])
        );
        let bcast = PhysicalPlan::Motion {
            kind: MotionKind::Broadcast,
            child: Box::new(scan.clone()),
        };
        assert_eq!(derive_distribution(&bcast, &cat), DistSpec::Replicated);
        let gather = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(scan),
        };
        assert_eq!(derive_distribution(&gather, &cat), DistSpec::Singleton);
    }
}
