//! The cost model.
//!
//! Costs are abstract units proportional to work per segment. The
//! constants are tuned so the trade-offs the paper highlights are real
//! cost-based decisions — in particular Figure 14's choice between
//! *replicating the outer side to enable dynamic partition elimination*
//! (pay network, save scan) and *redistributing with no elimination*
//! (cheap network, full scan): a DynamicScan's cost scales with the
//! fraction of partitions it expects to touch.

/// Tunable cost constants.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cost to read one tuple from storage.
    pub scan_tuple: f64,
    /// Fixed cost to open one leaf partition (metadata, file open).
    pub part_open: f64,
    /// Cost to evaluate a predicate on one tuple.
    pub predicate: f64,
    /// Cost to project one tuple.
    pub project: f64,
    /// Hash-table build, per tuple.
    pub hash_build: f64,
    /// Hash-table probe, per tuple.
    pub hash_probe: f64,
    /// Network transfer, per tuple crossing a Motion.
    pub net_tuple: f64,
    /// Aggregation, per input tuple.
    pub agg_tuple: f64,
    /// PartitionSelector, per input tuple (interval derivation is cheap).
    pub selector_tuple: f64,
    /// Number of segments (broadcast multiplies by this).
    pub num_segments: usize,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            scan_tuple: 1.0,
            part_open: 50.0,
            predicate: 0.1,
            project: 0.05,
            hash_build: 1.5,
            hash_probe: 0.8,
            net_tuple: 2.0,
            agg_tuple: 1.2,
            selector_tuple: 0.2,
            num_segments: 4,
        }
    }
}

impl CostModel {
    pub fn with_segments(num_segments: usize) -> CostModel {
        CostModel {
            num_segments,
            ..CostModel::default()
        }
    }

    /// Scan of an unpartitioned table.
    pub fn table_scan(&self, rows: f64) -> f64 {
        self.part_open + rows * self.scan_tuple
    }

    /// DynamicScan cost: `fraction` of `total_parts` partitions expected to
    /// be opened, same fraction of rows read. `fraction = 1.0` when no
    /// elimination applies.
    pub fn dynamic_scan(&self, rows: f64, total_parts: usize, fraction: f64) -> f64 {
        let f = fraction.clamp(0.0, 1.0);
        let parts = (total_parts as f64 * f).max(1.0);
        parts * self.part_open + rows * f * self.scan_tuple
    }

    /// Legacy Append-of-PartScans: every listed partition pays its open
    /// cost even when a run-time gate skips its rows.
    pub fn append_scan(&self, rows: f64, listed_parts: usize, fraction: f64) -> f64 {
        listed_parts as f64 * self.part_open + rows * fraction.clamp(0.0, 1.0) * self.scan_tuple
    }

    pub fn filter(&self, rows: f64) -> f64 {
        rows * self.predicate
    }

    pub fn project(&self, rows: f64) -> f64 {
        rows * self.project
    }

    pub fn hash_join(&self, build_rows: f64, probe_rows: f64, out_rows: f64) -> f64 {
        build_rows * self.hash_build + probe_rows * self.hash_probe + out_rows * 0.1
    }

    pub fn nl_join(&self, left_rows: f64, right_rows: f64) -> f64 {
        left_rows * right_rows * self.predicate
    }

    pub fn hash_agg(&self, rows: f64) -> f64 {
        rows * self.agg_tuple
    }

    /// Motion cost by kind.
    pub fn gather(&self, rows: f64) -> f64 {
        rows * self.net_tuple
    }

    pub fn redistribute(&self, rows: f64) -> f64 {
        rows * self.net_tuple
    }

    pub fn broadcast(&self, rows: f64) -> f64 {
        rows * self.net_tuple * self.num_segments as f64
    }

    pub fn partition_selector(&self, input_rows: f64) -> f64 {
        input_rows * self.selector_tuple
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elimination_cuts_scan_cost() {
        let m = CostModel::default();
        let full = m.dynamic_scan(1_000_000.0, 100, 1.0);
        let pruned = m.dynamic_scan(1_000_000.0, 100, 0.03);
        assert!(pruned < full / 10.0);
    }

    #[test]
    fn append_pays_open_cost_even_when_gated() {
        let m = CostModel::default();
        // Gated legacy scan skips rows but still opens all parts.
        let legacy = m.append_scan(1_000_000.0, 100, 0.03);
        let orca = m.dynamic_scan(1_000_000.0, 100, 0.03);
        assert!(legacy > orca);
    }

    #[test]
    fn figure14_tradeoff_is_cost_based() {
        // R: 1M rows over 100 parts, S: 1k rows, 4 segments.
        let m = CostModel::with_segments(4);
        let r_rows = 1_000_000.0;
        let s_rows = 1_000.0;
        // Plan 1/2-style: move things, no elimination → full scan of R.
        let no_dpe = m.redistribute(s_rows) + m.dynamic_scan(r_rows, 100, 1.0);
        // Plan 4: broadcast S, select ~ |S| distinct keys worth of parts.
        let dpe = m.broadcast(s_rows) + m.dynamic_scan(r_rows, 100, 0.05);
        assert!(
            dpe < no_dpe,
            "replicate+DPE ({dpe}) should beat redistribute without DPE ({no_dpe})"
        );
        // But with a tiny R and huge S, skipping DPE wins.
        let r_rows = 500.0;
        let s_rows = 1_000_000.0;
        let no_dpe = m.redistribute(s_rows) + m.dynamic_scan(r_rows, 10, 1.0);
        let dpe = m.broadcast(s_rows) + m.dynamic_scan(r_rows, 10, 0.5);
        assert!(no_dpe < dpe);
    }

    #[test]
    fn broadcast_scales_with_segments() {
        let m4 = CostModel::with_segments(4);
        let m16 = CostModel::with_segments(16);
        assert!(m16.broadcast(100.0) > m4.broadcast(100.0) * 3.9);
    }
}
