//! `PartSelectorSpec` — the compact specification of a PartitionSelector
//! that the placement algorithms push through the tree (paper Figure 7,
//! extended for multi-level partitioning in Figure 11).

use mpp_common::{PartScanId, TableOid};
use mpp_expr::{conj, ColRef, Expr};

/// Specification of the PartitionSelector that must be placed for one
/// unresolved DynamicScan.
///
/// `part_keys` / `part_predicates` are parallel lists with one entry per
/// partitioning level (paper §2.4): a single-level table has lists of
/// length 1, recovering the Figure 7 shape. `part_predicates[i]` is `None`
/// until some operator on the way down contributes a filtering predicate
/// for level `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartSelectorSpec {
    pub part_scan_id: PartScanId,
    pub table: TableOid,
    pub table_name: String,
    pub part_keys: Vec<ColRef>,
    pub part_predicates: Vec<Option<Expr>>,
}

impl PartSelectorSpec {
    /// A fresh spec with no predicates: the selector would select all
    /// partitions (Figure 5(a)).
    pub fn unfiltered(
        part_scan_id: PartScanId,
        table: TableOid,
        table_name: impl Into<String>,
        part_keys: Vec<ColRef>,
    ) -> PartSelectorSpec {
        let levels = part_keys.len();
        PartSelectorSpec {
            part_scan_id,
            table,
            table_name: table_name.into(),
            part_keys,
            part_predicates: vec![None; levels],
        }
    }

    pub fn num_levels(&self) -> usize {
        self.part_keys.len()
    }

    /// Do any levels carry a filtering predicate?
    pub fn has_predicates(&self) -> bool {
        self.part_predicates.iter().any(Option::is_some)
    }

    /// Return a new spec whose per-level predicates are augmented with
    /// `new_preds` (conjunction with any existing predicate) — the
    /// `Conj(partKeyPredicate, partSpec.partPredicate)` step of
    /// Algorithms 3 and 4.
    pub fn augmented(&self, new_preds: &[Option<Expr>]) -> PartSelectorSpec {
        assert_eq!(
            new_preds.len(),
            self.num_levels(),
            "predicate list arity must match level count"
        );
        let part_predicates = self
            .part_predicates
            .iter()
            .zip(new_preds)
            .map(|(old, new)| match new {
                None => old.clone(),
                Some(p) => Some(conj(old.clone(), p.clone())),
            })
            .collect();
        PartSelectorSpec {
            part_predicates,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec2() -> PartSelectorSpec {
        PartSelectorSpec::unfiltered(
            PartScanId(1),
            TableOid(1),
            "orders",
            vec![ColRef::new(1, "date"), ColRef::new(2, "region")],
        )
    }

    #[test]
    fn unfiltered_has_no_predicates() {
        let s = spec2();
        assert_eq!(s.num_levels(), 2);
        assert!(!s.has_predicates());
    }

    #[test]
    fn augment_conjoins_per_level() {
        let s = spec2();
        let p1 = Expr::eq(Expr::col(ColRef::new(1, "date")), Expr::lit(5i32));
        let s2 = s.augmented(&[Some(p1.clone()), None]);
        assert!(s2.has_predicates());
        assert_eq!(s2.part_predicates[0], Some(p1.clone()));
        assert_eq!(s2.part_predicates[1], None);
        // Augment again on the same level: conjunction.
        let p2 = Expr::gt(Expr::col(ColRef::new(1, "date")), Expr::lit(0i32));
        let s3 = s2.augmented(&[Some(p2), None]);
        match &s3.part_predicates[0] {
            Some(Expr::And(v)) => assert_eq!(v.len(), 2),
            other => panic!("expected conjunction, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn augment_checks_arity() {
        spec2().augmented(&[None]);
    }
}
