//! Cardinality estimation.
//!
//! Textbook System-R-style estimation over the statistics kept in the
//! catalog. The estimator works with a [`ColumnBinding`] that maps column
//! identities (colref ids) back to base-table columns, which the optimizer
//! builds while walking `Get` nodes — this is what lets a predicate high in
//! the tree find the NDV of the base column it references.

use mpp_catalog::Catalog;
use mpp_common::TableOid;
use mpp_expr::{CmpOp, Expr};
use std::collections::HashMap;

/// colref id → (base table, column index). Columns produced by projections
/// or aggregates are unbound and fall back to default selectivities.
#[derive(Debug, Clone, Default)]
pub struct ColumnBinding {
    map: HashMap<u32, (TableOid, usize)>,
}

impl ColumnBinding {
    pub fn new() -> ColumnBinding {
        ColumnBinding::default()
    }

    pub fn bind(&mut self, colref_id: u32, table: TableOid, column: usize) {
        self.map.insert(colref_id, (table, column));
    }

    pub fn lookup(&self, colref_id: u32) -> Option<(TableOid, usize)> {
        self.map.get(&colref_id).copied()
    }

    pub fn merge(&mut self, other: &ColumnBinding) {
        self.map.extend(other.map.iter().map(|(k, v)| (*k, *v)));
    }
}

/// Default selectivities when nothing better is known — the classic
/// Selinger constants.
const DEFAULT_EQ_SEL: f64 = 0.005;
const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
const DEFAULT_SEL: f64 = 0.25;

/// The estimator.
pub struct CardinalityEstimator<'a> {
    catalog: &'a Catalog,
    binding: &'a ColumnBinding,
}

impl<'a> CardinalityEstimator<'a> {
    pub fn new(catalog: &'a Catalog, binding: &'a ColumnBinding) -> CardinalityEstimator<'a> {
        CardinalityEstimator { catalog, binding }
    }

    fn ndv_of(&self, e: &Expr) -> Option<f64> {
        if let Expr::Col(c) = e {
            let (table, col) = self.binding.lookup(c.id)?;
            Some(self.catalog.stats(table).ndv(col) as f64)
        } else {
            None
        }
    }

    /// Selectivity of a predicate in `[0, 1]`.
    pub fn selectivity(&self, pred: &Expr) -> f64 {
        let s = match pred {
            Expr::Lit(d) => match d.as_bool() {
                Ok(Some(true)) => 1.0,
                Ok(Some(false)) | Ok(None) => 0.0,
                Err(_) => DEFAULT_SEL,
            },
            Expr::And(v) => v.iter().map(|e| self.selectivity(e)).product(),
            Expr::Or(v) => {
                // Inclusion-exclusion under independence.
                let mut not_any = 1.0;
                for e in v {
                    not_any *= 1.0 - self.selectivity(e);
                }
                1.0 - not_any
            }
            Expr::Not(e) => 1.0 - self.selectivity(e),
            Expr::Cmp { op, left, right } => self.cmp_selectivity(*op, left, right),
            Expr::Between { .. } => DEFAULT_RANGE_SEL / 2.0,
            Expr::InList { list, expr, .. } => {
                let per = self.ndv_of(expr).map(|n| 1.0 / n).unwrap_or(DEFAULT_EQ_SEL);
                (per * list.len() as f64).min(1.0)
            }
            Expr::IsNull(e) => {
                if let Expr::Col(c) = e.as_ref() {
                    if let Some((t, col)) = self.binding.lookup(c.id) {
                        return self
                            .catalog
                            .stats(t)
                            .columns
                            .get(&col)
                            .map(|cs| cs.null_frac)
                            .unwrap_or(0.01)
                            .clamp(0.0, 1.0);
                    }
                }
                0.01
            }
            _ => DEFAULT_SEL,
        };
        s.clamp(0.0, 1.0)
    }

    fn cmp_selectivity(&self, op: CmpOp, left: &Expr, right: &Expr) -> f64 {
        let l_col = matches!(left, Expr::Col(_));
        let r_col = matches!(right, Expr::Col(_));
        match op {
            CmpOp::Eq => {
                if l_col && r_col {
                    // Join predicate: 1/max(ndv).
                    let nl = self.ndv_of(left).unwrap_or(1.0 / DEFAULT_EQ_SEL);
                    let nr = self.ndv_of(right).unwrap_or(1.0 / DEFAULT_EQ_SEL);
                    1.0 / nl.max(nr).max(1.0)
                } else if l_col {
                    1.0 / self.ndv_of(left).unwrap_or(1.0 / DEFAULT_EQ_SEL).max(1.0)
                } else if r_col {
                    1.0 / self.ndv_of(right).unwrap_or(1.0 / DEFAULT_EQ_SEL).max(1.0)
                } else {
                    DEFAULT_EQ_SEL
                }
            }
            CmpOp::Ne => 1.0 - self.cmp_selectivity(CmpOp::Eq, left, right),
            _ => DEFAULT_RANGE_SEL,
        }
    }

    /// Join output cardinality under the standard independence model.
    pub fn join_cardinality(&self, left_rows: f64, right_rows: f64, pred: &Expr) -> f64 {
        (left_rows * right_rows * self.selectivity(pred)).max(1.0)
    }

    /// Grouped-aggregation output cardinality: product of group-column
    /// NDVs, capped by input.
    pub fn agg_cardinality(&self, input_rows: f64, group_cols: &[mpp_expr::ColRef]) -> f64 {
        if group_cols.is_empty() {
            return 1.0;
        }
        let mut groups = 1.0f64;
        for c in group_cols {
            let ndv = self
                .ndv_of(&Expr::col(c.clone()))
                .unwrap_or((input_rows / 10.0).max(1.0));
            groups *= ndv;
        }
        groups.min(input_rows).max(1.0)
    }

    /// Base-table cardinality.
    pub fn table_cardinality(&self, table: TableOid) -> f64 {
        self.catalog.stats(table).row_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_catalog::{ColumnStats, TableStats};
    use mpp_expr::ColRef;

    fn setup() -> (Catalog, ColumnBinding) {
        let cat = Catalog::new();
        let t = TableOid(1);
        cat.set_stats(
            t,
            TableStats::new(10_000)
                .with_column(0, ColumnStats::new(100))
                .with_column(1, ColumnStats::new(10_000)),
        );
        let mut b = ColumnBinding::new();
        b.bind(1, t, 0); // colref 1 → col 0, ndv 100
        b.bind(2, t, 1); // colref 2 → col 1, ndv 10000
        (cat, b)
    }

    fn c(id: u32) -> Expr {
        Expr::col(ColRef::new(id, "c"))
    }

    #[test]
    fn equality_uses_ndv() {
        let (cat, b) = setup();
        let est = CardinalityEstimator::new(&cat, &b);
        let s = est.selectivity(&Expr::eq(c(1), Expr::lit(5i32)));
        assert!((s - 0.01).abs() < 1e-9);
        let s = est.selectivity(&Expr::eq(c(2), Expr::lit(5i32)));
        assert!((s - 0.0001).abs() < 1e-9);
    }

    #[test]
    fn join_pred_uses_max_ndv() {
        let (cat, b) = setup();
        let est = CardinalityEstimator::new(&cat, &b);
        let s = est.selectivity(&Expr::eq(c(1), c(2)));
        assert!((s - 1.0 / 10_000.0).abs() < 1e-9);
        let card = est.join_cardinality(10_000.0, 100.0, &Expr::eq(c(1), c(2)));
        assert!((card - 100.0).abs() < 1.0);
    }

    #[test]
    fn and_or_combinators() {
        let (cat, b) = setup();
        let est = CardinalityEstimator::new(&cat, &b);
        let p = Expr::eq(c(1), Expr::lit(5i32));
        let s_and = est.selectivity(&Expr::and(vec![p.clone(), p.clone()]));
        assert!((s_and - 0.0001).abs() < 1e-9);
        let s_or = est.selectivity(&Expr::or(vec![p.clone(), p.clone()]));
        assert!(s_or > 0.01 && s_or < 0.02001);
        let s_not = est.selectivity(&Expr::not(p));
        assert!((s_not - 0.99).abs() < 1e-9);
    }

    #[test]
    fn selectivities_stay_in_unit_interval() {
        let (cat, b) = setup();
        let est = CardinalityEstimator::new(&cat, &b);
        let p = Expr::in_list(c(1), (0..500).map(Expr::lit).collect());
        let s = est.selectivity(&p);
        assert!((0.0..=1.0).contains(&s));
        assert!((s - 1.0).abs() < 1e-9); // 500 values / ndv 100, capped
    }

    #[test]
    fn agg_cardinality_capped_by_input() {
        let (cat, b) = setup();
        let est = CardinalityEstimator::new(&cat, &b);
        let g = est.agg_cardinality(10_000.0, &[ColRef::new(2, "c")]);
        assert!((g - 10_000.0).abs() < 1.0);
        let g = est.agg_cardinality(10_000.0, &[ColRef::new(1, "c")]);
        assert!((g - 100.0).abs() < 1.0);
        assert!((est.agg_cardinality(500.0, &[]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn literal_predicates() {
        let (cat, b) = setup();
        let est = CardinalityEstimator::new(&cat, &b);
        assert_eq!(est.selectivity(&Expr::lit(true)), 1.0);
        assert_eq!(est.selectivity(&Expr::lit(false)), 0.0);
    }
}
