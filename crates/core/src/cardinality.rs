//! Cardinality estimation.
//!
//! System-R-style estimation upgraded with the statistics ANALYZE
//! collects: equality folds in NDV *and* null fraction (equality never
//! matches NULL), range/BETWEEN/IN predicates consult the column's
//! equi-depth histogram when one exists, and partition-aware paths
//! estimate against the rows of the *surviving* leaf partitions rather
//! than a uniform whole-table fraction. The estimator works with a
//! [`ColumnBinding`] that maps column identities (colref ids) back to
//! base-table columns, which the optimizer builds while walking `Get`
//! nodes — this is what lets a predicate high in the tree find the
//! statistics of the base column it references.

use mpp_catalog::{Catalog, TableStats};
use mpp_common::{Datum, PartOid, TableOid};
use mpp_expr::{CmpOp, Expr};
use std::cell::RefCell;
use std::collections::HashMap;

/// colref id → (base table, column index). Columns produced by projections
/// or aggregates are unbound and fall back to default selectivities.
#[derive(Debug, Clone, Default)]
pub struct ColumnBinding {
    map: HashMap<u32, (TableOid, usize)>,
}

impl ColumnBinding {
    pub fn new() -> ColumnBinding {
        ColumnBinding::default()
    }

    pub fn bind(&mut self, colref_id: u32, table: TableOid, column: usize) {
        self.map.insert(colref_id, (table, column));
    }

    pub fn lookup(&self, colref_id: u32) -> Option<(TableOid, usize)> {
        self.map.get(&colref_id).copied()
    }

    pub fn merge(&mut self, other: &ColumnBinding) {
        self.map.extend(other.map.iter().map(|(k, v)| (*k, *v)));
    }
}

/// Default selectivities when nothing better is known — the classic
/// Selinger constants.
const DEFAULT_EQ_SEL: f64 = 0.005;
const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
const DEFAULT_SEL: f64 = 0.25;

/// The estimator. Caches `TableStats` per table for its lifetime (one
/// optimize call) so histogram lookups don't re-clone catalog state on
/// every predicate.
pub struct CardinalityEstimator<'a> {
    catalog: &'a Catalog,
    binding: &'a ColumnBinding,
    cache: RefCell<HashMap<TableOid, TableStats>>,
}

impl<'a> CardinalityEstimator<'a> {
    pub fn new(catalog: &'a Catalog, binding: &'a ColumnBinding) -> CardinalityEstimator<'a> {
        CardinalityEstimator {
            catalog,
            binding,
            cache: RefCell::new(HashMap::new()),
        }
    }

    fn with_stats<T>(&self, table: TableOid, f: impl FnOnce(&TableStats) -> T) -> T {
        let mut cache = self.cache.borrow_mut();
        let stats = cache
            .entry(table)
            .or_insert_with(|| self.catalog.stats(table));
        f(stats)
    }

    /// (table, column) behind a bare column reference.
    fn col_of(&self, e: &Expr) -> Option<(TableOid, usize)> {
        if let Expr::Col(c) = e {
            self.binding.lookup(c.id)
        } else {
            None
        }
    }

    fn ndv_of(&self, e: &Expr) -> Option<f64> {
        let (table, col) = self.col_of(e)?;
        Some(self.with_stats(table, |s| s.ndv(col)) as f64)
    }

    fn null_frac_of(&self, e: &Expr) -> f64 {
        match self.col_of(e) {
            Some((table, col)) => self.with_stats(table, |s| s.null_frac(col)),
            None => 0.0,
        }
    }

    /// Integer value of a literal, if it is one.
    fn lit_i64(e: &Expr) -> Option<i64> {
        if let Expr::Lit(d) = e {
            match d {
                Datum::Int32(v) => Some(*v as i64),
                Datum::Int64(v) => Some(*v),
                Datum::Date(v) => Some(*v as i64),
                _ => None,
            }
        } else {
            None
        }
    }

    /// Histogram-backed fraction of col's non-null values `op v`, when a
    /// histogram exists.
    fn hist_cmp_frac(&self, col_expr: &Expr, op: CmpOp, v: i64) -> Option<f64> {
        let (table, col) = self.col_of(col_expr)?;
        self.with_stats(table, |s| {
            let cs = s.columns.get(&col)?;
            let h = cs.histogram.as_ref()?;
            let frac = match op {
                CmpOp::Le => h.le_frac(v),
                CmpOp::Lt => h.le_frac(v.saturating_sub(1)),
                CmpOp::Ge => 1.0 - h.le_frac(v.saturating_sub(1)),
                CmpOp::Gt => 1.0 - h.le_frac(v),
                CmpOp::Eq | CmpOp::Ne => return None,
            };
            Some(frac.clamp(0.0, 1.0))
        })
    }

    /// Selectivity of a predicate in `[0, 1]`.
    pub fn selectivity(&self, pred: &Expr) -> f64 {
        let s = match pred {
            Expr::Lit(d) => match d.as_bool() {
                Ok(Some(true)) => 1.0,
                Ok(Some(false)) | Ok(None) => 0.0,
                Err(_) => DEFAULT_SEL,
            },
            // Independence product, clamped: conjunct products must never
            // escape [0, 1] no matter how many terms compound.
            Expr::And(v) => v
                .iter()
                .map(|e| self.selectivity(e))
                .product::<f64>()
                .clamp(0.0, 1.0),
            Expr::Or(v) => {
                // Inclusion-exclusion under independence.
                let mut not_any = 1.0;
                for e in v {
                    not_any *= 1.0 - self.selectivity(e);
                }
                1.0 - not_any
            }
            Expr::Not(e) => 1.0 - self.selectivity(e),
            Expr::Cmp { op, left, right } => self.cmp_selectivity(*op, left, right),
            Expr::Between { expr, low, high } => self.between_selectivity(expr, low, high),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let per = match self.col_of(expr) {
                    Some((t, col)) => self.with_stats(t, |s| s.eq_selectivity(col)),
                    None => DEFAULT_EQ_SEL,
                };
                let s = (per * list.len() as f64).clamp(0.0, 1.0);
                if *negated {
                    // NOT IN also rejects NULLs in the column.
                    (1.0 - s - self.null_frac_of(expr)).clamp(0.0, 1.0)
                } else {
                    s
                }
            }
            Expr::IsNull(e) => {
                if let Some((t, col)) = self.col_of(e) {
                    return self.with_stats(t, |s| {
                        s.columns
                            .get(&col)
                            .map(|cs| cs.null_frac)
                            .unwrap_or(0.01)
                            .clamp(0.0, 1.0)
                    });
                }
                0.01
            }
            _ => DEFAULT_SEL,
        };
        s.clamp(0.0, 1.0)
    }

    fn between_selectivity(&self, expr: &Expr, low: &Expr, high: &Expr) -> f64 {
        // Histogram path: col BETWEEN int AND int.
        if let Some((table, col)) = self.col_of(expr) {
            let lo = Self::lit_i64(low);
            let hi = Self::lit_i64(high);
            if lo.is_some() || hi.is_some() {
                if let Some(s) = self.with_stats(table, |s| {
                    let cs = s.columns.get(&col)?;
                    let h = cs.histogram.as_ref()?;
                    let notnull = 1.0 - s.null_frac(col);
                    Some((h.range_frac(lo, hi) * notnull).clamp(0.0, 1.0))
                }) {
                    return s;
                }
            }
        }
        DEFAULT_RANGE_SEL / 2.0
    }

    fn cmp_selectivity(&self, op: CmpOp, left: &Expr, right: &Expr) -> f64 {
        let l_col = matches!(left, Expr::Col(_));
        let r_col = matches!(right, Expr::Col(_));
        match op {
            CmpOp::Eq => {
                if l_col && r_col {
                    // Join predicate: 1/max(ndv), scaled by both sides'
                    // non-null fractions (NULL joins nothing).
                    let nl = self.ndv_of(left).unwrap_or(1.0 / DEFAULT_EQ_SEL);
                    let nr = self.ndv_of(right).unwrap_or(1.0 / DEFAULT_EQ_SEL);
                    let notnull =
                        (1.0 - self.null_frac_of(left)) * (1.0 - self.null_frac_of(right));
                    notnull / nl.max(nr).max(1.0)
                } else if l_col || r_col {
                    let col = if l_col { left } else { right };
                    match self.col_of(col) {
                        Some((t, c)) => self.with_stats(t, |s| s.eq_selectivity(c)),
                        None => DEFAULT_EQ_SEL,
                    }
                } else {
                    DEFAULT_EQ_SEL
                }
            }
            CmpOp::Ne => (1.0 - self.cmp_selectivity(CmpOp::Eq, left, right)).clamp(0.0, 1.0),
            _ => {
                // Range comparison: histogram when col-vs-int-literal (in
                // either order), Selinger constant otherwise.
                let hist = if l_col {
                    Self::lit_i64(right).and_then(|v| self.hist_cmp_frac(left, op, v))
                } else if r_col {
                    Self::lit_i64(left).and_then(|v| self.hist_cmp_frac(right, op.flip(), v))
                } else {
                    None
                };
                match hist {
                    Some(frac) => {
                        let col = if l_col { left } else { right };
                        (frac * (1.0 - self.null_frac_of(col))).clamp(0.0, 1.0)
                    }
                    None => DEFAULT_RANGE_SEL,
                }
            }
        }
    }

    /// Join output cardinality under the standard independence model.
    pub fn join_cardinality(&self, left_rows: f64, right_rows: f64, pred: &Expr) -> f64 {
        (left_rows * right_rows * self.selectivity(pred)).max(1.0)
    }

    /// Grouped-aggregation output cardinality: product of group-column
    /// NDVs, capped by input.
    pub fn agg_cardinality(&self, input_rows: f64, group_cols: &[mpp_expr::ColRef]) -> f64 {
        if group_cols.is_empty() {
            return 1.0;
        }
        let mut groups = 1.0f64;
        for c in group_cols {
            let ndv = self
                .ndv_of(&Expr::col(c.clone()))
                .unwrap_or((input_rows / 10.0).max(1.0));
            groups *= ndv;
        }
        groups.min(input_rows).max(1.0)
    }

    /// Base-table cardinality.
    pub fn table_cardinality(&self, table: TableOid) -> f64 {
        self.with_stats(table, |s| s.row_count) as f64
    }

    /// Cardinality of the *surviving* partitions of a table after static
    /// elimination: the sum of per-partition row counts when ANALYZE has
    /// collected them, else a uniform `survivors/total` fraction of the
    /// table. This is what makes DynamicScan costs reflect the skew of
    /// what will actually be scanned.
    pub fn partition_cardinality(
        &self,
        table: TableOid,
        surviving: &[PartOid],
        total_parts: usize,
    ) -> f64 {
        self.with_stats(table, |s| match s.rows_in_parts(surviving.iter()) {
            Some(rows) => rows as f64,
            None => {
                let frac = if total_parts == 0 {
                    1.0
                } else {
                    surviving.len() as f64 / total_parts as f64
                };
                s.row_count as f64 * frac.clamp(0.0, 1.0)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_catalog::{ColumnStats, HistogramBuilder, TableStats};
    use mpp_expr::ColRef;

    fn setup() -> (Catalog, ColumnBinding) {
        let cat = Catalog::new();
        let t = TableOid(1);
        cat.set_stats(
            t,
            TableStats::new(10_000)
                .with_column(0, ColumnStats::new(100))
                .with_column(1, ColumnStats::new(10_000)),
        );
        let mut b = ColumnBinding::new();
        b.bind(1, t, 0); // colref 1 → col 0, ndv 100
        b.bind(2, t, 1); // colref 2 → col 1, ndv 10000
        (cat, b)
    }

    fn c(id: u32) -> Expr {
        Expr::col(ColRef::new(id, "c"))
    }

    #[test]
    fn equality_uses_ndv() {
        let (cat, b) = setup();
        let est = CardinalityEstimator::new(&cat, &b);
        let s = est.selectivity(&Expr::eq(c(1), Expr::lit(5i32)));
        assert!((s - 0.01).abs() < 1e-9);
        let s = est.selectivity(&Expr::eq(c(2), Expr::lit(5i32)));
        assert!((s - 0.0001).abs() < 1e-9);
    }

    #[test]
    fn equality_folds_null_frac() {
        let cat = Catalog::new();
        let t = TableOid(1);
        let mut cs = ColumnStats::new(100);
        cs.null_frac = 0.5;
        cat.set_stats(t, TableStats::new(10_000).with_column(0, cs));
        let mut b = ColumnBinding::new();
        b.bind(1, t, 0);
        let est = CardinalityEstimator::new(&cat, &b);
        let s = est.selectivity(&Expr::eq(c(1), Expr::lit(5i32)));
        assert!((s - 0.005).abs() < 1e-9, "0.5 non-null / 100 ndv, got {s}");
    }

    #[test]
    fn join_pred_uses_max_ndv() {
        let (cat, b) = setup();
        let est = CardinalityEstimator::new(&cat, &b);
        let s = est.selectivity(&Expr::eq(c(1), c(2)));
        assert!((s - 1.0 / 10_000.0).abs() < 1e-9);
        let card = est.join_cardinality(10_000.0, 100.0, &Expr::eq(c(1), c(2)));
        assert!((card - 100.0).abs() < 1.0);
    }

    #[test]
    fn and_or_combinators() {
        let (cat, b) = setup();
        let est = CardinalityEstimator::new(&cat, &b);
        let p = Expr::eq(c(1), Expr::lit(5i32));
        let s_and = est.selectivity(&Expr::and(vec![p.clone(), p.clone()]));
        assert!((s_and - 0.0001).abs() < 1e-9);
        let s_or = est.selectivity(&Expr::or(vec![p.clone(), p.clone()]));
        assert!(s_or > 0.01 && s_or < 0.02001);
        let s_not = est.selectivity(&Expr::not(p));
        assert!((s_not - 0.99).abs() < 1e-9);
    }

    #[test]
    fn selectivities_stay_in_unit_interval() {
        let (cat, b) = setup();
        let est = CardinalityEstimator::new(&cat, &b);
        let p = Expr::in_list(c(1), (0..500).map(Expr::lit).collect());
        let s = est.selectivity(&p);
        assert!((0.0..=1.0).contains(&s));
        assert!((s - 1.0).abs() < 1e-9); // 500 values / ndv 100, capped
    }

    #[test]
    fn agg_cardinality_capped_by_input() {
        let (cat, b) = setup();
        let est = CardinalityEstimator::new(&cat, &b);
        let g = est.agg_cardinality(10_000.0, &[ColRef::new(2, "c")]);
        assert!((g - 10_000.0).abs() < 1.0);
        let g = est.agg_cardinality(10_000.0, &[ColRef::new(1, "c")]);
        assert!((g - 100.0).abs() < 1.0);
        assert!((est.agg_cardinality(500.0, &[]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn literal_predicates() {
        let (cat, b) = setup();
        let est = CardinalityEstimator::new(&cat, &b);
        assert_eq!(est.selectivity(&Expr::lit(true)), 1.0);
        assert_eq!(est.selectivity(&Expr::lit(false)), 0.0);
    }

    /// Stats with a histogram over 0..1000 uniform on column 0.
    fn hist_setup() -> (Catalog, ColumnBinding) {
        let cat = Catalog::new();
        let t = TableOid(1);
        let mut hb = HistogramBuilder::new();
        for v in 0..1000i64 {
            hb.add(v);
        }
        let cs = ColumnStats::new(1000).with_histogram(hb.finish().unwrap());
        cat.set_stats(t, TableStats::new(1000).with_column(0, cs));
        let mut b = ColumnBinding::new();
        b.bind(1, t, 0);
        (cat, b)
    }

    #[test]
    fn histogram_drives_range_selectivity() {
        let (cat, b) = hist_setup();
        let est = CardinalityEstimator::new(&cat, &b);
        // col < 100 over uniform 0..1000 → ~10%, nothing like the 1/3 default.
        let s = est.selectivity(&Expr::lt(c(1), Expr::lit(100i64)));
        assert!((s - 0.1).abs() < 0.05, "col < 100 → {s}");
        // Flipped literal side: 900 < col → ~10%.
        let s = est.selectivity(&Expr::lt(Expr::lit(900i64), c(1)));
        assert!((s - 0.1).abs() < 0.05, "900 < col → {s}");
        // BETWEEN covers exactly the bucket span.
        let s = est.selectivity(&Expr::Between {
            expr: Box::new(c(1)),
            low: Box::new(Expr::lit(250i64)),
            high: Box::new(Expr::lit(750i64)),
        });
        assert!((s - 0.5).abs() < 0.06, "between 250 and 750 → {s}");
    }

    #[test]
    fn histogram_absent_falls_back_to_default() {
        let (cat, b) = setup();
        let est = CardinalityEstimator::new(&cat, &b);
        let s = est.selectivity(&Expr::lt(c(1), Expr::lit(100i64)));
        assert!((s - DEFAULT_RANGE_SEL).abs() < 1e-9);
    }

    #[test]
    fn partition_cardinality_uses_part_rows() {
        let cat = Catalog::new();
        let t = TableOid(1);
        let mut parts = HashMap::new();
        parts.insert(PartOid(1), 9_000);
        parts.insert(PartOid(2), 500);
        parts.insert(PartOid(3), 500);
        cat.set_stats(t, TableStats::new(10_000).with_part_rows(parts));
        let b = ColumnBinding::new();
        let est = CardinalityEstimator::new(&cat, &b);
        // Surviving the small partitions only: 1000 rows, not 2/3 of the table.
        let survivors = [PartOid(2), PartOid(3)];
        assert!((est.partition_cardinality(t, &survivors, 3) - 1_000.0).abs() < 1e-9);
        // Without part stats: uniform fraction.
        let t2 = TableOid(2);
        cat.set_stats(t2, TableStats::new(9_000));
        assert!((est.partition_cardinality(t2, &survivors, 3) - 6_000.0).abs() < 1e-9);
    }
}
