//! PartitionSelector placement — the paper's §2.3 (Algorithms 1–4) with
//! the §2.4 multi-level extension.
//!
//! Input: a physical operator tree whose partitioned-table scans are
//! [`PhysicalPlan::DynamicScan`]s with **no** PartitionSelectors placed
//! yet. Output: the same tree with one PartitionSelector per DynamicScan,
//! placed to maximize partition elimination:
//!
//! * a `Select` contributes its partition-key conjuncts to the spec that
//!   travels through it (Algorithm 3);
//! * a `Join` whose *inner* side defines the scan and whose predicate
//!   constrains the partitioning key plants the (augmented) spec on its
//!   *outer* side — dynamic partition elimination (Algorithm 4);
//! * everything else routes the spec toward the defining subtree, or
//!   enforces it on top when the scan is out of scope (Algorithm 2).
//!
//! Enforcement produces the two shapes of Figure 5: a childless selector
//! under a `Sequence` when the scan is inside the enforced subtree
//! (static selection), or a pass-through selector on top of the subtree
//! whose tuples drive selection (dynamic selection).

use crate::spec::PartSelectorSpec;
use mpp_catalog::Catalog;
use mpp_common::{Error, Result};
use mpp_expr::analysis::{find_preds_on_keys, references_only, split_conjuncts};
use mpp_expr::{ColRef, Expr};
use mpp_plan::PhysicalPlan;
use std::collections::BTreeSet;

/// Top-level driver: build one unfiltered [`PartSelectorSpec`] per
/// DynamicScan in `expr` (the initialization step of Algorithm 1) and run
/// placement. Scans that already have a selector in the tree are left
/// alone, so the pass is idempotent.
pub fn place_partition_selectors(catalog: &Catalog, expr: PhysicalPlan) -> Result<PhysicalPlan> {
    let mut specs = Vec::new();
    let mut existing = Vec::new();
    expr.visit(&mut |p| {
        if let PhysicalPlan::PartitionSelector { part_scan_id, .. } = p {
            existing.push(*part_scan_id);
        }
    });
    collect_specs(catalog, &expr, &mut specs)?;
    specs.retain(|s| !existing.contains(&s.part_scan_id));
    place(expr, specs)
}

fn collect_specs(
    catalog: &Catalog,
    expr: &PhysicalPlan,
    out: &mut Vec<PartSelectorSpec>,
) -> Result<()> {
    let mut err = None;
    expr.visit(&mut |p| {
        if let PhysicalPlan::DynamicScan {
            table,
            table_name,
            part_scan_id,
            output,
            ..
        } = p
        {
            let build = || -> Result<PartSelectorSpec> {
                let tree = catalog.part_tree(*table)?;
                let keys = tree
                    .key_indices()
                    .iter()
                    .map(|&i| {
                        output.get(i).cloned().ok_or_else(|| {
                            Error::InvalidPlan(format!(
                                "DynamicScan of {table_name} lacks key column #{i}"
                            ))
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(PartSelectorSpec::unfiltered(
                    *part_scan_id,
                    *table,
                    table_name.clone(),
                    keys,
                ))
            };
            match build() {
                Ok(s) => out.push(s),
                Err(e) => err = Some(e),
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Algorithm 1: `PlacePartSelectors`.
fn place(expr: PhysicalPlan, input_specs: Vec<PartSelectorSpec>) -> Result<PhysicalPlan> {
    let n_children = expr.children().len();
    let (on_top, child_specs) = compute_part_selectors(&expr, input_specs, n_children);
    let rebuilt = rebuild_with_children(expr, child_specs)?;
    Ok(enforce_part_selectors(on_top, rebuilt))
}

/// Dispatch of `Operator::ComputePartSelectors` (Algorithms 2–4): returns
/// the specs to enforce on top of this operator and the spec lists pushed
/// to each child.
fn compute_part_selectors(
    expr: &PhysicalPlan,
    input_specs: Vec<PartSelectorSpec>,
    n_children: usize,
) -> (Vec<PartSelectorSpec>, Vec<Vec<PartSelectorSpec>>) {
    let mut on_top = Vec::new();
    let mut child_specs: Vec<Vec<PartSelectorSpec>> = vec![Vec::new(); n_children];
    let children: Vec<&PhysicalPlan> = expr.children();
    for spec in input_specs {
        if !expr.has_part_scan_id(spec.part_scan_id) {
            // The scan is out of scope: enforce here (Algorithm 2 line 3).
            on_top.push(spec);
            continue;
        }
        match expr {
            // A DynamicScan resolves its own spec: enforced directly on
            // top, which the Sequence shape of `enforce_part_selectors`
            // turns into Figure 5(a–c).
            PhysicalPlan::DynamicScan { .. } => on_top.push(spec),

            // Algorithm 3: Select contributes its partition-key conjuncts.
            PhysicalPlan::Filter { pred, .. } => {
                let usable = find_preds_on_keys(pred, &spec.part_keys)
                    .and_then(|pl| usable_preds(pl, &spec.part_keys, &BTreeSet::new()));
                let spec = match usable {
                    Some(per_level) => spec.augmented(&per_level),
                    None => spec,
                };
                child_specs[0].push(spec);
            }

            // Algorithm 4: Join.
            PhysicalPlan::HashJoin {
                left_keys,
                right_keys,
                residual,
                left,
                right,
                ..
            } => {
                let pred = join_predicate(left_keys, right_keys, residual);
                route_join_spec(spec, &pred, left, right, &mut child_specs);
            }
            PhysicalPlan::NLJoin {
                pred, left, right, ..
            } => {
                let pred = pred.clone().unwrap_or_else(|| Expr::lit(true));
                route_join_spec(spec, &pred, left, right, &mut child_specs);
            }

            // Algorithm 2 (default): route toward the defining child.
            _ => {
                for (i, child) in children.iter().enumerate() {
                    if child.has_part_scan_id(spec.part_scan_id) {
                        child_specs[i].push(spec);
                        break;
                    }
                }
            }
        }
    }
    (on_top, child_specs)
}

/// Reassemble a join predicate expression from equi-keys and residual.
fn join_predicate(left_keys: &[Expr], right_keys: &[Expr], residual: &Option<Expr>) -> Expr {
    let mut conjuncts: Vec<Expr> = left_keys
        .iter()
        .zip(right_keys)
        .map(|(l, r)| Expr::eq(l.clone(), r.clone()))
        .collect();
    if let Some(r) = residual {
        conjuncts.push(r.clone());
    }
    Expr::and(conjuncts)
}

/// Algorithm 4 lines 7–17: decide which join child receives the spec.
///
/// One refinement beyond the paper's pseudo-code: the §2.3 algorithms
/// assume a motion-free tree, while we also run placement after Motion
/// planning. A pass-through selector on the outer side can only feed a
/// scan on the inner side if no Motion separates the scan from the join
/// (§3.1, Figure 12) — when one does, dynamic elimination is impossible
/// and the spec resolves near the scan instead.
fn route_join_spec(
    spec: PartSelectorSpec,
    join_pred: &Expr,
    left: &PhysicalPlan,
    right: &PhysicalPlan,
    child_specs: &mut [Vec<PartSelectorSpec>],
) {
    let defined_in_outer = left.has_part_scan_id(spec.part_scan_id);
    if defined_in_outer {
        // The scan runs on the outer side, before any inner tuples exist:
        // the selector stays with it.
        child_specs[0].push(spec);
        return;
    }
    let dpe_possible = !motion_above_scan(right, spec.part_scan_id);
    // A spec planted on the outer side becomes a pass-through selector
    // whose input is the outer subtree: its predicates may bind the
    // partitioning keys and outer columns, nothing else.
    let outer_cols: BTreeSet<ColRef> = left.output_cols().into_iter().collect();
    let usable = find_preds_on_keys(join_pred, &spec.part_keys)
        .and_then(|pl| usable_preds(pl, &spec.part_keys, &outer_cols));
    match usable {
        // The join predicate restricts the partitioning key and the inner
        // scan shares the join's process: plant the augmented spec on the
        // outer side — dynamic partition elimination. Filters sitting on
        // the inner path between the join and the scan contribute their
        // key predicates too (e.g. a static predicate on another
        // partitioning level, paper §2.4), since the spec will no longer
        // travel through them.
        Some(per_level) if dpe_possible => {
            let mut spec = spec.augmented(&per_level);
            let inner = inner_path_preds(right, spec.part_scan_id, &spec.part_keys)
                .and_then(|pl| usable_preds(pl, &spec.part_keys, &BTreeSet::new()));
            if let Some(inner_preds) = inner {
                spec = spec.augmented(&inner_preds);
            }
            child_specs[0].push(spec);
        }
        // Otherwise resolve near the scan.
        _ => child_specs[1].push(spec),
    }
}

/// Keep only the extracted conjuncts a selector will be able to evaluate:
/// those referencing nothing but the partitioning keys and `available`
/// input columns. `find_pred_on_key` extracts *any* conjunct mentioning
/// the key — e.g. a disjunction that also references other columns of the
/// scanned table. Such a conjunct derives no interval for the key anyway,
/// and the executor rejects selector predicates it cannot bind, so
/// dropping it loses nothing and keeps the selector well-formed.
fn usable_preds(
    per_level: Vec<Option<Expr>>,
    part_keys: &[ColRef],
    available: &BTreeSet<ColRef>,
) -> Option<Vec<Option<Expr>>> {
    let mut allowed = available.clone();
    allowed.extend(part_keys.iter().cloned());
    let filtered: Vec<Option<Expr>> = per_level
        .into_iter()
        .map(|p| {
            p.and_then(|e| {
                let kept: Vec<Expr> = split_conjuncts(&e)
                    .into_iter()
                    .filter(|c| references_only(c, &allowed))
                    .collect();
                if kept.is_empty() {
                    None
                } else {
                    Some(Expr::and(kept))
                }
            })
        })
        .collect();
    if filtered.iter().all(Option::is_none) {
        None
    } else {
        Some(filtered)
    }
}

/// Partition-key predicates contributed by Filter operators on the path
/// from `root` down to the DynamicScan with the given id.
fn inner_path_preds(
    root: &PhysicalPlan,
    id: mpp_common::PartScanId,
    keys: &[mpp_expr::ColRef],
) -> Option<Vec<Option<Expr>>> {
    let mut acc: Option<Vec<Option<Expr>>> = None;
    let mut node = root;
    loop {
        if let PhysicalPlan::DynamicScan { part_scan_id, .. } = node {
            if *part_scan_id == id {
                return acc;
            }
        }
        if let PhysicalPlan::Filter { pred, .. } = node {
            if let Some(per_level) = find_preds_on_keys(pred, keys) {
                acc = Some(match acc {
                    None => per_level,
                    Some(prev) => prev
                        .into_iter()
                        .zip(per_level)
                        .map(|(a, b)| match (a, b) {
                            (None, x) | (x, None) => x,
                            (Some(a), Some(b)) => Some(mpp_expr::conj(Some(a), b)),
                        })
                        .collect(),
                });
            }
        }
        let children = node.children();
        match children.into_iter().find(|c| c.has_part_scan_id(id)) {
            Some(c) => node = c,
            None => return acc,
        }
    }
}

/// Does any Motion sit on the path from `root` (inclusive) down to the
/// DynamicScan with the given id?
fn motion_above_scan(root: &PhysicalPlan, id: mpp_common::PartScanId) -> bool {
    if let PhysicalPlan::DynamicScan { part_scan_id, .. } = root {
        if *part_scan_id == id {
            return false;
        }
    }
    let is_motion = matches!(root, PhysicalPlan::Motion { .. });
    for c in root.children() {
        if c.has_part_scan_id(id) {
            return is_motion || motion_above_scan(c, id);
        }
    }
    is_motion
}

/// Recurse into children with their assigned spec lists.
fn rebuild_with_children(
    expr: PhysicalPlan,
    mut child_specs: Vec<Vec<PartSelectorSpec>>,
) -> Result<PhysicalPlan> {
    // Take ownership of children, transform, and put them back.
    Ok(match expr {
        PhysicalPlan::Filter { pred, child } => PhysicalPlan::Filter {
            pred,
            child: Box::new(place(*child, child_specs.remove(0))?),
        },
        PhysicalPlan::Project {
            exprs,
            output,
            child,
        } => PhysicalPlan::Project {
            exprs,
            output,
            child: Box::new(place(*child, child_specs.remove(0))?),
        },
        PhysicalPlan::HashJoin {
            join_type,
            left_keys,
            right_keys,
            residual,
            left,
            right,
        } => {
            let l = place(*left, child_specs.remove(0))?;
            let r = place(*right, child_specs.remove(0))?;
            PhysicalPlan::HashJoin {
                join_type,
                left_keys,
                right_keys,
                residual,
                left: Box::new(l),
                right: Box::new(r),
            }
        }
        PhysicalPlan::NLJoin {
            join_type,
            pred,
            left,
            right,
        } => {
            let l = place(*left, child_specs.remove(0))?;
            let r = place(*right, child_specs.remove(0))?;
            PhysicalPlan::NLJoin {
                join_type,
                pred,
                left: Box::new(l),
                right: Box::new(r),
            }
        }
        PhysicalPlan::HashAgg {
            group_by,
            aggs,
            output,
            child,
        } => PhysicalPlan::HashAgg {
            group_by,
            aggs,
            output,
            child: Box::new(place(*child, child_specs.remove(0))?),
        },
        PhysicalPlan::Motion { kind, child } => PhysicalPlan::Motion {
            kind,
            child: Box::new(place(*child, child_specs.remove(0))?),
        },
        PhysicalPlan::Sequence { children } => PhysicalPlan::Sequence {
            children: children
                .into_iter()
                .zip(child_specs)
                .map(|(c, s)| place(c, s))
                .collect::<Result<_>>()?,
        },
        PhysicalPlan::Append { output, children } => PhysicalPlan::Append {
            output,
            children: children
                .into_iter()
                .zip(child_specs)
                .map(|(c, s)| place(c, s))
                .collect::<Result<_>>()?,
        },
        PhysicalPlan::Limit { n, child } => PhysicalPlan::Limit {
            n,
            child: Box::new(place(*child, child_specs.remove(0))?),
        },
        PhysicalPlan::Sort { keys, child } => PhysicalPlan::Sort {
            keys,
            child: Box::new(place(*child, child_specs.remove(0))?),
        },
        PhysicalPlan::InitPlanOids {
            param,
            table,
            key,
            child,
        } => PhysicalPlan::InitPlanOids {
            param,
            table,
            key,
            child: Box::new(place(*child, child_specs.remove(0))?),
        },
        PhysicalPlan::PartitionSelector {
            table,
            table_name,
            part_scan_id,
            part_keys,
            predicates,
            child: Some(child),
        } => PhysicalPlan::PartitionSelector {
            table,
            table_name,
            part_scan_id,
            part_keys,
            predicates,
            child: Some(Box::new(place(*child, child_specs.remove(0))?)),
        },
        PhysicalPlan::Update {
            table,
            target_cols,
            assignments,
            child,
        } => PhysicalPlan::Update {
            table,
            target_cols,
            assignments,
            child: Box::new(place(*child, child_specs.remove(0))?),
        },
        PhysicalPlan::Delete {
            table,
            target_cols,
            child,
        } => PhysicalPlan::Delete {
            table,
            target_cols,
            child: Box::new(place(*child, child_specs.remove(0))?),
        },
        PhysicalPlan::Insert { table, child } => PhysicalPlan::Insert {
            table,
            child: Box::new(place(*child, child_specs.remove(0))?),
        },
        // Leaves.
        leaf => leaf,
    })
}

/// `EnforcePartSelectors`: wrap `expr` with the selectors that must sit on
/// top of it. Two shapes (paper Figure 5):
///
/// * the scan is inside `expr` → `Sequence(childless selector, expr)`, so
///   the selector runs first (static selection);
/// * the scan is elsewhere → pass-through selector with `expr` as child,
///   evaluating its predicates against every tuple flowing by (dynamic
///   selection).
fn enforce_part_selectors(specs: Vec<PartSelectorSpec>, mut expr: PhysicalPlan) -> PhysicalPlan {
    for spec in specs {
        let selector = |child: Option<Box<PhysicalPlan>>| PhysicalPlan::PartitionSelector {
            table: spec.table,
            table_name: spec.table_name.clone(),
            part_scan_id: spec.part_scan_id,
            part_keys: spec.part_keys.clone(),
            predicates: spec.part_predicates.clone(),
            child,
        };
        expr = if expr.has_part_scan_id(spec.part_scan_id) {
            PhysicalPlan::Sequence {
                children: vec![selector(None), expr],
            }
        } else {
            selector(Some(Box::new(expr)))
        };
    }
    expr
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_catalog::builders::{list_level, monthly_range_level, range_parts_equal_width};
    use mpp_catalog::{Distribution, PartTree, TableDesc};
    use mpp_common::{Column, DataType, Datum, PartScanId, Schema};
    use mpp_expr::ColRef;
    use mpp_plan::{explain, JoinType};

    /// Catalog with the paper's running example (Figure 6): `date_dim`
    /// partitioned on month, `sales_fact` partitioned on date_id,
    /// `customer_dim` unpartitioned.
    fn example_catalog() -> Catalog {
        let cat = Catalog::new();
        // date_dim(id, month)
        let dd_schema = Schema::new(vec![
            Column::new("id", DataType::Int32),
            Column::new("month", DataType::Int32),
        ]);
        let dd = cat.allocate_table_oid();
        let first = cat.allocate_part_oids(12);
        cat.register(TableDesc {
            oid: dd,
            name: "date_dim".into(),
            schema: dd_schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: Some(
                range_parts_equal_width(1, Datum::Int32(1), Datum::Int32(13), 12, first).unwrap(),
            ),
        })
        .unwrap();
        // sales_fact(date_id, cust_id, amount)
        let sf_schema = Schema::new(vec![
            Column::new("date_id", DataType::Int32),
            Column::new("cust_id", DataType::Int32),
            Column::new("amount", DataType::Float64),
        ]);
        let sf = cat.allocate_table_oid();
        let first = cat.allocate_part_oids(100);
        cat.register(TableDesc {
            oid: sf,
            name: "sales_fact".into(),
            schema: sf_schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: Some(
                range_parts_equal_width(0, Datum::Int32(0), Datum::Int32(1000), 100, first)
                    .unwrap(),
            ),
        })
        .unwrap();
        // customer_dim(id, state)
        let cd_schema = Schema::new(vec![
            Column::new("id", DataType::Int32),
            Column::new("state", DataType::Utf8),
        ]);
        let cd = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid: cd,
            name: "customer_dim".into(),
            schema: cd_schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: None,
        })
        .unwrap();
        cat
    }

    fn col(id: u32, name: &str) -> ColRef {
        ColRef::new(id, name)
    }

    // Colrefs used by the Figure 8 plan.
    fn d_id() -> ColRef {
        col(1, "d_id")
    }
    fn d_month() -> ColRef {
        col(2, "month")
    }
    fn s_date_id() -> ColRef {
        col(3, "date_id")
    }
    fn s_cust_id() -> ColRef {
        col(4, "cust_id")
    }
    fn s_amount() -> ColRef {
        col(5, "amount")
    }
    fn c_id() -> ColRef {
        col(6, "c_id")
    }
    fn c_state() -> ColRef {
        col(7, "state")
    }

    /// The Figure 8(a) expression tree, before placement.
    fn figure8_input(cat: &Catalog) -> PhysicalPlan {
        let dd = cat.table_by_name("date_dim").unwrap();
        let sf = cat.table_by_name("sales_fact").unwrap();
        let cd = cat.table_by_name("customer_dim").unwrap();
        let date_scan = PhysicalPlan::DynamicScan {
            table: dd.oid,
            table_name: "date_dim".into(),
            part_scan_id: PartScanId(1),
            output: vec![d_id(), d_month()],
            filter: None,
            restrict: None,
        };
        let month_sel = PhysicalPlan::Filter {
            pred: Expr::and(vec![
                Expr::ge(Expr::col(d_month()), Expr::lit(10i32)),
                Expr::le(Expr::col(d_month()), Expr::lit(12i32)),
            ]),
            child: Box::new(date_scan),
        };
        let sales_scan = PhysicalPlan::DynamicScan {
            table: sf.oid,
            table_name: "sales_fact".into(),
            part_scan_id: PartScanId(2),
            output: vec![s_date_id(), s_cust_id(), s_amount()],
            filter: None,
            restrict: None,
        };
        let lower_join = PhysicalPlan::HashJoin {
            join_type: JoinType::Inner,
            left_keys: vec![Expr::col(d_id())],
            right_keys: vec![Expr::col(s_date_id())],
            residual: None,
            left: Box::new(month_sel),
            right: Box::new(sales_scan),
        };
        let cust_sel = PhysicalPlan::Filter {
            pred: Expr::eq(Expr::col(c_state()), Expr::lit("CA")),
            child: Box::new(PhysicalPlan::TableScan {
                table: cd.oid,
                table_name: "customer_dim".into(),
                output: vec![c_id(), c_state()],
                filter: None,
            }),
        };
        PhysicalPlan::HashJoin {
            join_type: JoinType::Inner,
            left_keys: vec![Expr::col(s_cust_id())],
            right_keys: vec![Expr::col(c_id())],
            residual: None,
            left: Box::new(lower_join),
            right: Box::new(cust_sel),
        }
    }

    /// Find the PartitionSelector node for a scan id.
    fn find_selector(plan: &PhysicalPlan, id: u32) -> Option<PhysicalPlan> {
        let mut found = None;
        plan.visit(&mut |p| {
            if let PhysicalPlan::PartitionSelector { part_scan_id, .. } = p {
                if part_scan_id.raw() == id && found.is_none() {
                    found = Some(p.clone());
                }
            }
        });
        found
    }

    #[test]
    fn figure8_placement_end_to_end() {
        let cat = example_catalog();
        let placed = place_partition_selectors(&cat, figure8_input(&cat)).unwrap();
        let text = explain(&placed);

        // Exactly two selectors, one per dynamic scan.
        assert_eq!(placed.count_op("PartitionSelector"), 2);

        // Selector 1 (date_dim) is childless under a Sequence, annotated
        // with the month predicate (static selection, Figure 8(b) bottom).
        let s1 = find_selector(&placed, 1).unwrap();
        match &s1 {
            PhysicalPlan::PartitionSelector {
                predicates, child, ..
            } => {
                assert!(child.is_none(), "selector 1 must be childless:\n{text}");
                assert!(predicates[0].is_some(), "selector 1 carries month pred");
            }
            _ => unreachable!(),
        }

        // Selector 2 (sales_fact) is a pass-through on the OUTER side of
        // the lower join, annotated with the join predicate (dynamic
        // selection, Figure 8(b) middle).
        let s2 = find_selector(&placed, 2).unwrap();
        match &s2 {
            PhysicalPlan::PartitionSelector {
                predicates, child, ..
            } => {
                assert!(child.is_some(), "selector 2 is pass-through:\n{text}");
                let p = predicates[0]
                    .as_ref()
                    .expect("selector 2 carries join pred");
                let cols = mpp_expr::collect_columns(p);
                assert!(cols.contains(&s_date_id()));
                assert!(cols.contains(&d_id()));
            }
            _ => unreachable!(),
        }

        // Structure: the lower join's outer child is selector 2, whose
        // child contains the Sequence with selector 1.
        fn lower_join_outer(p: &PhysicalPlan) -> Option<&PhysicalPlan> {
            let mut found = None;
            fn rec<'a>(p: &'a PhysicalPlan, found: &mut Option<&'a PhysicalPlan>) {
                if let PhysicalPlan::HashJoin { left, right, .. } = p {
                    if right.has_part_scan_id(PartScanId(2)) {
                        *found = Some(left);
                        return;
                    }
                }
                for c in p.children() {
                    rec(c, found);
                }
            }
            rec(p, &mut found);
            found
        }
        let outer = lower_join_outer(&placed).expect("lower join found");
        assert!(
            matches!(outer, PhysicalPlan::PartitionSelector { part_scan_id, .. } if part_scan_id.raw() == 2),
            "selector 2 sits atop the lower join's outer side:\n{text}"
        );

        // And a Sequence pairs selector 1 with its scan.
        assert_eq!(placed.count_op("Sequence"), 1);
    }

    #[test]
    fn full_scan_gets_unfiltered_selector() {
        // Figure 5(a): a bare DynamicScan becomes Sequence(selector, scan)
        // with no predicate.
        let cat = example_catalog();
        let dd = cat.table_by_name("date_dim").unwrap();
        let scan = PhysicalPlan::DynamicScan {
            table: dd.oid,
            table_name: "date_dim".into(),
            part_scan_id: PartScanId(1),
            output: vec![d_id(), d_month()],
            filter: None,
            restrict: None,
        };
        let placed = place_partition_selectors(&cat, scan).unwrap();
        match &placed {
            PhysicalPlan::Sequence { children } => {
                assert_eq!(children.len(), 2);
                match &children[0] {
                    PhysicalPlan::PartitionSelector {
                        predicates, child, ..
                    } => {
                        assert!(child.is_none());
                        assert_eq!(predicates, &vec![None]);
                    }
                    other => panic!("expected selector, got {}", other.name()),
                }
            }
            other => panic!("expected Sequence, got {}", other.name()),
        }
    }

    #[test]
    fn equality_select_pushes_predicate_into_selector() {
        // Figure 5(b): Select(pk=35) over DynamicScan.
        let cat = example_catalog();
        let sf = cat.table_by_name("sales_fact").unwrap();
        let plan = PhysicalPlan::Filter {
            pred: Expr::eq(Expr::col(s_date_id()), Expr::lit(35i32)),
            child: Box::new(PhysicalPlan::DynamicScan {
                table: sf.oid,
                table_name: "sales_fact".into(),
                part_scan_id: PartScanId(1),
                output: vec![s_date_id(), s_cust_id(), s_amount()],
                filter: None,
                restrict: None,
            }),
        };
        let placed = place_partition_selectors(&cat, plan).unwrap();
        let sel = find_selector(&placed, 1).unwrap();
        match sel {
            PhysicalPlan::PartitionSelector { predicates, .. } => {
                let p = predicates[0].as_ref().unwrap();
                assert_eq!(*p, Expr::eq(Expr::col(s_date_id()), Expr::lit(35i32)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn join_without_key_predicate_resolves_on_inner_side() {
        // Join on a NON-partitioning column: no DPE possible; the selector
        // stays next to the scan on the inner side (Algorithm 4 line 12).
        let cat = example_catalog();
        let sf = cat.table_by_name("sales_fact").unwrap();
        let cd = cat.table_by_name("customer_dim").unwrap();
        let plan = PhysicalPlan::HashJoin {
            join_type: JoinType::Inner,
            left_keys: vec![Expr::col(c_id())],
            right_keys: vec![Expr::col(s_cust_id())],
            residual: None,
            left: Box::new(PhysicalPlan::TableScan {
                table: cd.oid,
                table_name: "customer_dim".into(),
                output: vec![c_id(), c_state()],
                filter: None,
            }),
            right: Box::new(PhysicalPlan::DynamicScan {
                table: sf.oid,
                table_name: "sales_fact".into(),
                part_scan_id: PartScanId(1),
                output: vec![s_date_id(), s_cust_id(), s_amount()],
                filter: None,
                restrict: None,
            }),
        };
        let placed = place_partition_selectors(&cat, plan).unwrap();
        // The selector must be inside the join's right subtree, childless.
        match &placed {
            PhysicalPlan::HashJoin { left, right, .. } => {
                assert_eq!(left.count_op("PartitionSelector"), 0);
                assert_eq!(right.count_op("PartitionSelector"), 1);
                assert_eq!(right.count_op("Sequence"), 1);
            }
            other => panic!("expected HashJoin at root, got {}", other.name()),
        }
    }

    #[test]
    fn scan_on_outer_side_keeps_selector_with_scan() {
        // Algorithm 4 line 9: DynamicScan on the OUTER side cannot use the
        // join predicate (inner tuples don't exist yet).
        let cat = example_catalog();
        let sf = cat.table_by_name("sales_fact").unwrap();
        let cd = cat.table_by_name("customer_dim").unwrap();
        let plan = PhysicalPlan::HashJoin {
            join_type: JoinType::Inner,
            left_keys: vec![Expr::col(s_date_id())],
            right_keys: vec![Expr::col(c_id())],
            residual: None,
            left: Box::new(PhysicalPlan::DynamicScan {
                table: sf.oid,
                table_name: "sales_fact".into(),
                part_scan_id: PartScanId(1),
                output: vec![s_date_id(), s_cust_id(), s_amount()],
                filter: None,
                restrict: None,
            }),
            right: Box::new(PhysicalPlan::TableScan {
                table: cd.oid,
                table_name: "customer_dim".into(),
                output: vec![c_id(), c_state()],
                filter: None,
            }),
        };
        let placed = place_partition_selectors(&cat, plan).unwrap();
        match &placed {
            PhysicalPlan::HashJoin { left, right, .. } => {
                assert_eq!(left.count_op("PartitionSelector"), 1);
                assert_eq!(right.count_op("PartitionSelector"), 0);
                // Childless selector with NO predicate (no elimination).
                let sel = find_selector(left, 1).unwrap();
                match sel {
                    PhysicalPlan::PartitionSelector {
                        predicates, child, ..
                    } => {
                        assert!(child.is_none());
                        assert_eq!(predicates, vec![None]);
                    }
                    _ => unreachable!(),
                }
            }
            other => panic!("expected HashJoin at root, got {}", other.name()),
        }
    }

    #[test]
    fn multilevel_select_fills_per_level_predicates() {
        // orders partitioned by (date month, region) — paper Figure 9. A
        // region-only predicate fills only level 2's slot.
        let cat = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("oid", DataType::Int64),
            Column::new("amount", DataType::Float64),
            Column::new("date", DataType::Date),
            Column::new("region", DataType::Utf8),
        ]);
        let oid = cat.allocate_table_oid();
        let first = cat.allocate_part_oids(48);
        let tree = PartTree::new(
            vec![
                monthly_range_level(2, 2012, 1, 24).unwrap(),
                list_level(
                    3,
                    vec![
                        ("r1".into(), vec![Datum::str("Region 1")]),
                        ("r2".into(), vec![Datum::str("Region 2")]),
                    ],
                    false,
                )
                .unwrap(),
            ],
            first,
        )
        .unwrap();
        cat.register(TableDesc {
            oid,
            name: "orders".into(),
            schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: Some(tree),
        })
        .unwrap();

        let o_date = col(11, "date");
        let o_region = col(12, "region");
        let plan = PhysicalPlan::Filter {
            pred: Expr::eq(Expr::col(o_region.clone()), Expr::lit("Region 1")),
            child: Box::new(PhysicalPlan::DynamicScan {
                table: oid,
                table_name: "orders".into(),
                part_scan_id: PartScanId(1),
                output: vec![col(9, "oid"), col(10, "amount"), o_date, o_region.clone()],
                filter: None,
                restrict: None,
            }),
        };
        let placed = place_partition_selectors(&cat, plan).unwrap();
        let sel = find_selector(&placed, 1).unwrap();
        match sel {
            PhysicalPlan::PartitionSelector {
                part_keys,
                predicates,
                ..
            } => {
                assert_eq!(part_keys.len(), 2);
                assert!(predicates[0].is_none(), "no date predicate");
                assert!(predicates[1].is_some(), "region predicate captured");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn placement_is_idempotent() {
        let cat = example_catalog();
        let placed = place_partition_selectors(&cat, figure8_input(&cat)).unwrap();
        let again = place_partition_selectors(&cat, placed.clone()).unwrap();
        assert_eq!(placed, again);
    }

    #[test]
    fn selector_above_groupby_travels_through() {
        // Algorithm 2: GroupBy is not partition-filtering; the spec passes
        // through to the child.
        let cat = example_catalog();
        let sf = cat.table_by_name("sales_fact").unwrap();
        let plan = PhysicalPlan::HashAgg {
            group_by: vec![s_cust_id()],
            aggs: vec![],
            output: vec![s_cust_id()],
            child: Box::new(PhysicalPlan::Filter {
                pred: Expr::lt(Expr::col(s_date_id()), Expr::lit(100i32)),
                child: Box::new(PhysicalPlan::DynamicScan {
                    table: sf.oid,
                    table_name: "sales_fact".into(),
                    part_scan_id: PartScanId(1),
                    output: vec![s_date_id(), s_cust_id(), s_amount()],
                    filter: None,
                    restrict: None,
                }),
            }),
        };
        let placed = place_partition_selectors(&cat, plan).unwrap();
        // The selector ends up below the agg (inside its child), with the
        // filter's predicate.
        match &placed {
            PhysicalPlan::HashAgg { child, .. } => {
                assert_eq!(child.count_op("PartitionSelector"), 1);
                let sel = find_selector(child, 1).unwrap();
                match sel {
                    PhysicalPlan::PartitionSelector { predicates, .. } => {
                        assert!(predicates[0].is_some())
                    }
                    _ => unreachable!(),
                }
            }
            other => panic!("expected HashAgg at root, got {}", other.name()),
        }
    }
}
