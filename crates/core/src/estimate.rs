//! Post-hoc cardinality/cost annotation of physical plans for EXPLAIN.
//!
//! The optimizer costs plans while it builds them but the final
//! [`PhysicalPlan`] carries no estimate fields — deliberately, so the
//! executor and the wire format stay estimate-free. This module re-derives
//! per-operator estimates with one bottom-up walk over the finished plan,
//! using the same [`CardinalityEstimator`] and [`CostModel`] the optimizer
//! used, and keys them by node address so [`mpp_plan::explain_annotated`]
//! can append `(rows=… cost=…)` to each operator line. Costs are
//! cumulative: an operator's number includes its whole subtree, so the
//! root shows the plan's total estimated cost.

use crate::cardinality::{CardinalityEstimator, ColumnBinding};
use crate::cost::CostModel;
use mpp_catalog::Catalog;
use mpp_common::PartScanId;
use mpp_expr::analysis::{derive_interval_set, DerivedSet};
use mpp_expr::Expr;
use mpp_plan::{explain_annotated, MotionKind, PhysicalPlan};
use std::collections::HashMap;

/// Estimated output rows and cumulative (subtree) cost of one operator.
#[derive(Debug, Clone, Copy)]
pub struct NodeEstimate {
    pub rows: f64,
    pub cost: f64,
}

/// Per-node estimates for one plan tree, keyed by node address. Valid
/// only for the tree it was computed from, while that tree is alive.
pub struct PlanEstimates {
    map: HashMap<usize, NodeEstimate>,
}

impl PlanEstimates {
    pub fn get(&self, node: &PhysicalPlan) -> Option<NodeEstimate> {
        self.map
            .get(&(node as *const PhysicalPlan as usize))
            .copied()
    }

    /// The root's estimate (rows the query should return, total cost).
    pub fn root(&self, plan: &PhysicalPlan) -> Option<NodeEstimate> {
        self.get(plan)
    }
}

/// Estimate every operator of `plan` against the catalog's current
/// statistics.
pub fn estimate_plan(plan: &PhysicalPlan, catalog: &Catalog, num_segments: usize) -> PlanEstimates {
    let mut binding = ColumnBinding::new();
    bind_scans(plan, &mut binding);
    let mut selectors = HashMap::new();
    collect_selectors(plan, &mut selectors);
    let walker = Walker {
        catalog,
        est: CardinalityEstimator::new(catalog, &binding),
        cost: CostModel::with_segments(num_segments),
        selectors,
    };
    let mut map = HashMap::new();
    walker.walk(plan, &mut map);
    PlanEstimates { map }
}

/// EXPLAIN text with `(rows=… cost=…)` appended to every operator.
pub fn explain_with_estimates(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    num_segments: usize,
) -> String {
    let ests = estimate_plan(plan, catalog, num_segments);
    explain_annotated(plan, &|node| {
        ests.get(node)
            .map(|e| format!("rows={} cost={}", fmt(e.rows), fmt(e.cost)))
    })
}

/// Compact numeric rendering: integers below a million, otherwise
/// scientific-ish `1.2e7` so wide plans stay readable.
pub fn fmt(x: f64) -> String {
    if x < 1e6 {
        format!("{:.0}", x)
    } else {
        format!("{:.1e}", x)
    }
}

fn bind_scans(plan: &PhysicalPlan, binding: &mut ColumnBinding) {
    match plan {
        PhysicalPlan::TableScan { table, output, .. }
        | PhysicalPlan::PartScan { table, output, .. }
        | PhysicalPlan::DynamicScan { table, output, .. } => {
            for (i, c) in output.iter().enumerate() {
                binding.bind(c.id, *table, i);
            }
        }
        _ => {}
    }
    for c in plan.children() {
        bind_scans(c, binding);
    }
}

/// Selector predicates per scan id, so a DynamicScan's estimate can use
/// the statically derivable part of its paired selector's restriction
/// wherever the selector sits in the tree (sequence sibling or across a
/// join).
fn collect_selectors<'a>(plan: &'a PhysicalPlan, out: &mut HashMap<PartScanId, &'a PhysicalPlan>) {
    if let PhysicalPlan::PartitionSelector { part_scan_id, .. } = plan {
        out.entry(*part_scan_id).or_insert(plan);
    }
    for c in plan.children() {
        collect_selectors(c, out);
    }
}

struct Walker<'a> {
    catalog: &'a Catalog,
    est: CardinalityEstimator<'a>,
    cost: CostModel,
    selectors: HashMap<PartScanId, &'a PhysicalPlan>,
}

impl<'a> Walker<'a> {
    fn walk(&self, plan: &PhysicalPlan, map: &mut HashMap<usize, NodeEstimate>) -> NodeEstimate {
        use PhysicalPlan::*;
        let kids: Vec<NodeEstimate> = plan.children().iter().map(|c| self.walk(c, map)).collect();
        let kid_cost: f64 = kids.iter().map(|k| k.cost).sum();
        let e = match plan {
            TableScan { table, filter, .. } => {
                let base = self.est.table_cardinality(*table);
                NodeEstimate {
                    rows: filtered(base, filter, &self.est),
                    cost: self.cost.table_scan(base),
                }
            }
            PartScan {
                table,
                part,
                filter,
                ..
            } => {
                let stats = self.catalog.stats(*table);
                let base = match stats.rows_in_parts(std::iter::once(part)) {
                    Some(n) => n as f64,
                    None => {
                        let leaves = self
                            .catalog
                            .part_tree(*table)
                            .map(|t| t.num_leaves())
                            .unwrap_or(1);
                        stats.row_count as f64 / leaves.max(1) as f64
                    }
                };
                NodeEstimate {
                    rows: filtered(base, filter, &self.est),
                    cost: self.cost.table_scan(base),
                }
            }
            DynamicScan {
                table,
                part_scan_id,
                filter,
                restrict,
                ..
            } => {
                let (parts, total, base) =
                    self.dynamic_scan_shape(*table, *part_scan_id, restrict.as_deref());
                NodeEstimate {
                    rows: filtered(base, filter, &self.est),
                    cost: self
                        .cost
                        .dynamic_scan(base, total, parts as f64 / total.max(1) as f64),
                }
            }
            PartitionSelector { child, .. } => {
                // Producer only: rows flow through an optional child
                // unchanged; a childless selector produces nothing.
                let rows = if child.is_some() { kids[0].rows } else { 0.0 };
                NodeEstimate {
                    rows,
                    cost: kid_cost + self.cost.partition_selector(rows),
                }
            }
            Sequence { .. } => NodeEstimate {
                rows: kids.last().map(|k| k.rows).unwrap_or(0.0),
                cost: kid_cost,
            },
            Filter { pred, .. } => NodeEstimate {
                rows: (kids[0].rows * self.est.selectivity(pred)).max(1.0),
                cost: kid_cost + self.cost.filter(kids[0].rows),
            },
            Project { .. } => NodeEstimate {
                rows: kids[0].rows,
                cost: kid_cost + self.cost.project(kids[0].rows),
            },
            HashJoin {
                left_keys,
                right_keys,
                residual,
                ..
            } => {
                let mut conjs: Vec<Expr> = left_keys
                    .iter()
                    .zip(right_keys)
                    .map(|(l, r)| Expr::eq(l.clone(), r.clone()))
                    .collect();
                conjs.extend(residual.clone());
                let out = self
                    .est
                    .join_cardinality(kids[0].rows, kids[1].rows, &Expr::and(conjs));
                NodeEstimate {
                    rows: out,
                    cost: kid_cost + self.cost.hash_join(kids[0].rows, kids[1].rows, out),
                }
            }
            NLJoin { pred, .. } => {
                let p = pred.clone().unwrap_or_else(|| Expr::lit(true));
                NodeEstimate {
                    rows: self.est.join_cardinality(kids[0].rows, kids[1].rows, &p),
                    cost: kid_cost + self.cost.nl_join(kids[0].rows, kids[1].rows),
                }
            }
            HashAgg { group_by, .. } => NodeEstimate {
                rows: self.est.agg_cardinality(kids[0].rows, group_by),
                cost: kid_cost + self.cost.hash_agg(kids[0].rows),
            },
            Motion { kind, .. } => {
                let rows = kids[0].rows;
                let move_cost = match kind {
                    MotionKind::Gather | MotionKind::GatherOne => self.cost.gather(rows),
                    MotionKind::Redistribute(_) => self.cost.redistribute(rows),
                    MotionKind::Broadcast => self.cost.broadcast(rows),
                };
                NodeEstimate {
                    rows,
                    cost: kid_cost + move_cost,
                }
            }
            Append { .. } => NodeEstimate {
                rows: kids.iter().map(|k| k.rows).sum(),
                cost: kid_cost,
            },
            Values { rows, .. } => NodeEstimate {
                rows: rows.len() as f64,
                cost: 0.0,
            },
            Limit { n, .. } => NodeEstimate {
                rows: kids[0].rows.min(*n as f64),
                cost: kid_cost,
            },
            // Sort, DML and init-plans pass rows through; their own work
            // is proportional to input and already dominated by it.
            Sort { .. } | Update { .. } | Delete { .. } | Insert { .. } | InitPlanOids { .. } => {
                NodeEstimate {
                    rows: kids.first().map(|k| k.rows).unwrap_or(0.0),
                    cost: kid_cost,
                }
            }
        };
        map.insert(plan as *const PhysicalPlan as usize, e);
        e
    }

    /// (estimated surviving parts, total parts, estimated rows scanned)
    /// for a DynamicScan, using the statically derivable restriction of
    /// its paired selector (parameters unknown at plan time → full set,
    /// exactly as the optimizer derived it).
    fn dynamic_scan_shape(
        &self,
        table: mpp_common::TableOid,
        id: PartScanId,
        restrict: Option<&[mpp_common::PartOid]>,
    ) -> (usize, usize, f64) {
        let stats = self.catalog.stats(table);
        let tree = match self.catalog.part_tree(table) {
            Ok(t) => t,
            Err(_) => return (1, 1, stats.row_count as f64),
        };
        let total = tree.num_leaves();
        let shape = |surviving: Vec<mpp_common::PartOid>| {
            // An adaptive group branch only ever scans the intersection of
            // the selector's output with its group.
            let surviving: Vec<mpp_common::PartOid> = match restrict {
                Some(keep) => surviving
                    .into_iter()
                    .filter(|oid| keep.contains(oid))
                    .collect(),
                None => surviving,
            };
            let rows = match stats.rows_in_parts(surviving.iter()) {
                Some(n) => n as f64,
                None => stats.row_count as f64 * surviving.len() as f64 / total.max(1) as f64,
            };
            (surviving.len().max(1), total.max(1), rows)
        };
        let full = || shape(tree.partition_expansion());
        let Some(PhysicalPlan::PartitionSelector {
            part_keys,
            predicates,
            child,
            ..
        }) = self.selectors.get(&id)
        else {
            return full();
        };
        // A selector with a child eliminates from join rows at run time;
        // nothing is statically derivable here.
        if child.is_some() {
            return full();
        }
        let derived: Vec<DerivedSet> = part_keys
            .iter()
            .zip(predicates)
            .map(|(key, pred)| match pred {
                Some(p) => derive_interval_set(p, key, None),
                None => DerivedSet::full(),
            })
            .collect();
        match tree.select_partitions(&derived) {
            Ok(surviving) => shape(surviving),
            Err(_) => full(),
        }
    }
}

fn filtered(base: f64, filter: &Option<Expr>, est: &CardinalityEstimator) -> f64 {
    match filter {
        Some(f) => (base * est.selectivity(f)).max(1.0),
        None => base.max(1.0),
    }
}
