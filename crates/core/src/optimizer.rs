//! The optimizer pipeline: bound [`LogicalPlan`] → executable
//! [`PhysicalPlan`].
//!
//! Stages:
//!
//! 1. **Normalization** — conjunct-level predicate pushdown, constant
//!    folding.
//! 2. **Physical implementation** — scans (partitioned tables become
//!    [`PhysicalPlan::DynamicScan`]s with fresh `partScanId`s), join
//!    method selection, aggregate implementation.
//! 3. **Distribution planning** — Motion enforcement for co-location,
//!    choosing cost-based between redistribution and broadcast; the
//!    choice is *partition-aware*: a strategy that leaves a partitioned
//!    inner side motion-free keeps dynamic partition elimination possible
//!    and its DynamicScan is costed at the pruned fraction (the Figure 14
//!    trade-off).
//! 4. **PartitionSelector placement** — the §2.3 algorithms
//!    ([`crate::placement`]).
//! 5. **Validation** — §3.1 pairing rules ([`crate::validate`]).
//!
//! The `use_memo` config flag routes pure SELECT queries through the
//! Cascades-style [`crate::memo`] optimizer instead of stages 2–3; both
//! paths share placement and validation.

use crate::cardinality::{CardinalityEstimator, ColumnBinding};
use crate::cost::CostModel;
use crate::placement::place_partition_selectors;
use crate::validate::validate_selector_pairing;
use mpp_catalog::{Catalog, Distribution};
use mpp_common::{Error, PartScanId, Result, TableOid};
use mpp_expr::{collect_columns, simplify, split_conjuncts, ColRef, Expr};
use mpp_plan::{JoinType, LogicalPlan, MotionKind, PhysicalPlan};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU32, Ordering};

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Number of MPP segments (drives Motion costing).
    pub num_segments: usize,
    /// When false, PartitionSelectors are still placed (the machinery is
    /// identical) but carry no predicates, so every partition is scanned —
    /// the "partition selection disabled" configuration of Figure 17.
    pub enable_partition_selection: bool,
    /// Route SELECT queries through the Memo (cost-based, §3.1) instead of
    /// the deterministic pipeline.
    pub use_memo: bool,
}

impl Default for OptimizerConfig {
    fn default() -> OptimizerConfig {
        OptimizerConfig {
            num_segments: 4,
            enable_partition_selection: true,
            use_memo: false,
        }
    }
}

/// Distribution of a plan subtree's output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DistSpec {
    Hashed(Vec<ColRef>),
    Replicated,
    Singleton,
}

/// The optimizer.
pub struct Optimizer {
    catalog: Catalog,
    config: OptimizerConfig,
    cost: CostModel,
    /// Monotonic across this optimizer's lifetime (never reset), so
    /// concurrent `optimize` calls hand out disjoint scan ids.
    next_scan_id: AtomicU32,
}

struct Built {
    plan: PhysicalPlan,
    dist: DistSpec,
    rows: f64,
}

impl Optimizer {
    pub fn new(catalog: Catalog, config: OptimizerConfig) -> Optimizer {
        let cost = CostModel::with_segments(config.num_segments);
        Optimizer::with_cost_model(catalog, config, cost)
    }

    /// An optimizer with explicit cost constants — for cost-model tuning
    /// and ablation experiments.
    pub fn with_cost_model(
        catalog: Catalog,
        config: OptimizerConfig,
        cost: CostModel,
    ) -> Optimizer {
        Optimizer {
            catalog,
            config,
            cost,
            next_scan_id: AtomicU32::new(1),
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    fn fresh_scan_id(&self) -> PartScanId {
        PartScanId(self.next_scan_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Optimize a logical plan into an executable physical plan.
    pub fn optimize(&self, logical: &LogicalPlan) -> Result<PhysicalPlan> {
        let normalized = normalize(logical.clone());
        let mut binding = ColumnBinding::new();
        build_binding(&normalized, &mut binding);

        let built = if self.config.use_memo && !normalized.is_dml() {
            let memo_opt = crate::memo::MemoOptimizer::new(
                &self.catalog,
                &self.cost,
                &binding,
                &self.next_scan_id,
            );
            let res = memo_opt.optimize(&normalized)?;
            Built {
                plan: res.plan,
                dist: res.dist,
                rows: res.rows,
            }
        } else {
            self.build(&normalized, &binding)?
        };

        // Root motion: query results are delivered on the master
        // (segment 0), DML results are counts and need no motion.
        let mut plan = built.plan;
        if !normalized.is_dml() && built.dist != DistSpec::Singleton {
            plan = PhysicalPlan::Motion {
                kind: if built.dist == DistSpec::Replicated {
                    MotionKind::GatherOne
                } else {
                    MotionKind::Gather
                },
                child: Box::new(plan),
            };
        }

        let mut plan = place_partition_selectors(&self.catalog, plan)?;
        if !self.config.enable_partition_selection {
            plan = strip_selector_predicates(plan);
        }
        validate_selector_pairing(&plan)?;
        Ok(plan)
    }

    /// Stage 2+3: deterministic physical implementation with distribution
    /// planning.
    fn build(&self, plan: &LogicalPlan, binding: &ColumnBinding) -> Result<Built> {
        let est = CardinalityEstimator::new(&self.catalog, binding);
        match plan {
            LogicalPlan::Get {
                table,
                table_name,
                output,
            } => {
                let desc = self.catalog.table(*table)?;
                let rows = est.table_cardinality(*table);
                let dist = match &desc.distribution {
                    Distribution::Hashed(cols) => {
                        DistSpec::Hashed(cols.iter().map(|&i| output[i].clone()).collect())
                    }
                    Distribution::Replicated => DistSpec::Replicated,
                    Distribution::Singleton => DistSpec::Singleton,
                };
                let plan = if desc.is_partitioned() {
                    PhysicalPlan::DynamicScan {
                        table: *table,
                        table_name: table_name.clone(),
                        part_scan_id: self.fresh_scan_id(),
                        output: output.clone(),
                        filter: None,
                    }
                } else {
                    PhysicalPlan::TableScan {
                        table: *table,
                        table_name: table_name.clone(),
                        output: output.clone(),
                        filter: None,
                    }
                };
                Ok(Built { plan, dist, rows })
            }

            LogicalPlan::Select { pred, child } => {
                let c = self.build(child, binding)?;
                let rows = (c.rows * est.selectivity(pred)).max(1.0);
                Ok(Built {
                    plan: PhysicalPlan::Filter {
                        pred: pred.clone(),
                        child: Box::new(c.plan),
                    },
                    dist: c.dist,
                    rows,
                })
            }

            LogicalPlan::Project {
                exprs,
                output,
                child,
            } => {
                let c = self.build(child, binding)?;
                // A projection may drop distribution columns; conservative:
                // keep Hashed only if all hash columns survive as pass-through.
                let dist = match &c.dist {
                    DistSpec::Hashed(cols) => {
                        let passthrough: Vec<ColRef> = exprs
                            .iter()
                            .filter_map(|e| match e {
                                Expr::Col(c) => Some(c.clone()),
                                _ => None,
                            })
                            .collect();
                        if cols.iter().all(|c| passthrough.contains(c)) {
                            DistSpec::Hashed(cols.clone())
                        } else {
                            // Rows still live where they were; model as
                            // hashed on an unknown key ≈ keep as-is for
                            // correctness purposes (no co-location claims).
                            DistSpec::Hashed(vec![])
                        }
                    }
                    d => d.clone(),
                };
                Ok(Built {
                    plan: PhysicalPlan::Project {
                        exprs: exprs.clone(),
                        output: output.clone(),
                        child: Box::new(c.plan),
                    },
                    dist,
                    rows: c.rows,
                })
            }

            LogicalPlan::Join {
                join_type,
                pred,
                left,
                right,
            } => self.build_join(*join_type, pred, left, right, binding),

            LogicalPlan::Agg {
                group_by,
                aggs,
                output,
                child,
            } => {
                let c = self.build(child, binding)?;
                let rows = est.agg_cardinality(c.rows, group_by);
                if group_by.is_empty() {
                    // Scalar aggregate: gather everything to one segment.
                    let gathered = match c.dist {
                        DistSpec::Singleton => c.plan,
                        DistSpec::Replicated => PhysicalPlan::Motion {
                            // One copy is enough; a plain Gather from a
                            // replicated child would multiply rows.
                            kind: MotionKind::GatherOne,
                            child: Box::new(c.plan),
                        },
                        _ => PhysicalPlan::Motion {
                            kind: MotionKind::Gather,
                            child: Box::new(c.plan),
                        },
                    };
                    return Ok(Built {
                        plan: PhysicalPlan::HashAgg {
                            group_by: vec![],
                            aggs: aggs.clone(),
                            output: output.clone(),
                            child: Box::new(gathered),
                        },
                        dist: DistSpec::Singleton,
                        rows,
                    });
                }
                // Grouped: co-locate groups. A child hashed on a subset of
                // the group columns already co-locates equal groups.
                let colocated = match &c.dist {
                    DistSpec::Hashed(cols) => {
                        !cols.is_empty() && cols.iter().all(|h| group_by.contains(h))
                    }
                    DistSpec::Singleton => true,
                    DistSpec::Replicated => false,
                };
                let input = if colocated {
                    c.plan
                } else {
                    PhysicalPlan::Motion {
                        kind: MotionKind::Redistribute(group_by.clone()),
                        child: Box::new(c.plan),
                    }
                };
                Ok(Built {
                    plan: PhysicalPlan::HashAgg {
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                        output: output.clone(),
                        child: Box::new(input),
                    },
                    dist: DistSpec::Hashed(group_by.clone()),
                    rows,
                })
            }

            LogicalPlan::Values { rows, output } => Ok(Built {
                plan: PhysicalPlan::Values {
                    rows: rows.clone(),
                    output: output.clone(),
                },
                dist: DistSpec::Singleton,
                rows: rows.len() as f64,
            }),

            LogicalPlan::Limit { n, child } => {
                let c = self.build(child, binding)?;
                let gathered = match c.dist {
                    DistSpec::Singleton => c.plan,
                    DistSpec::Replicated => PhysicalPlan::Motion {
                        kind: MotionKind::GatherOne,
                        child: Box::new(c.plan),
                    },
                    _ => PhysicalPlan::Motion {
                        kind: MotionKind::Gather,
                        child: Box::new(c.plan),
                    },
                };
                Ok(Built {
                    plan: PhysicalPlan::Limit {
                        n: *n,
                        child: Box::new(gathered),
                    },
                    dist: DistSpec::Singleton,
                    rows: c.rows.min(*n as f64),
                })
            }

            LogicalPlan::Sort { keys, child } => {
                let c = self.build(child, binding)?;
                let gathered = match c.dist {
                    DistSpec::Singleton => c.plan,
                    DistSpec::Replicated => PhysicalPlan::Motion {
                        kind: MotionKind::GatherOne,
                        child: Box::new(c.plan),
                    },
                    _ => PhysicalPlan::Motion {
                        kind: MotionKind::Gather,
                        child: Box::new(c.plan),
                    },
                };
                Ok(Built {
                    plan: PhysicalPlan::Sort {
                        keys: keys.clone(),
                        child: Box::new(gathered),
                    },
                    dist: DistSpec::Singleton,
                    rows: c.rows,
                })
            }

            LogicalPlan::Update {
                table,
                target_cols,
                assignments,
                child,
            } => {
                let c = self.build(child, binding)?;
                Ok(Built {
                    plan: PhysicalPlan::Update {
                        table: *table,
                        target_cols: target_cols.clone(),
                        assignments: assignments.clone(),
                        child: Box::new(c.plan),
                    },
                    dist: DistSpec::Singleton,
                    rows: c.rows,
                })
            }
            LogicalPlan::Delete {
                table,
                target_cols,
                child,
            } => {
                let c = self.build(child, binding)?;
                Ok(Built {
                    plan: PhysicalPlan::Delete {
                        table: *table,
                        target_cols: target_cols.clone(),
                        child: Box::new(c.plan),
                    },
                    dist: DistSpec::Singleton,
                    rows: c.rows,
                })
            }
            LogicalPlan::Insert { table, child } => {
                let c = self.build(child, binding)?;
                Ok(Built {
                    plan: PhysicalPlan::Insert {
                        table: *table,
                        child: Box::new(c.plan),
                    },
                    dist: DistSpec::Singleton,
                    rows: c.rows,
                })
            }
        }
    }

    /// Join implementation + distribution strategy selection.
    fn build_join(
        &self,
        join_type: JoinType,
        pred: &Expr,
        left: &LogicalPlan,
        right: &LogicalPlan,
        binding: &ColumnBinding,
    ) -> Result<Built> {
        let est = CardinalityEstimator::new(&self.catalog, binding);
        let l = self.build(left, binding)?;
        let r = self.build(right, binding)?;
        let left_cols: BTreeSet<ColRef> = left.output_cols().into_iter().collect();
        let right_cols: BTreeSet<ColRef> = right.output_cols().into_iter().collect();

        // Split the predicate into equi-key pairs and a residual.
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual = Vec::new();
        for conj in split_conjuncts(pred) {
            if let Expr::Cmp {
                op: mpp_expr::CmpOp::Eq,
                left: a,
                right: b,
            } = &conj
            {
                let a_cols = collect_columns(a);
                let b_cols = collect_columns(b);
                let a_left = a_cols.iter().all(|c| left_cols.contains(c));
                let a_right = a_cols.iter().all(|c| right_cols.contains(c));
                let b_left = b_cols.iter().all(|c| left_cols.contains(c));
                let b_right = b_cols.iter().all(|c| right_cols.contains(c));
                if a_left && b_right && !a_cols.is_empty() && !b_cols.is_empty() {
                    left_keys.push(a.as_ref().clone());
                    right_keys.push(b.as_ref().clone());
                    continue;
                }
                if b_left && a_right && !a_cols.is_empty() && !b_cols.is_empty() {
                    left_keys.push(b.as_ref().clone());
                    right_keys.push(a.as_ref().clone());
                    continue;
                }
            }
            residual.push(conj);
        }
        let residual = if residual.is_empty() {
            None
        } else {
            Some(Expr::and(residual))
        };

        let out_rows = est.join_cardinality(l.rows, r.rows, pred);

        if left_keys.is_empty() {
            // No equi keys: nested loops with a broadcast inner.
            let (r_plan, r_moved) = match &r.dist {
                DistSpec::Replicated => (r.plan, false),
                DistSpec::Singleton if l.dist == DistSpec::Singleton => (r.plan, false),
                _ => (
                    PhysicalPlan::Motion {
                        kind: MotionKind::Broadcast,
                        child: Box::new(r.plan),
                    },
                    true,
                ),
            };
            let _ = r_moved;
            let dist = l.dist.clone();
            return Ok(Built {
                plan: PhysicalPlan::NLJoin {
                    join_type,
                    pred: Some(pred.clone()),
                    left: Box::new(l.plan),
                    right: Box::new(r_plan),
                },
                dist,
                rows: out_rows,
            });
        }

        // Key colref sequences for co-location checks (only simple column
        // keys co-locate).
        let lk_cols: Option<Vec<ColRef>> = left_keys
            .iter()
            .map(|e| match e {
                Expr::Col(c) => Some(c.clone()),
                _ => None,
            })
            .collect();
        let rk_cols: Option<Vec<ColRef>> = right_keys
            .iter()
            .map(|e| match e {
                Expr::Col(c) => Some(c.clone()),
                _ => None,
            })
            .collect();

        let l_colocated = matches!((&l.dist, &lk_cols), (DistSpec::Hashed(h), Some(k)) if h == k)
            || l.dist == DistSpec::Singleton;
        let r_colocated = matches!((&r.dist, &rk_cols), (DistSpec::Hashed(h), Some(k)) if h == k)
            || r.dist == DistSpec::Singleton;

        // Is there a DPE opportunity: the right (inner) side roots a
        // partitioned scan whose partition key is constrained by the join
        // predicate?
        let l_base_rows = base_cardinality(left, &self.catalog);
        let dpe_fraction = self.dpe_fraction(&r.plan, &left_keys, &right_keys, l.rows, l_base_rows);
        let _ = est;

        // Candidate strategies: (left motion, right motion, dpe-possible).
        #[derive(Clone, Copy, PartialEq)]
        enum Mv {
            None,
            Redist,
            Bcast,
        }
        let mut candidates: Vec<(Mv, Mv)> = Vec::new();
        // (a) redistribute to co-locate on keys.
        candidates.push((
            if l_colocated { Mv::None } else { Mv::Redist },
            if r_colocated { Mv::None } else { Mv::Redist },
        ));
        // (b) broadcast right, leave left.
        candidates.push((Mv::None, Mv::Bcast));
        // (c) broadcast left, leave right (inner joins and semi-style
        // joins must not duplicate left rows — only Inner allows this).
        if join_type == JoinType::Inner {
            candidates.push((Mv::Bcast, Mv::None));
        }

        let mut best: Option<(f64, (Mv, Mv))> = None;
        for (ml, mr) in candidates {
            // Redistribution requires simple column keys.
            if ml == Mv::Redist && lk_cols.is_none() {
                continue;
            }
            if mr == Mv::Redist && rk_cols.is_none() {
                continue;
            }
            // Replicated sides must not be moved again.
            if l.dist == DistSpec::Replicated && ml != Mv::None {
                continue;
            }
            if r.dist == DistSpec::Replicated && mr != Mv::None {
                continue;
            }
            // Validity: matching pairs must meet. Either both hashed on
            // keys, or one side replicated/broadcast.
            let l_ok = ml != Mv::None || l_colocated || l.dist == DistSpec::Replicated;
            let r_ok = mr != Mv::None || r_colocated || r.dist == DistSpec::Replicated;
            let joinable = match (ml, mr) {
                (Mv::Bcast, _) | (_, Mv::Bcast) => true,
                _ => {
                    (l_ok && r_ok)
                        || l.dist == DistSpec::Replicated
                        || r.dist == DistSpec::Replicated
                }
            };
            if !joinable {
                continue;
            }
            let mut cost = 0.0;
            cost += match ml {
                Mv::None => 0.0,
                Mv::Redist => self.cost.redistribute(l.rows),
                Mv::Bcast => self.cost.broadcast(l.rows),
            };
            cost += match mr {
                Mv::None => 0.0,
                Mv::Redist => self.cost.redistribute(r.rows),
                Mv::Bcast => self.cost.broadcast(r.rows),
            };
            // DPE saves scan cost on the inner side when it stays in place.
            let scan_fraction = if mr == Mv::None { dpe_fraction } else { 1.0 };
            if let Some((total_parts, scan_rows)) = partitioned_scan_shape(&r.plan, &self.catalog) {
                cost += self
                    .cost
                    .dynamic_scan(scan_rows, total_parts, scan_fraction);
            } else {
                cost += r.rows * 0.0; // child cost already sunk
            }
            cost += self
                .cost
                .hash_join(l.rows, r.rows * scan_fraction, out_rows);
            if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                best = Some((cost, (ml, mr)));
            }
        }
        let (_, (ml, mr)) =
            best.ok_or_else(|| Error::Optimize("no valid distribution strategy for join".into()))?;

        let apply = |plan: PhysicalPlan, mv: Mv, keys: &Option<Vec<ColRef>>| match mv {
            Mv::None => plan,
            Mv::Redist => PhysicalPlan::Motion {
                kind: MotionKind::Redistribute(keys.clone().expect("checked above")),
                child: Box::new(plan),
            },
            Mv::Bcast => PhysicalPlan::Motion {
                kind: MotionKind::Broadcast,
                child: Box::new(plan),
            },
        };
        let out_dist = match (ml, mr) {
            (Mv::Bcast, _) => r.dist.clone(),
            (_, Mv::Bcast) => match ml {
                Mv::Redist => DistSpec::Hashed(lk_cols.clone().unwrap()),
                _ => l.dist.clone(),
            },
            (Mv::Redist, _) | (Mv::None, Mv::Redist) => {
                if ml == Mv::Redist {
                    DistSpec::Hashed(lk_cols.clone().unwrap())
                } else {
                    l.dist.clone()
                }
            }
            (Mv::None, Mv::None) => l.dist.clone(),
        };
        let l_plan = apply(l.plan, ml, &lk_cols);
        let r_plan = apply(r.plan, mr, &rk_cols);
        Ok(Built {
            plan: PhysicalPlan::HashJoin {
                join_type,
                left_keys,
                right_keys,
                residual,
                left: Box::new(l_plan),
                right: Box::new(r_plan),
            },
            dist: out_dist,
            rows: out_rows,
        })
    }

    /// Expected fraction of partitions scanned if dynamic partition
    /// elimination applies to the right (inner) side via these join keys;
    /// 1.0 when no DPE opportunity exists.
    ///
    /// Without per-value histograms we estimate the fraction of the key
    /// domain the outer side still covers by how selective its filters
    /// were: an outer side reduced to 1% of its base rows drives roughly
    /// 1% of the partitions (the uniform-key assumption).
    fn dpe_fraction(
        &self,
        right_plan: &PhysicalPlan,
        left_keys: &[Expr],
        right_keys: &[Expr],
        left_rows: f64,
        left_base_rows: f64,
    ) -> f64 {
        let Some((table, output)) = dynamic_scan_of(right_plan) else {
            return 1.0;
        };
        let Ok(tree) = self.catalog.part_tree(table) else {
            return 1.0;
        };
        let key_cols: Vec<ColRef> = tree
            .key_indices()
            .iter()
            .filter_map(|&i| output.get(i).cloned())
            .collect();
        // Which join key pair hits a partition key?
        for (lk, rk) in left_keys.iter().zip(right_keys) {
            let _ = lk;
            if let Expr::Col(rc) = rk {
                if key_cols.contains(rc) {
                    let parts = tree.num_leaves() as f64;
                    // Two independent upper bounds on the touched
                    // fraction: the outer side's filter selectivity (a
                    // filtered outer covers proportionally less of the
                    // key domain) and its absolute row count (n outer
                    // rows can light up at most n partitions).
                    let ratio = if left_base_rows > 0.0 {
                        left_rows / left_base_rows
                    } else {
                        1.0
                    };
                    let by_count = left_rows / parts;
                    return ratio.min(by_count).clamp(1.0 / parts, 1.0);
                }
            }
        }
        1.0
    }
}

/// Product of the base-table cardinalities in a logical subtree — the
/// "unfiltered" size the estimator's output is compared against when
/// guessing how much of the key domain survives.
fn base_cardinality(plan: &LogicalPlan, catalog: &Catalog) -> f64 {
    let mut product = 1.0f64;
    for t in plan.base_tables() {
        product *= catalog.stats(t).row_count.max(1) as f64;
    }
    product
}

/// If the plan is a (filter over a) DynamicScan, return its table and
/// output columns.
fn dynamic_scan_of(plan: &PhysicalPlan) -> Option<(TableOid, Vec<ColRef>)> {
    match plan {
        PhysicalPlan::DynamicScan { table, output, .. } => Some((*table, output.clone())),
        PhysicalPlan::Filter { child, .. } | PhysicalPlan::Project { child, .. } => {
            dynamic_scan_of(child)
        }
        _ => None,
    }
}

/// Shape of the partitioned scan rooted in the plan, if any: (leaf count,
/// base row estimate).
fn partitioned_scan_shape(plan: &PhysicalPlan, catalog: &Catalog) -> Option<(usize, f64)> {
    let (table, _) = dynamic_scan_of(plan)?;
    let tree = catalog.part_tree(table).ok()?;
    Some((tree.num_leaves(), catalog.stats(table).row_count as f64))
}

/// Remove every selector predicate, disabling partition elimination while
/// keeping the plan shape (Figure 17's "disabled" configuration).
fn strip_selector_predicates(plan: PhysicalPlan) -> PhysicalPlan {
    fn rec(p: PhysicalPlan) -> PhysicalPlan {
        let p = map_children(p, rec);
        if let PhysicalPlan::PartitionSelector {
            table,
            table_name,
            part_scan_id,
            part_keys,
            predicates,
            child,
        } = p
        {
            PhysicalPlan::PartitionSelector {
                table,
                table_name,
                part_scan_id,
                part_keys,
                predicates: vec![None; predicates.len()],
                child,
            }
        } else {
            p
        }
    }
    rec(plan)
}

/// Rebuild a node with transformed children.
pub(crate) fn map_children(
    plan: PhysicalPlan,
    mut f: impl FnMut(PhysicalPlan) -> PhysicalPlan,
) -> PhysicalPlan {
    use PhysicalPlan::*;
    match plan {
        Filter { pred, child } => Filter {
            pred,
            child: Box::new(f(*child)),
        },
        Project {
            exprs,
            output,
            child,
        } => Project {
            exprs,
            output,
            child: Box::new(f(*child)),
        },
        HashJoin {
            join_type,
            left_keys,
            right_keys,
            residual,
            left,
            right,
        } => {
            let l = f(*left);
            let r = f(*right);
            HashJoin {
                join_type,
                left_keys,
                right_keys,
                residual,
                left: Box::new(l),
                right: Box::new(r),
            }
        }
        NLJoin {
            join_type,
            pred,
            left,
            right,
        } => {
            let l = f(*left);
            let r = f(*right);
            NLJoin {
                join_type,
                pred,
                left: Box::new(l),
                right: Box::new(r),
            }
        }
        HashAgg {
            group_by,
            aggs,
            output,
            child,
        } => HashAgg {
            group_by,
            aggs,
            output,
            child: Box::new(f(*child)),
        },
        Motion { kind, child } => Motion {
            kind,
            child: Box::new(f(*child)),
        },
        Sequence { children } => Sequence {
            children: children.into_iter().map(f).collect(),
        },
        Append { output, children } => Append {
            output,
            children: children.into_iter().map(f).collect(),
        },
        Limit { n, child } => Limit {
            n,
            child: Box::new(f(*child)),
        },
        Sort { keys, child } => Sort {
            keys,
            child: Box::new(f(*child)),
        },
        InitPlanOids {
            param,
            table,
            key,
            child,
        } => InitPlanOids {
            param,
            table,
            key,
            child: Box::new(f(*child)),
        },
        PartitionSelector {
            table,
            table_name,
            part_scan_id,
            part_keys,
            predicates,
            child,
        } => PartitionSelector {
            table,
            table_name,
            part_scan_id,
            part_keys,
            predicates,
            child: child.map(|c| Box::new(f(*c))),
        },
        Update {
            table,
            target_cols,
            assignments,
            child,
        } => Update {
            table,
            target_cols,
            assignments,
            child: Box::new(f(*child)),
        },
        Delete {
            table,
            target_cols,
            child,
        } => Delete {
            table,
            target_cols,
            child: Box::new(f(*child)),
        },
        Insert { table, child } => Insert {
            table,
            child: Box::new(f(*child)),
        },
        leaf => leaf,
    }
}

/// Build the colref → base column binding by walking `Get` nodes.
fn build_binding(plan: &LogicalPlan, binding: &mut ColumnBinding) {
    if let LogicalPlan::Get { table, output, .. } = plan {
        for (i, c) in output.iter().enumerate() {
            binding.bind(c.id, *table, i);
        }
    }
    for c in plan.children() {
        build_binding(c, binding);
    }
}

/// Stage 1: normalization — simplify predicates, push conjuncts below
/// joins where their columns allow it, and rewrite equi-semi-joins into
/// inner joins over a distinct build side. The semi-join rewrite is what
/// turns the paper's Figure 4 `IN (SELECT …)` into a join with the fact
/// table on the *inner* side, where Algorithm 4 can apply dynamic
/// partition elimination.
pub fn normalize(plan: LogicalPlan) -> LogicalPlan {
    normalize_opts(plan, true)
}

/// Normalization without the semi-join rewrite — the legacy planner's
/// weaker normalizer (its subquery plans keep the fact table on the outer
/// side, which is why it cannot eliminate partitions there; §4.3).
pub fn normalize_basic(plan: LogicalPlan) -> LogicalPlan {
    normalize_opts(plan, false)
}

fn normalize_opts(plan: LogicalPlan, rewrite_semi: bool) -> LogicalPlan {
    match plan {
        LogicalPlan::Select { pred, child } => {
            let child = normalize_opts(*child, rewrite_semi);
            let pred = simplify(&pred);
            push_select(pred, child)
        }
        LogicalPlan::Join {
            join_type,
            pred,
            left,
            right,
        } => {
            let mut left = normalize_opts(*left, rewrite_semi);
            let mut right = normalize_opts(*right, rewrite_semi);
            let pred = simplify(&pred);
            // Semi-join → inner join over the distinct right side, with
            // the former probe side as the join's inner child.
            if rewrite_semi && join_type == JoinType::LeftSemi {
                if let Some(r_col) = single_right_equi_col(&pred, &left, &right) {
                    let distinct = LogicalPlan::Agg {
                        group_by: vec![r_col.clone()],
                        aggs: vec![],
                        output: vec![r_col],
                        child: Box::new(right),
                    };
                    let out_cols = left.output_cols();
                    let inner = LogicalPlan::Join {
                        join_type: JoinType::Inner,
                        pred,
                        left: Box::new(distinct),
                        right: Box::new(left),
                    };
                    return LogicalPlan::Project {
                        exprs: out_cols.iter().cloned().map(Expr::col).collect(),
                        output: out_cols,
                        child: Box::new(inner),
                    };
                }
            }
            // Single-side conjuncts of an inner/semi join predicate sink
            // into that side.
            let mut keep = Vec::new();
            if matches!(join_type, JoinType::Inner | JoinType::LeftSemi) {
                let lcols: BTreeSet<ColRef> = left.output_cols().into_iter().collect();
                let rcols: BTreeSet<ColRef> = right.output_cols().into_iter().collect();
                for c in split_conjuncts(&pred) {
                    let cols = collect_columns(&c);
                    if !cols.is_empty() && cols.iter().all(|x| lcols.contains(x)) {
                        left = push_select(c, left);
                    } else if !cols.is_empty() && cols.iter().all(|x| rcols.contains(x)) {
                        right = push_select(c, right);
                    } else {
                        keep.push(c);
                    }
                }
            } else {
                keep = split_conjuncts(&pred);
            }
            LogicalPlan::Join {
                join_type,
                pred: Expr::and(keep),
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        LogicalPlan::Project {
            exprs,
            output,
            child,
        } => LogicalPlan::Project {
            exprs,
            output,
            child: Box::new(normalize_opts(*child, rewrite_semi)),
        },
        LogicalPlan::Agg {
            group_by,
            aggs,
            output,
            child,
        } => LogicalPlan::Agg {
            group_by,
            aggs,
            output,
            child: Box::new(normalize_opts(*child, rewrite_semi)),
        },
        LogicalPlan::Limit { n, child } => LogicalPlan::Limit {
            n,
            child: Box::new(normalize_opts(*child, rewrite_semi)),
        },
        LogicalPlan::Sort { keys, child } => LogicalPlan::Sort {
            keys,
            child: Box::new(normalize_opts(*child, rewrite_semi)),
        },
        LogicalPlan::Update {
            table,
            target_cols,
            assignments,
            child,
        } => LogicalPlan::Update {
            table,
            target_cols,
            assignments,
            child: Box::new(normalize_opts(*child, rewrite_semi)),
        },
        LogicalPlan::Delete {
            table,
            target_cols,
            child,
        } => LogicalPlan::Delete {
            table,
            target_cols,
            child: Box::new(normalize_opts(*child, rewrite_semi)),
        },
        LogicalPlan::Insert { table, child } => LogicalPlan::Insert {
            table,
            child: Box::new(normalize_opts(*child, rewrite_semi)),
        },
        leaf => leaf,
    }
}

/// If the predicate is a single equality `l_expr = r_col` with `r_col` a
/// bare column of `right` and the other side referencing only `left`,
/// return that right column (the semi-join rewrite precondition).
fn single_right_equi_col(pred: &Expr, left: &LogicalPlan, right: &LogicalPlan) -> Option<ColRef> {
    let conjuncts = split_conjuncts(pred);
    if conjuncts.len() != 1 {
        return None;
    }
    let Expr::Cmp {
        op: mpp_expr::CmpOp::Eq,
        left: a,
        right: b,
    } = &conjuncts[0]
    else {
        return None;
    };
    let lcols: BTreeSet<ColRef> = left.output_cols().into_iter().collect();
    let rcols: BTreeSet<ColRef> = right.output_cols().into_iter().collect();
    let a_cols = collect_columns(a);
    match (a.as_ref(), b.as_ref()) {
        (_, Expr::Col(rc))
            if rcols.contains(rc)
                && !a_cols.is_empty()
                && a_cols.iter().all(|c| lcols.contains(c)) =>
        {
            Some(rc.clone())
        }
        (Expr::Col(rc), _)
            if rcols.contains(rc) && {
                let b_cols = collect_columns(b);
                !b_cols.is_empty() && b_cols.iter().all(|c| lcols.contains(c))
            } =>
        {
            Some(rc.clone())
        }
        _ => None,
    }
}

/// Push a selection's conjuncts as deep as their column references allow.
fn push_select(pred: Expr, child: LogicalPlan) -> LogicalPlan {
    match child {
        LogicalPlan::Join {
            join_type,
            pred: jpred,
            left,
            right,
        } => {
            let lcols: BTreeSet<ColRef> = left.output_cols().into_iter().collect();
            let rcols: BTreeSet<ColRef> = right.output_cols().into_iter().collect();
            let mut left = *left;
            let mut right = *right;
            let mut keep = Vec::new();
            for c in split_conjuncts(&pred) {
                let cols = collect_columns(&c);
                let all_left = !cols.is_empty() && cols.iter().all(|x| lcols.contains(x));
                let all_right = !cols.is_empty() && cols.iter().all(|x| rcols.contains(x));
                match join_type {
                    // Above an inner join, either side accepts its own
                    // conjuncts.
                    JoinType::Inner if all_left => left = push_select(c, left),
                    JoinType::Inner if all_right => right = push_select(c, right),
                    // Semi/anti/outer joins output left columns only (or
                    // null-extend the right), so only left-side pushes are
                    // safe.
                    JoinType::LeftSemi | JoinType::LeftAnti | JoinType::LeftOuter if all_left => {
                        left = push_select(c, left)
                    }
                    _ => keep.push(c),
                }
            }
            // For inner joins the remaining conjuncts fold into the join
            // predicate itself (they may be equi-join keys); for other
            // join types they must stay above.
            if join_type == JoinType::Inner {
                let mut jconj = split_conjuncts(&jpred);
                jconj.extend(keep);
                LogicalPlan::Join {
                    join_type,
                    pred: simplify(&Expr::and(jconj)),
                    left: Box::new(left),
                    right: Box::new(right),
                }
            } else {
                let joined = LogicalPlan::Join {
                    join_type,
                    pred: jpred,
                    left: Box::new(left),
                    right: Box::new(right),
                };
                wrap_select(keep, joined)
            }
        }
        LogicalPlan::Select { pred: inner, child } => {
            // Merge adjacent selects, then retry the push with the union.
            let mut conj = split_conjuncts(&pred);
            conj.extend(split_conjuncts(&inner));
            push_select(Expr::and(conj), *child)
        }
        other => wrap_select(split_conjuncts(&pred), other),
    }
}

fn wrap_select(conjuncts: Vec<Expr>, child: LogicalPlan) -> LogicalPlan {
    if conjuncts.is_empty() {
        child
    } else {
        LogicalPlan::Select {
            pred: Expr::and(conjuncts),
            child: Box::new(child),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_catalog::builders::range_parts_equal_width;
    use mpp_catalog::{TableDesc, TableStats};
    use mpp_common::{Column, DataType, Datum, Schema};
    use mpp_plan::explain;

    /// R(a, b) hash-distributed on a, partitioned on b into `parts` ranges
    /// over [0, parts*10); S(a, b) hash-distributed on a, unpartitioned.
    fn rs_catalog(parts: u32, r_rows: u64, s_rows: u64) -> (Catalog, TableOid, TableOid) {
        let cat = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("b", DataType::Int32),
        ]);
        let r = cat.allocate_table_oid();
        let first = cat.allocate_part_oids(parts);
        cat.register(TableDesc {
            oid: r,
            name: "r".into(),
            schema: schema.clone(),
            distribution: Distribution::Hashed(vec![0]),
            partitioning: Some(
                range_parts_equal_width(
                    1,
                    Datum::Int32(0),
                    Datum::Int32(parts as i32 * 10),
                    parts as usize,
                    first,
                )
                .unwrap(),
            ),
        })
        .unwrap();
        cat.set_stats(r, TableStats::new(r_rows));
        let s = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid: s,
            name: "s".into(),
            schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: None,
        })
        .unwrap();
        cat.set_stats(s, TableStats::new(s_rows));
        (cat, r, s)
    }

    fn get(cat: &Catalog, oid: TableOid, ids: &[u32]) -> LogicalPlan {
        let desc = cat.table(oid).unwrap();
        LogicalPlan::Get {
            table: oid,
            table_name: desc.name.clone(),
            output: desc
                .schema
                .columns()
                .iter()
                .zip(ids)
                .map(|(c, &id)| ColRef::new(id, c.name.as_str()))
                .collect(),
        }
    }

    #[test]
    fn simple_selection_query_plans_with_static_selector() {
        let (cat, r, _) = rs_catalog(10, 100_000, 100);
        let opt = Optimizer::new(cat.clone(), OptimizerConfig::default());
        let rb = ColRef::new(2, "b");
        let logical = LogicalPlan::Select {
            pred: Expr::lt(Expr::col(rb), Expr::lit(30i32)),
            child: Box::new(get(&cat, r, &[1, 2])),
        };
        let plan = opt.optimize(&logical).unwrap();
        let text = explain(&plan);
        assert_eq!(plan.count_op("PartitionSelector"), 1, "{text}");
        assert_eq!(plan.count_op("DynamicScan"), 1, "{text}");
        assert_eq!(plan.count_op("Sequence"), 1, "{text}");
        // Root gather present.
        assert!(text.starts_with("Gather Motion"), "{text}");
        validate_selector_pairing(&plan).unwrap();
    }

    #[test]
    fn join_on_partition_key_produces_dpe_plan() {
        // select * from R, S where R.b = S.b and S.a < 100  (paper §4.4.2)
        let (cat, r, s) = rs_catalog(100, 1_000_000, 1_000);
        let opt = Optimizer::new(cat.clone(), OptimizerConfig::default());
        let (ra, rb) = (ColRef::new(1, "a"), ColRef::new(2, "b"));
        let (sa, sb) = (ColRef::new(3, "a"), ColRef::new(4, "b"));
        let _ = ra;
        let logical = LogicalPlan::Select {
            pred: Expr::and(vec![
                Expr::eq(Expr::col(rb), Expr::col(sb.clone())),
                Expr::lt(Expr::col(sa), Expr::lit(100i32)),
            ]),
            child: Box::new(LogicalPlan::Join {
                join_type: JoinType::Inner,
                // Keep S as the join's outer side so the DynamicScan of R
                // sits on the inner side (the Figure 5(d) shape).
                pred: Expr::lit(true),
                left: Box::new(get(&cat, s, &[3, 4])),
                right: Box::new(get(&cat, r, &[1, 2])),
            }),
        };
        let plan = opt.optimize(&logical).unwrap();
        let text = explain(&plan);
        // The selector is a pass-through on the outer side with the join
        // predicate — dynamic partition elimination.
        assert_eq!(plan.count_op("PartitionSelector"), 1, "{text}");
        let mut dpe = false;
        plan.visit(&mut |p| {
            if let PhysicalPlan::PartitionSelector {
                child: Some(_),
                predicates,
                ..
            } = p
            {
                if predicates[0].is_some() {
                    dpe = true;
                }
            }
        });
        assert!(dpe, "expected pass-through DPE selector:\n{text}");
        validate_selector_pairing(&plan).unwrap();
    }

    #[test]
    fn disabling_partition_selection_strips_predicates() {
        let (cat, r, _) = rs_catalog(10, 10_000, 100);
        let opt = Optimizer::new(
            cat.clone(),
            OptimizerConfig {
                enable_partition_selection: false,
                ..OptimizerConfig::default()
            },
        );
        let rb = ColRef::new(2, "b");
        let logical = LogicalPlan::Select {
            pred: Expr::lt(Expr::col(rb), Expr::lit(30i32)),
            child: Box::new(get(&cat, r, &[1, 2])),
        };
        let plan = opt.optimize(&logical).unwrap();
        plan.visit(&mut |p| {
            if let PhysicalPlan::PartitionSelector { predicates, .. } = p {
                assert!(predicates.iter().all(Option::is_none));
            }
        });
    }

    #[test]
    fn normalization_pushes_predicates_below_join() {
        let (cat, r, s) = rs_catalog(10, 1000, 1000);
        let (rb, sa) = (ColRef::new(2, "b"), ColRef::new(3, "a"));
        let logical = LogicalPlan::Select {
            pred: Expr::and(vec![
                Expr::lt(Expr::col(rb.clone()), Expr::lit(30i32)),
                Expr::eq(Expr::col(sa.clone()), Expr::lit(5i32)),
            ]),
            child: Box::new(LogicalPlan::Join {
                join_type: JoinType::Inner,
                pred: Expr::eq(Expr::col(ColRef::new(1, "a")), Expr::col(sa.clone())),
                left: Box::new(get(&cat, r, &[1, 2])),
                right: Box::new(get(&cat, s, &[3, 4])),
            }),
        };
        let n = normalize(logical);
        // Both conjuncts sank below the join.
        match &n {
            LogicalPlan::Join { left, right, .. } => {
                assert!(matches!(left.as_ref(), LogicalPlan::Select { .. }));
                assert!(matches!(right.as_ref(), LogicalPlan::Select { .. }));
            }
            other => panic!("expected Join at top, got {}", other.name()),
        }
    }

    #[test]
    fn scalar_agg_gathers_before_aggregating() {
        let (cat, r, _) = rs_catalog(10, 1000, 100);
        let opt = Optimizer::new(cat.clone(), OptimizerConfig::default());
        let out = ColRef::new(50, "cnt");
        let logical = LogicalPlan::Agg {
            group_by: vec![],
            aggs: vec![mpp_plan::AggCall::count_star()],
            output: vec![out],
            child: Box::new(get(&cat, r, &[1, 2])),
        };
        let plan = opt.optimize(&logical).unwrap();
        let text = explain(&plan);
        // Singleton output: no root gather on top; Gather below the agg.
        assert!(text.contains("HashAgg"), "{text}");
        assert!(text.contains("Gather Motion"), "{text}");
        assert!(
            !text.starts_with("Gather"),
            "agg output is already singleton:\n{text}"
        );
    }

    #[test]
    fn grouped_agg_redistributes_when_not_colocated() {
        let (cat, r, _) = rs_catalog(10, 1000, 100);
        let opt = Optimizer::new(cat.clone(), OptimizerConfig::default());
        // Group by b, but r is distributed on a → redistribute.
        let rb = ColRef::new(2, "b");
        let logical = LogicalPlan::Agg {
            group_by: vec![rb.clone()],
            aggs: vec![mpp_plan::AggCall::count_star()],
            output: vec![rb, ColRef::new(50, "cnt")],
            child: Box::new(get(&cat, r, &[1, 2])),
        };
        let plan = opt.optimize(&logical).unwrap();
        let text = explain(&plan);
        assert!(text.contains("Redistribute Motion"), "{text}");
    }

    #[test]
    fn grouped_agg_stays_local_when_colocated() {
        let (cat, r, _) = rs_catalog(10, 1000, 100);
        let opt = Optimizer::new(cat.clone(), OptimizerConfig::default());
        // Group by a = the distribution key: no redistribute needed.
        let ra = ColRef::new(1, "a");
        let logical = LogicalPlan::Agg {
            group_by: vec![ra.clone()],
            aggs: vec![mpp_plan::AggCall::count_star()],
            output: vec![ra, ColRef::new(50, "cnt")],
            child: Box::new(get(&cat, r, &[1, 2])),
        };
        let plan = opt.optimize(&logical).unwrap();
        let text = explain(&plan);
        assert!(!text.contains("Redistribute Motion"), "{text}");
    }
}
