//! The optimizer pipeline: bound [`LogicalPlan`] → executable
//! [`PhysicalPlan`].
//!
//! Stages:
//!
//! 1. **Normalization** — conjunct-level predicate pushdown, constant
//!    folding.
//! 2. **Physical implementation** — scans (partitioned tables become
//!    [`PhysicalPlan::DynamicScan`]s with fresh `partScanId`s), join
//!    method selection, aggregate implementation.
//! 3. **Distribution planning** — Motion enforcement for co-location,
//!    choosing cost-based between redistribution and broadcast; the
//!    choice is *partition-aware*: a strategy that leaves a partitioned
//!    inner side motion-free keeps dynamic partition elimination possible
//!    and its DynamicScan is costed at the pruned fraction (the Figure 14
//!    trade-off).
//! 4. **PartitionSelector placement** — the §2.3 algorithms
//!    ([`crate::placement`]).
//! 5. **Validation** — §3.1 pairing rules ([`crate::validate`]).
//!
//! The `use_memo` config flag routes pure SELECT queries through the
//! Cascades-style [`crate::memo`] optimizer instead of stages 2–3; both
//! paths share placement and validation.

use crate::cardinality::{CardinalityEstimator, ColumnBinding};
use crate::cost::CostModel;
use crate::placement::place_partition_selectors;
use crate::validate::validate_selector_pairing;
use mpp_catalog::{Catalog, Distribution};
use mpp_common::{Error, PartOid, PartScanId, Result, TableOid};
use mpp_expr::analysis::{derive_interval_set, DerivedSet};
use mpp_expr::interval::{HighBound, LowBound};
use mpp_expr::{collect_columns, simplify, split_conjuncts, ColRef, Expr, IntervalSet};
use mpp_plan::{JoinType, LogicalPlan, MotionKind, PhysicalPlan};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU32, Ordering};

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Number of MPP segments (drives Motion costing).
    pub num_segments: usize,
    /// When false, PartitionSelectors are still placed (the machinery is
    /// identical) but carry no predicates, so every partition is scanned —
    /// the "partition selection disabled" configuration of Figure 17.
    pub enable_partition_selection: bool,
    /// Route SELECT queries through the Memo (cost-based, §3.1) instead of
    /// the deterministic pipeline.
    pub use_memo: bool,
    /// Cost-based join-order search: flatten inner-join subtrees and run a
    /// DPsize enumeration over the relation set (greedy above
    /// [`MAX_DP_RELATIONS`]). When false, joins keep their syntactic
    /// (left-deep, as-written) order — the baseline the join-order
    /// benchmark compares against.
    pub join_order_search: bool,
    /// Adaptive per-partition plan specialization: when the surviving
    /// partitions of a join's inner DynamicScan are strongly skewed (one
    /// heavy partition dominating the per-partition row counts from
    /// ANALYZE), cost and emit a *different* join strategy per partition
    /// group — e.g. leave the heavy group in place behind a tiny
    /// broadcast outer while redistributing only the light remainder —
    /// stitched back together with an `Append` whose branches each
    /// restrict the scan to their own group.
    pub adaptive_plans: bool,
}

impl Default for OptimizerConfig {
    fn default() -> OptimizerConfig {
        OptimizerConfig {
            num_segments: 4,
            enable_partition_selection: true,
            use_memo: false,
            join_order_search: true,
            adaptive_plans: true,
        }
    }
}

/// DPsize enumerates all 3^n subset splits; beyond this relation count the
/// enumerator switches to a greedy (cheapest-pair-first) heuristic.
pub const MAX_DP_RELATIONS: usize = 10;

/// Distribution of a plan subtree's output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DistSpec {
    Hashed(Vec<ColRef>),
    Replicated,
    Singleton,
}

/// The optimizer.
pub struct Optimizer {
    catalog: Catalog,
    config: OptimizerConfig,
    cost: CostModel,
    /// Monotonic across this optimizer's lifetime (never reset), so
    /// concurrent `optimize` calls hand out disjoint scan ids.
    next_scan_id: AtomicU32,
}

struct Built {
    plan: PhysicalPlan,
    dist: DistSpec,
    rows: f64,
}

impl Optimizer {
    pub fn new(catalog: Catalog, config: OptimizerConfig) -> Optimizer {
        let cost = CostModel::with_segments(config.num_segments);
        Optimizer::with_cost_model(catalog, config, cost)
    }

    /// An optimizer with explicit cost constants — for cost-model tuning
    /// and ablation experiments.
    pub fn with_cost_model(
        catalog: Catalog,
        config: OptimizerConfig,
        cost: CostModel,
    ) -> Optimizer {
        Optimizer {
            catalog,
            config,
            cost,
            next_scan_id: AtomicU32::new(1),
        }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Toggle adaptive per-partition plan specialization. A runtime knob
    /// (the differential harness flips it per cell), so it gets a
    /// dedicated mutator rather than rebuilding the optimizer: every
    /// other config field feeds derived state (the cost model's segment
    /// count) and must stay fixed.
    pub fn set_adaptive_plans(&mut self, on: bool) {
        self.config.adaptive_plans = on;
    }

    fn fresh_scan_id(&self) -> PartScanId {
        PartScanId(self.next_scan_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Optimize a logical plan into an executable physical plan.
    pub fn optimize(&self, logical: &LogicalPlan) -> Result<PhysicalPlan> {
        let normalized = normalize(logical.clone());
        let mut binding = ColumnBinding::new();
        build_binding(&normalized, &mut binding);

        let built = if self.config.use_memo && !normalized.is_dml() {
            let memo_opt = crate::memo::MemoOptimizer::new(
                &self.catalog,
                &self.cost,
                &binding,
                &self.next_scan_id,
            );
            let res = memo_opt.optimize(&normalized)?;
            Built {
                plan: res.plan,
                dist: res.dist,
                rows: res.rows,
            }
        } else {
            self.build(&normalized, &binding)?
        };

        // Root motion: query results are delivered on the master
        // (segment 0), DML results are counts and need no motion.
        let mut plan = built.plan;
        if !normalized.is_dml() && built.dist != DistSpec::Singleton {
            plan = PhysicalPlan::Motion {
                kind: if built.dist == DistSpec::Replicated {
                    MotionKind::GatherOne
                } else {
                    MotionKind::Gather
                },
                child: Box::new(plan),
            };
        }

        let mut plan = place_partition_selectors(&self.catalog, plan)?;
        if !self.config.enable_partition_selection {
            plan = strip_selector_predicates(plan);
        }
        validate_selector_pairing(&plan)?;
        Ok(plan)
    }

    /// Stage 2+3: deterministic physical implementation with distribution
    /// planning.
    fn build(&self, plan: &LogicalPlan, binding: &ColumnBinding) -> Result<Built> {
        let est = CardinalityEstimator::new(&self.catalog, binding);
        match plan {
            LogicalPlan::Get {
                table,
                table_name,
                output,
            } => {
                let desc = self.catalog.table(*table)?;
                let rows = est.table_cardinality(*table);
                let dist = match &desc.distribution {
                    Distribution::Hashed(cols) => {
                        DistSpec::Hashed(cols.iter().map(|&i| output[i].clone()).collect())
                    }
                    Distribution::Replicated => DistSpec::Replicated,
                    Distribution::Singleton => DistSpec::Singleton,
                };
                let plan = if desc.is_partitioned() {
                    PhysicalPlan::DynamicScan {
                        table: *table,
                        table_name: table_name.clone(),
                        part_scan_id: self.fresh_scan_id(),
                        output: output.clone(),
                        filter: None,
                        restrict: None,
                    }
                } else {
                    PhysicalPlan::TableScan {
                        table: *table,
                        table_name: table_name.clone(),
                        output: output.clone(),
                        filter: None,
                    }
                };
                Ok(Built { plan, dist, rows })
            }

            LogicalPlan::Select { pred, child } => {
                let c = self.build(child, binding)?;
                let mut rows = (c.rows * est.selectivity(pred)).max(1.0);
                // Partition-aware refinement: a predicate that statically
                // eliminates partitions caps the estimate at the rows
                // living in the surviving partitions (per-partition counts
                // from ANALYZE when available).
                if let LogicalPlan::Get { table, output, .. } = child.as_ref() {
                    if let Some(cap) = self.statically_pruned_rows(*table, output, pred, &est) {
                        rows = rows.min(cap.max(1.0));
                    }
                }
                Ok(Built {
                    plan: PhysicalPlan::Filter {
                        pred: pred.clone(),
                        child: Box::new(c.plan),
                    },
                    dist: c.dist,
                    rows,
                })
            }

            LogicalPlan::Project {
                exprs,
                output,
                child,
            } => {
                let c = self.build(child, binding)?;
                // A projection may drop distribution columns; conservative:
                // keep Hashed only if all hash columns survive as pass-through.
                let dist = match &c.dist {
                    DistSpec::Hashed(cols) => {
                        let passthrough: Vec<ColRef> = exprs
                            .iter()
                            .filter_map(|e| match e {
                                Expr::Col(c) => Some(c.clone()),
                                _ => None,
                            })
                            .collect();
                        if cols.iter().all(|c| passthrough.contains(c)) {
                            DistSpec::Hashed(cols.clone())
                        } else {
                            // Rows still live where they were; model as
                            // hashed on an unknown key ≈ keep as-is for
                            // correctness purposes (no co-location claims).
                            DistSpec::Hashed(vec![])
                        }
                    }
                    d => d.clone(),
                };
                Ok(Built {
                    plan: PhysicalPlan::Project {
                        exprs: exprs.clone(),
                        output: output.clone(),
                        child: Box::new(c.plan),
                    },
                    dist,
                    rows: c.rows,
                })
            }

            LogicalPlan::Join {
                join_type,
                pred,
                left,
                right,
            } => self.build_join(*join_type, pred, left, right, binding),

            LogicalPlan::Agg {
                group_by,
                aggs,
                output,
                child,
            } => {
                let c = self.build(child, binding)?;
                let rows = est.agg_cardinality(c.rows, group_by);
                if group_by.is_empty() {
                    // Scalar aggregate: gather everything to one segment.
                    let gathered = match c.dist {
                        DistSpec::Singleton => c.plan,
                        DistSpec::Replicated => PhysicalPlan::Motion {
                            // One copy is enough; a plain Gather from a
                            // replicated child would multiply rows.
                            kind: MotionKind::GatherOne,
                            child: Box::new(c.plan),
                        },
                        _ => PhysicalPlan::Motion {
                            kind: MotionKind::Gather,
                            child: Box::new(c.plan),
                        },
                    };
                    return Ok(Built {
                        plan: PhysicalPlan::HashAgg {
                            group_by: vec![],
                            aggs: aggs.clone(),
                            output: output.clone(),
                            child: Box::new(gathered),
                        },
                        dist: DistSpec::Singleton,
                        rows,
                    });
                }
                // Grouped: co-locate groups. A child hashed on a subset of
                // the group columns already co-locates equal groups.
                let colocated = match &c.dist {
                    DistSpec::Hashed(cols) => {
                        !cols.is_empty() && cols.iter().all(|h| group_by.contains(h))
                    }
                    DistSpec::Singleton => true,
                    DistSpec::Replicated => false,
                };
                let input = if colocated {
                    c.plan
                } else {
                    PhysicalPlan::Motion {
                        kind: MotionKind::Redistribute(group_by.clone()),
                        child: Box::new(c.plan),
                    }
                };
                Ok(Built {
                    plan: PhysicalPlan::HashAgg {
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                        output: output.clone(),
                        child: Box::new(input),
                    },
                    dist: DistSpec::Hashed(group_by.clone()),
                    rows,
                })
            }

            LogicalPlan::Values { rows, output } => Ok(Built {
                plan: PhysicalPlan::Values {
                    rows: rows.clone(),
                    output: output.clone(),
                },
                dist: DistSpec::Singleton,
                rows: rows.len() as f64,
            }),

            LogicalPlan::Limit { n, child } => {
                let c = self.build(child, binding)?;
                let gathered = match c.dist {
                    DistSpec::Singleton => c.plan,
                    DistSpec::Replicated => PhysicalPlan::Motion {
                        kind: MotionKind::GatherOne,
                        child: Box::new(c.plan),
                    },
                    _ => PhysicalPlan::Motion {
                        kind: MotionKind::Gather,
                        child: Box::new(c.plan),
                    },
                };
                Ok(Built {
                    plan: PhysicalPlan::Limit {
                        n: *n,
                        child: Box::new(gathered),
                    },
                    dist: DistSpec::Singleton,
                    rows: c.rows.min(*n as f64),
                })
            }

            LogicalPlan::Sort { keys, child } => {
                let c = self.build(child, binding)?;
                let gathered = match c.dist {
                    DistSpec::Singleton => c.plan,
                    DistSpec::Replicated => PhysicalPlan::Motion {
                        kind: MotionKind::GatherOne,
                        child: Box::new(c.plan),
                    },
                    _ => PhysicalPlan::Motion {
                        kind: MotionKind::Gather,
                        child: Box::new(c.plan),
                    },
                };
                Ok(Built {
                    plan: PhysicalPlan::Sort {
                        keys: keys.clone(),
                        child: Box::new(gathered),
                    },
                    dist: DistSpec::Singleton,
                    rows: c.rows,
                })
            }

            LogicalPlan::Update {
                table,
                target_cols,
                assignments,
                child,
            } => {
                let c = self.build(child, binding)?;
                Ok(Built {
                    plan: PhysicalPlan::Update {
                        table: *table,
                        target_cols: target_cols.clone(),
                        assignments: assignments.clone(),
                        child: Box::new(c.plan),
                    },
                    dist: DistSpec::Singleton,
                    rows: c.rows,
                })
            }
            LogicalPlan::Delete {
                table,
                target_cols,
                child,
            } => {
                let c = self.build(child, binding)?;
                Ok(Built {
                    plan: PhysicalPlan::Delete {
                        table: *table,
                        target_cols: target_cols.clone(),
                        child: Box::new(c.plan),
                    },
                    dist: DistSpec::Singleton,
                    rows: c.rows,
                })
            }
            LogicalPlan::Insert { table, child } => {
                let c = self.build(child, binding)?;
                Ok(Built {
                    plan: PhysicalPlan::Insert {
                        table: *table,
                        child: Box::new(c.plan),
                    },
                    dist: DistSpec::Singleton,
                    rows: c.rows,
                })
            }
        }
    }

    /// Join implementation: order enumeration (inner joins) + distribution
    /// strategy selection.
    fn build_join(
        &self,
        join_type: JoinType,
        pred: &Expr,
        left: &LogicalPlan,
        right: &LogicalPlan,
        binding: &ColumnBinding,
    ) -> Result<Built> {
        if join_type == JoinType::Inner && self.config.join_order_search {
            // Flatten the maximal inner-join subtree rooted here into its
            // relation leaves and pooled conjuncts; with three or more
            // relations the order is worth searching.
            let mut rels: Vec<&LogicalPlan> = Vec::new();
            let mut conjs: Vec<Expr> = Vec::new();
            flatten_inner(left, &mut rels, &mut conjs);
            flatten_inner(right, &mut rels, &mut conjs);
            push_conjuncts(pred, &mut conjs);
            if rels.len() >= 3 {
                let original_out: Vec<ColRef> = [left.output_cols(), right.output_cols()].concat();
                return self.build_join_ordered(&rels, conjs, original_out, binding);
            }
        }
        // Two relations (or a non-inner join): keep the syntactic order,
        // search distribution strategies only.
        let est = CardinalityEstimator::new(&self.catalog, binding);
        let l = self.build(left, binding)?;
        let r = self.build(right, binding)?;
        let out_rows = est.join_cardinality(l.rows, r.rows, pred);
        let l = JoinSide {
            cols: left.output_cols().into_iter().collect(),
            out: left.output_cols(),
            base_rows: base_cardinality(left, &self.catalog),
            plan: l.plan,
            dist: l.dist,
            rows: l.rows,
        };
        let r = JoinSide {
            cols: right.output_cols().into_iter().collect(),
            out: right.output_cols(),
            base_rows: base_cardinality(right, &self.catalog),
            plan: r.plan,
            dist: r.dist,
            rows: r.rows,
        };
        let (joined, _cost) =
            self.join_pair(&est, join_type, split_conjuncts(pred), l, r, out_rows)?;
        Ok(Built {
            plan: joined.plan,
            dist: joined.dist,
            rows: joined.rows,
        })
    }

    /// Cost-based join ordering: DPsize over subsets of the flattened
    /// relation list (ISSUE: beats the fixed left-deep order), with a
    /// greedy cheapest-pair fallback above [`MAX_DP_RELATIONS`]. The
    /// per-pair distribution-strategy search ([`Optimizer::pair_cost`]) is
    /// the inner loop, so join order and Motion placement optimize
    /// jointly.
    fn build_join_ordered(
        &self,
        rels: &[&LogicalPlan],
        conjs: Vec<Expr>,
        original_out: Vec<ColRef>,
        binding: &ColumnBinding,
    ) -> Result<Built> {
        let est = CardinalityEstimator::new(&self.catalog, binding);
        let n = rels.len();

        // Build every relation leaf once.
        let mut leaves: Vec<JoinSide> = Vec::with_capacity(n);
        for rel in rels {
            let b = self.build(rel, binding)?;
            leaves.push(JoinSide {
                cols: rel.output_cols().into_iter().collect(),
                out: rel.output_cols(),
                base_rows: base_cardinality(rel, &self.catalog),
                plan: b.plan,
                dist: b.dist,
                rows: b.rows,
            });
        }

        // Classify conjuncts by the set of relations they reference.
        let mut infos: Vec<ConjInfo> = Vec::new();
        let mut top_level: Vec<Expr> = Vec::new();
        for c in conjs {
            let cols = collect_columns(&c);
            let mut support = 0usize;
            for (i, leaf) in leaves.iter().enumerate() {
                if cols.iter().any(|x| leaf.cols.contains(x)) {
                    support |= 1 << i;
                }
            }
            match support.count_ones() {
                // References no relation (params/constants): filter once on
                // top of the final join.
                0 => top_level.push(c),
                // Single-relation conjunct the normalizer did not sink
                // (it can resurface from a nested join predicate): filter
                // the leaf directly so every order sees it applied.
                1 => {
                    let i = support.trailing_zeros() as usize;
                    let leaf = &mut leaves[i];
                    leaf.rows = (leaf.rows * est.selectivity(&c)).max(1.0);
                    let child = std::mem::replace(
                        &mut leaf.plan,
                        PhysicalPlan::Values {
                            rows: vec![],
                            output: vec![],
                        },
                    );
                    leaf.plan = PhysicalPlan::Filter {
                        pred: c,
                        child: Box::new(child),
                    };
                }
                _ => {
                    let sel = est.selectivity(&c);
                    let eq = match &c {
                        Expr::Cmp {
                            op: mpp_expr::CmpOp::Eq,
                            left: a,
                            right: b,
                        } => {
                            let side_mask = |e: &Expr| {
                                let cols = collect_columns(e);
                                let mut m = 0usize;
                                for (i, leaf) in leaves.iter().enumerate() {
                                    if cols.iter().any(|x| leaf.cols.contains(x)) {
                                        m |= 1 << i;
                                    }
                                }
                                m
                            };
                            Some((
                                a.as_ref().clone(),
                                b.as_ref().clone(),
                                side_mask(a),
                                side_mask(b),
                            ))
                        }
                        _ => None,
                    };
                    infos.push(ConjInfo {
                        expr: c,
                        support,
                        sel,
                        eq,
                    });
                }
            }
        }

        let side = if n <= MAX_DP_RELATIONS {
            self.enumerate_dpsize(&est, leaves, &infos)?
        } else {
            self.enumerate_greedy(&est, leaves, &infos)?
        };

        // Constant conjuncts on top, then restore the syntactic column
        // order: downstream operators resolve columns by identity, but the
        // root of the query delivers columns positionally.
        let mut plan = side.plan;
        if !top_level.is_empty() {
            plan = PhysicalPlan::Filter {
                pred: Expr::and(top_level),
                child: Box::new(plan),
            };
        }
        if side.out != original_out {
            plan = PhysicalPlan::Project {
                exprs: original_out.iter().cloned().map(Expr::col).collect(),
                output: original_out,
                child: Box::new(plan),
            };
        }
        Ok(Built {
            plan,
            dist: side.dist,
            rows: side.rows,
        })
    }

    /// Exhaustive DP over subsets (DPsize): for every subset of relations,
    /// keep the cheapest (cost, distribution) over all ordered splits into
    /// two smaller subsets; cross products are considered only when a
    /// subset has no connected split. When the query graph is connected,
    /// the DP visits only subsets whose induced join graph is connected
    /// (the DPccp restriction): every cross-product-free join tree's
    /// subtrees are connected subgraphs, so no plan is lost, and the
    /// subset count collapses from 2^n to O(n²) on chains and O(2^n / 2)
    /// on stars. The winning split tree is materialized afterwards by
    /// [`Optimizer::dp_rebuild`].
    fn enumerate_dpsize(
        &self,
        est: &CardinalityEstimator,
        leaves: Vec<JoinSide>,
        infos: &[ConjInfo],
    ) -> Result<JoinSide> {
        let n = leaves.len();
        let full: usize = (1 << n) - 1;

        // Induced connectivity per subset: BFS over conjunct supports.
        let mut connected = vec![false; full + 1];
        for (mask, conn) in connected.iter_mut().enumerate().skip(1) {
            if mask.count_ones() == 1 {
                *conn = true;
                continue;
            }
            let mut reach = mask & mask.wrapping_neg();
            loop {
                let before = reach;
                for ci in infos {
                    if ci.support & mask == ci.support && ci.support & reach != 0 {
                        reach |= ci.support;
                    }
                }
                if reach == before {
                    break;
                }
            }
            *conn = reach == mask;
        }
        let graph_connected = connected[full];

        // Split-independent per-subset estimates: row product × the
        // selectivity of every conjunct fully covered by the subset, and
        // the base-table row product (for the DPE domain heuristic).
        let mut rows = vec![1.0f64; full + 1];
        let mut base = vec![1.0f64; full + 1];
        for mask in 1..=full {
            let mut r = 1.0f64;
            let mut b = 1.0f64;
            for (i, leaf) in leaves.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    r *= leaf.rows;
                    b *= leaf.base_rows;
                }
            }
            for ci in infos {
                if ci.support & mask == ci.support {
                    r *= ci.sel;
                }
            }
            rows[mask] = r.max(1.0);
            base[mask] = b;
        }

        let mut dp: Vec<Option<DpEntry>> = vec![None; full + 1];
        for (i, leaf) in leaves.iter().enumerate() {
            dp[1 << i] = Some(DpEntry {
                cost: self.leaf_cost(leaf),
                dist: leaf.dist.clone(),
                split: None,
            });
        }

        for mask in 1..=full {
            if mask.count_ones() < 2 {
                continue;
            }
            // DPccp prune: with a connected query graph a disconnected
            // subset can only appear under a cross product, which the
            // connected plan space never needs.
            if graph_connected && !connected[mask] {
                continue;
            }
            // Pass 1: connected splits only; pass 2 (if none): cartesian.
            for allow_cartesian in [false, true] {
                // Enumerate proper non-empty submasks; both (l, r) and
                // (r, l) appear, so build/probe and DPE sides are searched.
                let mut lmask = (mask - 1) & mask;
                while lmask != 0 {
                    let rmask = mask & !lmask;
                    if let (Some(le), Some(re)) = (&dp[lmask], &dp[rmask]) {
                        let (left_keys, right_keys, connected) =
                            split_keys(infos, mask, lmask, rmask);
                        if connected == allow_cartesian {
                            lmask = (lmask - 1) & mask;
                            continue;
                        }
                        let (dpe_fraction, right_scan) = if rmask.count_ones() == 1 {
                            let j = rmask.trailing_zeros() as usize;
                            (
                                self.dpe_fraction(
                                    &leaves[j].plan,
                                    &left_keys,
                                    &right_keys,
                                    rows[lmask],
                                    base[lmask],
                                ),
                                self.partitioned_scan_shape(&leaves[j].plan),
                            )
                        } else {
                            (1.0, None)
                        };
                        let ctx = StrategyCtx {
                            join_type: JoinType::Inner,
                            has_equi: !left_keys.is_empty(),
                            l_rows: rows[lmask],
                            r_rows: rows[rmask],
                            out_rows: rows[mask],
                            l_dist: &le.dist,
                            r_dist: &re.dist,
                            lk_cols: &simple_cols(&left_keys),
                            rk_cols: &simple_cols(&right_keys),
                            dpe_fraction,
                            right_scan,
                        };
                        if let Some((pair, _ml, _mr, dist)) = self.pair_cost(&ctx) {
                            let cost = le.cost + re.cost + pair;
                            if dp[mask].as_ref().map(|e| cost < e.cost).unwrap_or(true) {
                                dp[mask] = Some(DpEntry {
                                    cost,
                                    dist,
                                    split: Some((lmask, rmask)),
                                });
                            }
                        }
                    }
                    lmask = (lmask - 1) & mask;
                }
                if dp[mask].is_some() {
                    break;
                }
            }
            if dp[mask].is_none() {
                return Err(Error::Optimize(
                    "join enumeration found no valid plan for a subset".into(),
                ));
            }
        }

        let mut slots: Vec<Option<JoinSide>> = leaves.into_iter().map(Some).collect();
        let (side, _cost) = self.dp_rebuild(est, full, &dp, &mut slots, infos, &rows)?;
        Ok(side)
    }

    /// Materialize the DP winner: recurse down the recorded splits and run
    /// the same pair-join construction the costing saw.
    fn dp_rebuild(
        &self,
        est: &CardinalityEstimator,
        mask: usize,
        dp: &[Option<DpEntry>],
        slots: &mut [Option<JoinSide>],
        infos: &[ConjInfo],
        rows: &[f64],
    ) -> Result<(JoinSide, f64)> {
        let entry = dp[mask]
            .as_ref()
            .ok_or_else(|| Error::Optimize("missing DP entry during rebuild".into()))?;
        let Some((lmask, rmask)) = entry.split else {
            let i = mask.trailing_zeros() as usize;
            let leaf = slots[i]
                .take()
                .ok_or_else(|| Error::Optimize("leaf consumed twice during rebuild".into()))?;
            let cost = self.leaf_cost(&leaf);
            return Ok((leaf, cost));
        };
        let (l, lc) = self.dp_rebuild(est, lmask, dp, slots, infos, rows)?;
        let (r, rc) = self.dp_rebuild(est, rmask, dp, slots, infos, rows)?;
        let conjs: Vec<Expr> = infos
            .iter()
            .filter(|ci| {
                ci.support & mask == ci.support
                    && ci.support & lmask != 0
                    && ci.support & rmask != 0
            })
            .map(|ci| ci.expr.clone())
            .collect();
        let (side, pair) = self.join_pair(est, JoinType::Inner, conjs, l, r, rows[mask])?;
        Ok((side, lc + rc + pair))
    }

    /// Greedy fallback above [`MAX_DP_RELATIONS`]: repeatedly merge the
    /// pair of subtrees with the cheapest join, preferring connected pairs
    /// over cross products.
    fn enumerate_greedy(
        &self,
        est: &CardinalityEstimator,
        leaves: Vec<JoinSide>,
        infos: &[ConjInfo],
    ) -> Result<JoinSide> {
        let mut entries: Vec<(usize, JoinSide)> = leaves
            .into_iter()
            .enumerate()
            .map(|(i, l)| (1usize << i, l))
            .collect();
        while entries.len() > 1 {
            let mut best: Option<(f64, usize, usize, bool)> = None;
            for li in 0..entries.len() {
                for ri in 0..entries.len() {
                    if li == ri {
                        continue;
                    }
                    let (lm, l) = &entries[li];
                    let (rm, r) = &entries[ri];
                    let mask = lm | rm;
                    let (left_keys, right_keys, connected) = split_keys(infos, mask, *lm, *rm);
                    let out_rows = pair_out_rows(l.rows, r.rows, infos, mask, *lm, *rm);
                    let (dpe_fraction, right_scan) = if rm.count_ones() == 1 {
                        (
                            self.dpe_fraction(
                                &r.plan,
                                &left_keys,
                                &right_keys,
                                l.rows,
                                l.base_rows,
                            ),
                            self.partitioned_scan_shape(&r.plan),
                        )
                    } else {
                        (1.0, None)
                    };
                    let ctx = StrategyCtx {
                        join_type: JoinType::Inner,
                        has_equi: !left_keys.is_empty(),
                        l_rows: l.rows,
                        r_rows: r.rows,
                        out_rows,
                        l_dist: &l.dist,
                        r_dist: &r.dist,
                        lk_cols: &simple_cols(&left_keys),
                        rk_cols: &simple_cols(&right_keys),
                        dpe_fraction,
                        right_scan,
                    };
                    if let Some((cost, _, _, _)) = self.pair_cost(&ctx) {
                        let better = match &best {
                            None => true,
                            // Connected pairs always beat cross products.
                            Some((bc, _, _, bconn)) => {
                                (connected && !bconn) || (connected == *bconn && cost < *bc)
                            }
                        };
                        if better {
                            best = Some((cost, li, ri, connected));
                        }
                    }
                }
            }
            let (_, li, ri, _) = best
                .ok_or_else(|| Error::Optimize("greedy join enumeration found no plan".into()))?;
            // Remove the higher index first so the lower stays valid.
            let (hi, lo) = if li > ri { (li, ri) } else { (ri, li) };
            let b = entries.remove(hi);
            let a = entries.remove(lo);
            let ((lm, l), (rm, r)) = if li > ri { (b, a) } else { (a, b) };
            let mask = lm | rm;
            let conjs: Vec<Expr> = infos
                .iter()
                .filter(|ci| {
                    ci.support & mask == ci.support && ci.support & lm != 0 && ci.support & rm != 0
                })
                .map(|ci| ci.expr.clone())
                .collect();
            let out_rows = pair_out_rows(l.rows, r.rows, infos, mask, lm, rm);
            let (side, _cost) = self.join_pair(est, JoinType::Inner, conjs, l, r, out_rows)?;
            entries.push((mask, side));
        }
        Ok(entries.pop().expect("at least one entry").1)
    }

    /// Cost charged for producing a relation leaf (its scan). Pair costs
    /// use a *credit* for DPE (pruned minus full scan), so leaves carry
    /// the full scan cost and totals stay comparable across orders.
    fn leaf_cost(&self, leaf: &JoinSide) -> f64 {
        match self.partitioned_scan_shape(&leaf.plan) {
            Some((parts, rows)) => self.cost.dynamic_scan(rows, parts, 1.0),
            None => self.cost.table_scan(leaf.rows),
        }
    }

    /// Construct the physical join of two built sides: split the conjuncts
    /// into equi keys and residual, pick the cheapest distribution
    /// strategy, and wrap Motions. Returns the joined side and the pair's
    /// incremental cost (the same figure the enumerators ranked).
    fn join_pair(
        &self,
        est: &CardinalityEstimator,
        join_type: JoinType,
        conjuncts: Vec<Expr>,
        l: JoinSide,
        r: JoinSide,
        out_rows: f64,
    ) -> Result<(JoinSide, f64)> {
        // Split the predicate into equi-key pairs and a residual.
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual = Vec::new();
        for conj in &conjuncts {
            if let Expr::Cmp {
                op: mpp_expr::CmpOp::Eq,
                left: a,
                right: b,
            } = conj
            {
                let a_cols = collect_columns(a);
                let b_cols = collect_columns(b);
                let a_left = a_cols.iter().all(|c| l.cols.contains(c));
                let a_right = a_cols.iter().all(|c| r.cols.contains(c));
                let b_left = b_cols.iter().all(|c| l.cols.contains(c));
                let b_right = b_cols.iter().all(|c| r.cols.contains(c));
                if a_left && b_right && !a_cols.is_empty() && !b_cols.is_empty() {
                    left_keys.push(a.as_ref().clone());
                    right_keys.push(b.as_ref().clone());
                    continue;
                }
                if b_left && a_right && !a_cols.is_empty() && !b_cols.is_empty() {
                    left_keys.push(b.as_ref().clone());
                    right_keys.push(a.as_ref().clone());
                    continue;
                }
            }
            residual.push(conj.clone());
        }

        let dpe_fraction = self.dpe_fraction(&r.plan, &left_keys, &right_keys, l.rows, l.base_rows);
        let lk_cols = simple_cols(&left_keys);
        let rk_cols = simple_cols(&right_keys);
        let ctx = StrategyCtx {
            join_type,
            has_equi: !left_keys.is_empty(),
            l_rows: l.rows,
            r_rows: r.rows,
            out_rows,
            l_dist: &l.dist,
            r_dist: &r.dist,
            lk_cols: &lk_cols,
            rk_cols: &rk_cols,
            dpe_fraction,
            right_scan: self.partitioned_scan_shape(&r.plan),
        };
        let (cost, ml, mr, out_dist) = self
            .pair_cost(&ctx)
            .ok_or_else(|| Error::Optimize("no valid distribution strategy for join".into()))?;

        let out: Vec<ColRef> = [l.out.as_slice(), r.out.as_slice()].concat();
        let cols: BTreeSet<ColRef> = l.cols.union(&r.cols).cloned().collect();
        let base_rows = l.base_rows * r.base_rows;

        if left_keys.is_empty() {
            // No equi keys: nested loops with a broadcast inner.
            let r_plan = if mr == Mv::Bcast {
                PhysicalPlan::Motion {
                    kind: MotionKind::Broadcast,
                    child: Box::new(r.plan),
                }
            } else {
                r.plan
            };
            return Ok((
                JoinSide {
                    plan: PhysicalPlan::NLJoin {
                        join_type,
                        pred: Some(Expr::and(conjuncts)),
                        left: Box::new(l.plan),
                        right: Box::new(r_plan),
                    },
                    dist: out_dist,
                    rows: out_rows,
                    cols,
                    out,
                    base_rows,
                },
                cost,
            ));
        }

        // Adaptive per-partition plan specialization: when the inner side
        // is a skew-partitioned scan, a per-group Append with different
        // strategies per branch may beat the single uniform strategy.
        if let Some((plan, dist, spec_cost)) = self.try_specialize_join(
            est,
            join_type,
            &conjuncts,
            &left_keys,
            &right_keys,
            &residual,
            &l,
            &r,
            out_rows,
            cost,
        ) {
            return Ok((
                JoinSide {
                    plan,
                    dist,
                    rows: out_rows,
                    cols,
                    out,
                    base_rows,
                },
                spec_cost,
            ));
        }

        let residual = if residual.is_empty() {
            None
        } else {
            Some(Expr::and(residual))
        };
        let apply = |plan: PhysicalPlan, mv: Mv, keys: &Option<Vec<ColRef>>| match mv {
            Mv::None => plan,
            Mv::Redist => PhysicalPlan::Motion {
                kind: MotionKind::Redistribute(keys.clone().expect("checked in pair_cost")),
                child: Box::new(plan),
            },
            Mv::Bcast => PhysicalPlan::Motion {
                kind: MotionKind::Broadcast,
                child: Box::new(plan),
            },
        };
        let l_plan = apply(l.plan, ml, &lk_cols);
        let r_plan = apply(r.plan, mr, &rk_cols);
        Ok((
            JoinSide {
                plan: PhysicalPlan::HashJoin {
                    join_type,
                    left_keys,
                    right_keys,
                    residual,
                    left: Box::new(l_plan),
                    right: Box::new(r_plan),
                },
                dist: out_dist,
                rows: out_rows,
                cols,
                out,
                base_rows,
            },
            cost,
        ))
    }

    /// The distribution-strategy search for one join pair: cheapest of
    /// redistribute / broadcast-right / broadcast-left (inner only),
    /// respecting co-location and Replicated-side rules. Partitioned inner
    /// sides that stay in place are credited with the DPE scan saving
    /// (Figure 14), expressed relative to the full scan the leaf already
    /// paid for, so enumerator totals compose. Returns
    /// `(cost, left motion, right motion, output distribution)`.
    fn pair_cost(&self, ctx: &StrategyCtx) -> Option<(f64, Mv, Mv, DistSpec)> {
        if !ctx.has_equi {
            // Nested loops; the inner side is broadcast unless already
            // visible everywhere (or both sides are singletons).
            let (mr, move_cost) = match (ctx.r_dist, ctx.l_dist) {
                (DistSpec::Replicated, _) => (Mv::None, 0.0),
                (DistSpec::Singleton, DistSpec::Singleton) => (Mv::None, 0.0),
                _ => (Mv::Bcast, self.cost.broadcast(ctx.r_rows)),
            };
            let cost = move_cost + self.cost.nl_join(ctx.l_rows, ctx.r_rows);
            return Some((cost, Mv::None, mr, ctx.l_dist.clone()));
        }

        let l_colocated = matches!((ctx.l_dist, ctx.lk_cols), (DistSpec::Hashed(h), Some(k)) if h == k)
            || *ctx.l_dist == DistSpec::Singleton;
        let r_colocated = matches!((ctx.r_dist, ctx.rk_cols), (DistSpec::Hashed(h), Some(k)) if h == k)
            || *ctx.r_dist == DistSpec::Singleton;

        // Candidate strategies: (left motion, right motion).
        let mut candidates: Vec<(Mv, Mv)> = Vec::new();
        // (a) redistribute to co-locate on keys.
        candidates.push((
            if l_colocated { Mv::None } else { Mv::Redist },
            if r_colocated { Mv::None } else { Mv::Redist },
        ));
        // (b) broadcast right, leave left.
        candidates.push((Mv::None, Mv::Bcast));
        // (c) broadcast left, leave right (inner joins and semi-style
        // joins must not duplicate left rows — only Inner allows this).
        if ctx.join_type == JoinType::Inner {
            candidates.push((Mv::Bcast, Mv::None));
        }

        let mut best: Option<(f64, (Mv, Mv))> = None;
        for (ml, mr) in candidates {
            // Redistribution requires simple column keys.
            if ml == Mv::Redist && ctx.lk_cols.is_none() {
                continue;
            }
            if mr == Mv::Redist && ctx.rk_cols.is_none() {
                continue;
            }
            // Replicated sides must not be moved again.
            if *ctx.l_dist == DistSpec::Replicated && ml != Mv::None {
                continue;
            }
            if *ctx.r_dist == DistSpec::Replicated && mr != Mv::None {
                continue;
            }
            // Validity: matching pairs must meet. Either both hashed on
            // keys, or one side replicated/broadcast.
            let l_ok = ml != Mv::None || l_colocated || *ctx.l_dist == DistSpec::Replicated;
            let r_ok = mr != Mv::None || r_colocated || *ctx.r_dist == DistSpec::Replicated;
            let joinable = match (ml, mr) {
                (Mv::Bcast, _) | (_, Mv::Bcast) => true,
                _ => {
                    (l_ok && r_ok)
                        || *ctx.l_dist == DistSpec::Replicated
                        || *ctx.r_dist == DistSpec::Replicated
                }
            };
            if !joinable {
                continue;
            }
            let mut cost = 0.0;
            cost += match ml {
                Mv::None => 0.0,
                Mv::Redist => self.cost.redistribute(ctx.l_rows),
                Mv::Bcast => self.cost.broadcast(ctx.l_rows),
            };
            cost += match mr {
                Mv::None => 0.0,
                Mv::Redist => self.cost.redistribute(ctx.r_rows),
                Mv::Bcast => self.cost.broadcast(ctx.r_rows),
            };
            // DPE saves scan cost on the inner side when it stays in
            // place; charged as a delta against the full scan so the
            // saving is comparable across join orders.
            let scan_fraction = if mr == Mv::None {
                ctx.dpe_fraction
            } else {
                1.0
            };
            if let Some((total_parts, scan_rows)) = ctx.right_scan {
                cost += self
                    .cost
                    .dynamic_scan(scan_rows, total_parts, scan_fraction)
                    - self.cost.dynamic_scan(scan_rows, total_parts, 1.0);
            }
            cost += self
                .cost
                .hash_join(ctx.l_rows, ctx.r_rows * scan_fraction, ctx.out_rows);
            if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                best = Some((cost, (ml, mr)));
            }
        }
        let (cost, (ml, mr)) = best?;
        let out_dist = match (ml, mr) {
            (Mv::Bcast, _) => ctx.r_dist.clone(),
            (_, Mv::Bcast) => match ml {
                Mv::Redist => DistSpec::Hashed(ctx.lk_cols.clone().unwrap()),
                _ => ctx.l_dist.clone(),
            },
            (Mv::Redist, _) | (Mv::None, Mv::Redist) => {
                if ml == Mv::Redist {
                    DistSpec::Hashed(ctx.lk_cols.clone().unwrap())
                } else {
                    ctx.l_dist.clone()
                }
            }
            (Mv::None, Mv::None) => ctx.l_dist.clone(),
        };
        Some((cost, ml, mr, out_dist))
    }

    /// Expected fraction of partitions scanned if dynamic partition
    /// elimination applies to the right (inner) side via these join keys;
    /// 1.0 when no DPE opportunity exists.
    ///
    /// Without per-value histograms we estimate the fraction of the key
    /// domain the outer side still covers by how selective its filters
    /// were: an outer side reduced to 1% of its base rows drives roughly
    /// 1% of the partitions (the uniform-key assumption).
    fn dpe_fraction(
        &self,
        right_plan: &PhysicalPlan,
        left_keys: &[Expr],
        right_keys: &[Expr],
        left_rows: f64,
        left_base_rows: f64,
    ) -> f64 {
        let Some((table, output)) = dynamic_scan_of(right_plan) else {
            return 1.0;
        };
        let Ok(tree) = self.catalog.part_tree(table) else {
            return 1.0;
        };
        let key_cols: Vec<ColRef> = tree
            .key_indices()
            .iter()
            .filter_map(|&i| output.get(i).cloned())
            .collect();
        // Which join key pair hits a partition key?
        for (lk, rk) in left_keys.iter().zip(right_keys) {
            let _ = lk;
            if let Expr::Col(rc) = rk {
                if key_cols.contains(rc) {
                    let parts = tree.num_leaves() as f64;
                    // Two independent upper bounds on the touched
                    // fraction: the outer side's filter selectivity (a
                    // filtered outer covers proportionally less of the
                    // key domain) and its absolute row count (n outer
                    // rows can light up at most n partitions).
                    let ratio = if left_base_rows > 0.0 {
                        left_rows / left_base_rows
                    } else {
                        1.0
                    };
                    let by_count = left_rows / parts;
                    return ratio.min(by_count).clamp(1.0 / parts, 1.0);
                }
            }
        }
        1.0
    }

    /// Shape of the partitioned scan rooted in the plan, if any: expected
    /// (leaf count, rows). *Static* elimination by the filters sitting on
    /// the scan is folded in — with per-partition row counts from ANALYZE
    /// the estimate reflects the partitions actually opened, otherwise a
    /// uniform fraction of the table.
    fn partitioned_scan_shape(&self, plan: &PhysicalPlan) -> Option<(usize, f64)> {
        let (table, output) = dynamic_scan_of(plan)?;
        let tree = self.catalog.part_tree(table).ok()?;
        let stats = self.catalog.stats(table);
        let total = tree.num_leaves();
        let mut parts = total;
        let mut rows = stats.row_count as f64;
        let mut preds = Vec::new();
        scan_filters(plan, &mut preds);
        if !preds.is_empty() && self.config.enable_partition_selection {
            let pred = Expr::and(preds);
            let derived: Vec<DerivedSet> = tree
                .key_indices()
                .iter()
                .map(|&i| match output.get(i) {
                    // Plan-time derivation: params unknown → full set.
                    Some(key) => derive_interval_set(&pred, key, None),
                    None => DerivedSet::full(),
                })
                .collect();
            if let Ok(surviving) = tree.select_partitions(&derived) {
                parts = surviving.len();
                rows = match stats.rows_in_parts(surviving.iter()) {
                    Some(n) => n as f64,
                    None => rows * parts as f64 / total.max(1) as f64,
                };
            }
        }
        Some((parts.max(1), rows))
    }

    /// Rows surviving *static* partition elimination of `pred` over a
    /// partitioned `table`, or `None` when nothing is eliminated (not
    /// partitioned, no partition-key conjuncts, or selection disabled).
    fn statically_pruned_rows(
        &self,
        table: TableOid,
        output: &[ColRef],
        pred: &Expr,
        est: &CardinalityEstimator,
    ) -> Option<f64> {
        if !self.config.enable_partition_selection {
            return None;
        }
        let tree = self.catalog.part_tree(table).ok()?;
        let derived: Vec<DerivedSet> = tree
            .key_indices()
            .iter()
            .map(|&i| match output.get(i) {
                Some(key) => derive_interval_set(pred, key, None),
                None => DerivedSet::full(),
            })
            .collect();
        let surviving = tree.select_partitions(&derived).ok()?;
        if surviving.len() >= tree.num_leaves() {
            return None;
        }
        Some(est.partition_cardinality(table, &surviving, tree.num_leaves()))
    }

    /// Adaptive per-partition plan specialization. When the inner side of
    /// an equi join is a partitioned scan whose surviving partitions are
    /// strongly skewed — per-partition ANALYZE counts show one heavy
    /// partition (typically DEFAULT) holding at least half the rows — a
    /// single distribution strategy is a compromise: the heavy group
    /// wants to stay in place behind a small broadcast outer (dynamic
    /// partition elimination then prunes it to almost nothing when the
    /// outer's keys barely reach its range), while the light group is
    /// cheap to redistribute or broadcast wholesale.
    ///
    /// The rewrite splits the join into one branch per partition group.
    /// Each branch filters the *outer* side to the group's key range
    /// (per-group costs then come from the outer histogram, which is what
    /// makes a split cheaper than the uniform plan in the first place),
    /// restricts the inner scan to the group's partition OIDs under a
    /// fresh scan id, picks the cheapest strategy for that branch alone,
    /// and the branches are stitched with `Append`. The group key ranges
    /// partition the non-null key domain of the surviving partitions, and
    /// NULL keys never satisfy an inner equi join, so the union of the
    /// branches is exactly the uniform join's output.
    ///
    /// Returns `(plan, dist, cost)` when the specialized plan costs less
    /// than `uniform_cost`; `None` keeps the uniform join.
    #[allow(clippy::too_many_arguments)]
    fn try_specialize_join(
        &self,
        est: &CardinalityEstimator,
        join_type: JoinType,
        conjuncts: &[Expr],
        left_keys: &[Expr],
        right_keys: &[Expr],
        residual: &[Expr],
        l: &JoinSide,
        r: &JoinSide,
        out_rows: f64,
        uniform_cost: f64,
    ) -> Option<(PhysicalPlan, DistSpec, f64)> {
        if !self.config.adaptive_plans
            || !self.config.enable_partition_selection
            || join_type != JoinType::Inner
            || left_keys.is_empty()
            || l.dist == DistSpec::Replicated
            || r.dist == DistSpec::Replicated
        {
            return None;
        }
        // The rewrite duplicates the outer subtree into every branch and
        // retags the inner scan: only safe when the outer contains no
        // partitioned scan of its own (selector ids must stay unique) and
        // the inner contains exactly one.
        if count_dynamic_scans(&l.plan) != 0 || count_dynamic_scans(&r.plan) != 1 {
            return None;
        }
        let (table, output) = dynamic_scan_of(&r.plan)?;
        let tree = self.catalog.part_tree(table).ok()?;
        let key_idx = match tree.key_indices().as_slice() {
            [i] => *i,
            _ => return None, // multi-level partitioning: keep uniform
        };
        let key_col = output.get(key_idx)?.clone();
        // The branch filter goes on the outer side, so the join-key pair
        // hitting the partition key must be a bare column on both sides.
        let outer_key = left_keys
            .iter()
            .zip(right_keys)
            .find_map(|(lk, rk)| match (lk, rk) {
                (Expr::Col(lc), Expr::Col(rc)) if *rc == key_col => Some(lc.clone()),
                _ => None,
            })?;

        // Surviving partitions after static elimination by the scan's own
        // filters, with per-partition row counts (requires ANALYZE).
        let stats = self.catalog.stats(table);
        let mut preds = Vec::new();
        scan_filters(&r.plan, &mut preds);
        let surviving = if preds.is_empty() {
            tree.partition_expansion()
        } else {
            let pred = Expr::and(preds);
            let derived: Vec<DerivedSet> = tree
                .key_indices()
                .iter()
                .map(|&i| match output.get(i) {
                    Some(key) => derive_interval_set(&pred, key, None),
                    None => DerivedSet::full(),
                })
                .collect();
            tree.select_partitions(&derived).ok()?
        };
        if surviving.len() < 2 {
            return None;
        }
        let mut part_rows: Vec<(PartOid, f64)> = Vec::with_capacity(surviving.len());
        for oid in &surviving {
            part_rows.push((*oid, stats.rows_in_parts(std::iter::once(oid))? as f64));
        }
        let total: f64 = part_rows.iter().map(|(_, n)| n).sum();
        if total <= 0.0 {
            return None;
        }
        // Skew gate: specialization only pays when one partition dominates.
        let (heavy_oid, heavy_rows) = part_rows
            .iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))?;
        if heavy_rows < 0.5 * total {
            return None;
        }

        // Two groups: the heavy partition alone, and the light remainder.
        let light: Vec<(PartOid, f64)> = part_rows
            .iter()
            .filter(|(oid, _)| *oid != heavy_oid)
            .cloned()
            .collect();
        let light_rows: f64 = light.iter().map(|(_, n)| n).sum();
        let groups: Vec<(Vec<PartOid>, f64)> = vec![
            (vec![heavy_oid], heavy_rows),
            (light.iter().map(|(oid, _)| *oid).collect(), light_rows),
        ];

        // Level-0 key-range constraint per leaf; the DEFAULT partition
        // reports the uncovered complement, so the surviving constraints
        // partition the non-null key domain.
        let constraints: std::collections::HashMap<PartOid, IntervalSet> = tree
            .partition_constraints()
            .into_iter()
            .filter_map(|(oid, mut sets)| {
                if sets.is_empty() {
                    None
                } else {
                    Some((oid, sets.remove(0)))
                }
            })
            .collect();

        let lk_cols = simple_cols(left_keys);
        let rk_cols = simple_cols(right_keys);
        enum Strategy {
            Hash(Mv, Mv, DistSpec),
            NlBcast,
        }
        let mut branches: Vec<(Vec<PartOid>, Option<Expr>, Strategy)> = Vec::new();
        let mut spec_cost = 0.0;
        for (oids, rows) in groups {
            let mut iset = IntervalSet::empty();
            for oid in &oids {
                iset = iset.union(constraints.get(oid)?);
            }
            if iset.is_empty() {
                // Only NULL keys can live here; they never satisfy an
                // inner equi join, so skip the branch (and keep the
                // rewrite only when both branches materialize).
                return None;
            }
            let filter = interval_set_to_pred(&outer_key, &iset);
            let l_rows = match &filter {
                Some(f) => (l.rows * est.selectivity(f)).max(1.0),
                None => l.rows,
            };
            let frac = (rows / total).clamp(0.0, 1.0);
            let r_rows = (r.rows * frac).max(1.0);
            let branch_out = (out_rows * frac).max(1.0);
            let dpe = self.dpe_fraction(&r.plan, left_keys, right_keys, l_rows, l.base_rows);
            let ctx = StrategyCtx {
                join_type,
                has_equi: true,
                l_rows,
                r_rows,
                out_rows: branch_out,
                l_dist: &l.dist,
                r_dist: &r.dist,
                lk_cols: &lk_cols,
                rk_cols: &rk_cols,
                dpe_fraction: dpe,
                right_scan: Some((oids.len(), rows)),
            };
            let hash = self.pair_cost(&ctx);
            // Alternative: broadcast the (restricted) inner wholesale and
            // nested-loop it — wins for slim groups where hashing costs
            // more than it saves.
            let nl = self.cost.broadcast(r_rows) + self.cost.nl_join(l_rows, r_rows);
            let (branch_cost, strategy) = match hash {
                Some((hc, ml, mr, dist)) if hc <= nl => (hc, Strategy::Hash(ml, mr, dist)),
                _ => (nl, Strategy::NlBcast),
            };
            spec_cost += branch_cost;
            if filter.is_some() {
                spec_cost += self.cost.filter(l.rows);
            }
            branches.push((oids, filter, strategy));
        }
        // Every branch re-runs the outer subtree: charge the duplicates.
        spec_cost += (branches.len() - 1) as f64 * self.cost.table_scan(l.base_rows);
        if spec_cost >= uniform_cost || branches.len() < 2 {
            return None;
        }

        // Emit: per branch, a fresh-id inner scan restricted to the
        // group's OIDs under the branch's own strategy, an outer filtered
        // to the group's key range, stitched with Append.
        let residual = if residual.is_empty() {
            None
        } else {
            Some(Expr::and(residual.to_vec()))
        };
        let out_cols: Vec<ColRef> = [l.out.as_slice(), r.out.as_slice()].concat();
        let mut children = Vec::new();
        let mut dists: Vec<DistSpec> = Vec::new();
        for (oids, filter, strategy) in branches {
            let scan_id = self.fresh_scan_id();
            let r_plan = retag_restrict(r.plan.clone(), scan_id, &oids);
            let mut l_plan = l.plan.clone();
            if let Some(f) = &filter {
                l_plan = PhysicalPlan::Filter {
                    pred: f.clone(),
                    child: Box::new(l_plan),
                };
            }
            match strategy {
                Strategy::NlBcast => {
                    children.push(PhysicalPlan::NLJoin {
                        join_type,
                        pred: Some(Expr::and(conjuncts.to_vec())),
                        left: Box::new(l_plan),
                        right: Box::new(PhysicalPlan::Motion {
                            kind: MotionKind::Broadcast,
                            child: Box::new(r_plan),
                        }),
                    });
                    dists.push(l.dist.clone());
                }
                Strategy::Hash(ml, mr, dist) => {
                    let apply = |plan: PhysicalPlan, mv: Mv, keys: &Option<Vec<ColRef>>| match mv {
                        Mv::None => plan,
                        Mv::Redist => PhysicalPlan::Motion {
                            kind: MotionKind::Redistribute(
                                keys.clone().expect("checked in pair_cost"),
                            ),
                            child: Box::new(plan),
                        },
                        Mv::Bcast => PhysicalPlan::Motion {
                            kind: MotionKind::Broadcast,
                            child: Box::new(plan),
                        },
                    };
                    children.push(PhysicalPlan::HashJoin {
                        join_type,
                        left_keys: left_keys.to_vec(),
                        right_keys: right_keys.to_vec(),
                        residual: residual.clone(),
                        left: Box::new(apply(l_plan, ml, &lk_cols)),
                        right: Box::new(apply(r_plan, mr, &rk_cols)),
                    });
                    dists.push(dist);
                }
            }
        }
        // Branch outputs are unioned in place; unless every branch landed
        // on the same hashed distribution, claim only "somewhere hashed"
        // (never co-located) so parents and the root add the Motions they
        // need. Branch dists are never Replicated (both inputs are gated
        // non-Replicated above), so this never under-counts rows.
        let dist =
            if dists.windows(2).all(|w| w[0] == w[1]) && matches!(dists[0], DistSpec::Hashed(_)) {
                dists[0].clone()
            } else {
                DistSpec::Hashed(vec![])
            };
        Some((
            PhysicalPlan::Append {
                output: out_cols,
                children,
            },
            dist,
            spec_cost,
        ))
    }
}

/// Left/right motion applied to a join side.
#[derive(Clone, Copy, PartialEq)]
enum Mv {
    None,
    Redist,
    Bcast,
}

/// One side of a candidate pair join: the built subtree plus what the
/// strategy search and the enumerators track per subset.
struct JoinSide {
    plan: PhysicalPlan,
    dist: DistSpec,
    rows: f64,
    /// Output columns as a set (conjunct ownership tests).
    cols: BTreeSet<ColRef>,
    /// Output columns in order (restoring the syntactic column order at
    /// the root of a reordered join tree).
    out: Vec<ColRef>,
    /// Product of base-table cardinalities under this side (the DPE
    /// selectivity-vs-domain heuristic).
    base_rows: f64,
}

/// Inputs to [`Optimizer::pair_cost`].
struct StrategyCtx<'a> {
    join_type: JoinType,
    has_equi: bool,
    l_rows: f64,
    r_rows: f64,
    out_rows: f64,
    l_dist: &'a DistSpec,
    r_dist: &'a DistSpec,
    lk_cols: &'a Option<Vec<ColRef>>,
    rk_cols: &'a Option<Vec<ColRef>>,
    dpe_fraction: f64,
    /// `(leaf parts, rows)` when the right side roots a partitioned scan.
    right_scan: Option<(usize, f64)>,
}

/// A pooled join conjunct: which relations it references (`support`, a
/// bitmask over the flattened relation list), its selectivity, and — for
/// `a = b` equalities — both sides with their own relation masks, so the
/// enumerator can type it as an equi-key for any split.
struct ConjInfo {
    expr: Expr,
    support: usize,
    sel: f64,
    eq: Option<(Expr, Expr, usize, usize)>,
}

/// Best plan found for one relation subset during DPsize.
#[derive(Clone)]
struct DpEntry {
    cost: f64,
    dist: DistSpec,
    /// `None` for single relations; otherwise the winning (left, right)
    /// submasks.
    split: Option<(usize, usize)>,
}

/// Collect the relation leaves and pooled conjuncts of a maximal
/// inner-join subtree. Anything that is not an inner join (outer joins,
/// aggregates, projections…) is opaque: it becomes a relation of the
/// enumeration, and its own joins are ordered independently when `build`
/// recurses into it.
fn flatten_inner<'a>(
    plan: &'a LogicalPlan,
    rels: &mut Vec<&'a LogicalPlan>,
    conjs: &mut Vec<Expr>,
) {
    if let LogicalPlan::Join {
        join_type: JoinType::Inner,
        pred,
        left,
        right,
    } = plan
    {
        flatten_inner(left, rels, conjs);
        flatten_inner(right, rels, conjs);
        push_conjuncts(pred, conjs);
    } else {
        rels.push(plan);
    }
}

/// Append a predicate's conjuncts, dropping literal `true`.
fn push_conjuncts(pred: &Expr, conjs: &mut Vec<Expr>) {
    let truth = Expr::lit(true);
    conjs.extend(split_conjuncts(pred).into_iter().filter(|c| *c != truth));
}

/// Equi-key pairs between two subsets for one DP split, plus whether any
/// conjunct connects them at all (cross-product detection).
fn split_keys(
    infos: &[ConjInfo],
    mask: usize,
    lmask: usize,
    rmask: usize,
) -> (Vec<Expr>, Vec<Expr>, bool) {
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut connected = false;
    for ci in infos {
        if ci.support & mask != ci.support || ci.support & lmask == 0 || ci.support & rmask == 0 {
            continue;
        }
        connected = true;
        if let Some((a, b, am, bm)) = &ci.eq {
            if *am != 0 && *bm != 0 {
                if am & lmask == *am && bm & rmask == *bm {
                    left_keys.push(a.clone());
                    right_keys.push(b.clone());
                } else if bm & lmask == *bm && am & rmask == *am {
                    left_keys.push(b.clone());
                    right_keys.push(a.clone());
                }
            }
        }
    }
    (left_keys, right_keys, connected)
}

/// Key columns usable for redistribution: all keys must be bare columns.
fn simple_cols(keys: &[Expr]) -> Option<Vec<ColRef>> {
    keys.iter()
        .map(|e| match e {
            Expr::Col(c) => Some(c.clone()),
            _ => None,
        })
        .collect()
}

/// Split-independent output estimate for merging two subtrees in the
/// greedy enumerator: row product × selectivity of every conjunct newly
/// covered by the union.
fn pair_out_rows(
    l_rows: f64,
    r_rows: f64,
    infos: &[ConjInfo],
    mask: usize,
    lmask: usize,
    rmask: usize,
) -> f64 {
    let mut rows = l_rows * r_rows;
    for ci in infos {
        if ci.support & mask == ci.support && ci.support & lmask != 0 && ci.support & rmask != 0 {
            rows *= ci.sel;
        }
    }
    rows.max(1.0)
}

/// Conjuncts of the Filter/Project chain sitting directly on a scan.
fn scan_filters(plan: &PhysicalPlan, preds: &mut Vec<Expr>) {
    match plan {
        PhysicalPlan::Filter { pred, child } => {
            preds.extend(split_conjuncts(pred));
            scan_filters(child, preds);
        }
        PhysicalPlan::Project { child, .. } => scan_filters(child, preds),
        _ => {}
    }
}

/// Product of the base-table cardinalities in a logical subtree — the
/// "unfiltered" size the estimator's output is compared against when
/// guessing how much of the key domain survives.
fn base_cardinality(plan: &LogicalPlan, catalog: &Catalog) -> f64 {
    let mut product = 1.0f64;
    for t in plan.base_tables() {
        product *= catalog.stats(t).row_count.max(1) as f64;
    }
    product
}

/// If the plan is a (filter over a) DynamicScan, return its table and
/// output columns.
fn dynamic_scan_of(plan: &PhysicalPlan) -> Option<(TableOid, Vec<ColRef>)> {
    match plan {
        PhysicalPlan::DynamicScan { table, output, .. } => Some((*table, output.clone())),
        PhysicalPlan::Filter { child, .. } | PhysicalPlan::Project { child, .. } => {
            dynamic_scan_of(child)
        }
        _ => None,
    }
}

/// Number of DynamicScans anywhere in a subtree.
fn count_dynamic_scans(plan: &PhysicalPlan) -> usize {
    let mut n = usize::from(matches!(plan, PhysicalPlan::DynamicScan { .. }));
    for c in plan.children() {
        n += count_dynamic_scans(c);
    }
    n
}

/// Clone-rewrite for one adaptive Append branch: give the DynamicScan
/// under `plan` a fresh scan id and restrict it to the branch's group
/// OIDs. The fresh id keeps selector pairing unique across branches.
fn retag_restrict(plan: PhysicalPlan, id: PartScanId, oids: &[PartOid]) -> PhysicalPlan {
    if let PhysicalPlan::DynamicScan {
        table,
        table_name,
        output,
        filter,
        ..
    } = plan
    {
        PhysicalPlan::DynamicScan {
            table,
            table_name,
            part_scan_id: id,
            output,
            filter,
            restrict: Some(oids.to_vec()),
        }
    } else {
        map_children(plan, |c| retag_restrict(c, id, oids))
    }
}

/// Render an interval set as a range predicate over `col`: `None` when
/// the set is unbounded (no filter needed), `false` when it is empty.
/// Used for the per-branch outer filters of an adaptive Append — each
/// branch keeps only the outer rows whose join key can meet its group.
fn interval_set_to_pred(col: &ColRef, iset: &IntervalSet) -> Option<Expr> {
    if iset.is_full() {
        return None;
    }
    if iset.is_empty() {
        return Some(Expr::lit(false));
    }
    let mut arms = Vec::new();
    for iv in iset.intervals() {
        let mut conj = Vec::new();
        match &iv.low {
            LowBound::NegInf => {}
            LowBound::Incl(d) => conj.push(Expr::ge(Expr::col(col.clone()), Expr::lit(d.clone()))),
            LowBound::Excl(d) => conj.push(Expr::gt(Expr::col(col.clone()), Expr::lit(d.clone()))),
        }
        match &iv.high {
            HighBound::PosInf => {}
            HighBound::Incl(d) => conj.push(Expr::le(Expr::col(col.clone()), Expr::lit(d.clone()))),
            HighBound::Excl(d) => conj.push(Expr::lt(Expr::col(col.clone()), Expr::lit(d.clone()))),
        }
        if conj.is_empty() {
            // An unbounded interval inside a non-full set cannot happen;
            // fail safe with no restriction.
            return None;
        }
        arms.push(Expr::and(conj));
    }
    Some(Expr::or(arms))
}

/// Remove every selector predicate, disabling partition elimination while
/// keeping the plan shape (Figure 17's "disabled" configuration).
fn strip_selector_predicates(plan: PhysicalPlan) -> PhysicalPlan {
    fn rec(p: PhysicalPlan) -> PhysicalPlan {
        let p = map_children(p, rec);
        if let PhysicalPlan::PartitionSelector {
            table,
            table_name,
            part_scan_id,
            part_keys,
            predicates,
            child,
        } = p
        {
            PhysicalPlan::PartitionSelector {
                table,
                table_name,
                part_scan_id,
                part_keys,
                predicates: vec![None; predicates.len()],
                child,
            }
        } else {
            p
        }
    }
    rec(plan)
}

/// Rebuild a node with transformed children.
pub(crate) fn map_children(
    plan: PhysicalPlan,
    mut f: impl FnMut(PhysicalPlan) -> PhysicalPlan,
) -> PhysicalPlan {
    use PhysicalPlan::*;
    match plan {
        Filter { pred, child } => Filter {
            pred,
            child: Box::new(f(*child)),
        },
        Project {
            exprs,
            output,
            child,
        } => Project {
            exprs,
            output,
            child: Box::new(f(*child)),
        },
        HashJoin {
            join_type,
            left_keys,
            right_keys,
            residual,
            left,
            right,
        } => {
            let l = f(*left);
            let r = f(*right);
            HashJoin {
                join_type,
                left_keys,
                right_keys,
                residual,
                left: Box::new(l),
                right: Box::new(r),
            }
        }
        NLJoin {
            join_type,
            pred,
            left,
            right,
        } => {
            let l = f(*left);
            let r = f(*right);
            NLJoin {
                join_type,
                pred,
                left: Box::new(l),
                right: Box::new(r),
            }
        }
        HashAgg {
            group_by,
            aggs,
            output,
            child,
        } => HashAgg {
            group_by,
            aggs,
            output,
            child: Box::new(f(*child)),
        },
        Motion { kind, child } => Motion {
            kind,
            child: Box::new(f(*child)),
        },
        Sequence { children } => Sequence {
            children: children.into_iter().map(f).collect(),
        },
        Append { output, children } => Append {
            output,
            children: children.into_iter().map(f).collect(),
        },
        Limit { n, child } => Limit {
            n,
            child: Box::new(f(*child)),
        },
        Sort { keys, child } => Sort {
            keys,
            child: Box::new(f(*child)),
        },
        InitPlanOids {
            param,
            table,
            key,
            child,
        } => InitPlanOids {
            param,
            table,
            key,
            child: Box::new(f(*child)),
        },
        PartitionSelector {
            table,
            table_name,
            part_scan_id,
            part_keys,
            predicates,
            child,
        } => PartitionSelector {
            table,
            table_name,
            part_scan_id,
            part_keys,
            predicates,
            child: child.map(|c| Box::new(f(*c))),
        },
        Update {
            table,
            target_cols,
            assignments,
            child,
        } => Update {
            table,
            target_cols,
            assignments,
            child: Box::new(f(*child)),
        },
        Delete {
            table,
            target_cols,
            child,
        } => Delete {
            table,
            target_cols,
            child: Box::new(f(*child)),
        },
        Insert { table, child } => Insert {
            table,
            child: Box::new(f(*child)),
        },
        leaf => leaf,
    }
}

/// Build the colref → base column binding by walking `Get` nodes.
fn build_binding(plan: &LogicalPlan, binding: &mut ColumnBinding) {
    if let LogicalPlan::Get { table, output, .. } = plan {
        for (i, c) in output.iter().enumerate() {
            binding.bind(c.id, *table, i);
        }
    }
    for c in plan.children() {
        build_binding(c, binding);
    }
}

/// Stage 1: normalization — simplify predicates, push conjuncts below
/// joins where their columns allow it, and rewrite equi-semi-joins into
/// inner joins over a distinct build side. The semi-join rewrite is what
/// turns the paper's Figure 4 `IN (SELECT …)` into a join with the fact
/// table on the *inner* side, where Algorithm 4 can apply dynamic
/// partition elimination.
pub fn normalize(plan: LogicalPlan) -> LogicalPlan {
    normalize_opts(plan, true)
}

/// Normalization without the semi-join rewrite — the legacy planner's
/// weaker normalizer (its subquery plans keep the fact table on the outer
/// side, which is why it cannot eliminate partitions there; §4.3).
pub fn normalize_basic(plan: LogicalPlan) -> LogicalPlan {
    normalize_opts(plan, false)
}

fn normalize_opts(plan: LogicalPlan, rewrite_semi: bool) -> LogicalPlan {
    match plan {
        LogicalPlan::Select { pred, child } => {
            let child = normalize_opts(*child, rewrite_semi);
            let pred = simplify(&pred);
            push_select(pred, child)
        }
        LogicalPlan::Join {
            join_type,
            pred,
            left,
            right,
        } => {
            let mut left = normalize_opts(*left, rewrite_semi);
            let mut right = normalize_opts(*right, rewrite_semi);
            let pred = simplify(&pred);
            // Semi-join → inner join over the distinct right side, with
            // the former probe side as the join's inner child.
            if rewrite_semi && join_type == JoinType::LeftSemi {
                if let Some(r_col) = single_right_equi_col(&pred, &left, &right) {
                    let distinct = LogicalPlan::Agg {
                        group_by: vec![r_col.clone()],
                        aggs: vec![],
                        output: vec![r_col],
                        child: Box::new(right),
                    };
                    let out_cols = left.output_cols();
                    let inner = LogicalPlan::Join {
                        join_type: JoinType::Inner,
                        pred,
                        left: Box::new(distinct),
                        right: Box::new(left),
                    };
                    return LogicalPlan::Project {
                        exprs: out_cols.iter().cloned().map(Expr::col).collect(),
                        output: out_cols,
                        child: Box::new(inner),
                    };
                }
            }
            // Single-side conjuncts of an inner/semi join predicate sink
            // into that side.
            let mut keep = Vec::new();
            if matches!(join_type, JoinType::Inner | JoinType::LeftSemi) {
                let lcols: BTreeSet<ColRef> = left.output_cols().into_iter().collect();
                let rcols: BTreeSet<ColRef> = right.output_cols().into_iter().collect();
                for c in split_conjuncts(&pred) {
                    let cols = collect_columns(&c);
                    if !cols.is_empty() && cols.iter().all(|x| lcols.contains(x)) {
                        left = push_select(c, left);
                    } else if !cols.is_empty() && cols.iter().all(|x| rcols.contains(x)) {
                        right = push_select(c, right);
                    } else {
                        keep.push(c);
                    }
                }
            } else {
                keep = split_conjuncts(&pred);
            }
            LogicalPlan::Join {
                join_type,
                pred: Expr::and(keep),
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        LogicalPlan::Project {
            exprs,
            output,
            child,
        } => LogicalPlan::Project {
            exprs,
            output,
            child: Box::new(normalize_opts(*child, rewrite_semi)),
        },
        LogicalPlan::Agg {
            group_by,
            aggs,
            output,
            child,
        } => LogicalPlan::Agg {
            group_by,
            aggs,
            output,
            child: Box::new(normalize_opts(*child, rewrite_semi)),
        },
        LogicalPlan::Limit { n, child } => LogicalPlan::Limit {
            n,
            child: Box::new(normalize_opts(*child, rewrite_semi)),
        },
        LogicalPlan::Sort { keys, child } => LogicalPlan::Sort {
            keys,
            child: Box::new(normalize_opts(*child, rewrite_semi)),
        },
        LogicalPlan::Update {
            table,
            target_cols,
            assignments,
            child,
        } => LogicalPlan::Update {
            table,
            target_cols,
            assignments,
            child: Box::new(normalize_opts(*child, rewrite_semi)),
        },
        LogicalPlan::Delete {
            table,
            target_cols,
            child,
        } => LogicalPlan::Delete {
            table,
            target_cols,
            child: Box::new(normalize_opts(*child, rewrite_semi)),
        },
        LogicalPlan::Insert { table, child } => LogicalPlan::Insert {
            table,
            child: Box::new(normalize_opts(*child, rewrite_semi)),
        },
        leaf => leaf,
    }
}

/// If the predicate is a single equality `l_expr = r_col` with `r_col` a
/// bare column of `right` and the other side referencing only `left`,
/// return that right column (the semi-join rewrite precondition).
fn single_right_equi_col(pred: &Expr, left: &LogicalPlan, right: &LogicalPlan) -> Option<ColRef> {
    let conjuncts = split_conjuncts(pred);
    if conjuncts.len() != 1 {
        return None;
    }
    let Expr::Cmp {
        op: mpp_expr::CmpOp::Eq,
        left: a,
        right: b,
    } = &conjuncts[0]
    else {
        return None;
    };
    let lcols: BTreeSet<ColRef> = left.output_cols().into_iter().collect();
    let rcols: BTreeSet<ColRef> = right.output_cols().into_iter().collect();
    let a_cols = collect_columns(a);
    match (a.as_ref(), b.as_ref()) {
        (_, Expr::Col(rc))
            if rcols.contains(rc)
                && !a_cols.is_empty()
                && a_cols.iter().all(|c| lcols.contains(c)) =>
        {
            Some(rc.clone())
        }
        (Expr::Col(rc), _)
            if rcols.contains(rc) && {
                let b_cols = collect_columns(b);
                !b_cols.is_empty() && b_cols.iter().all(|c| lcols.contains(c))
            } =>
        {
            Some(rc.clone())
        }
        _ => None,
    }
}

/// Push a selection's conjuncts as deep as their column references allow.
fn push_select(pred: Expr, child: LogicalPlan) -> LogicalPlan {
    match child {
        LogicalPlan::Join {
            join_type,
            pred: jpred,
            left,
            right,
        } => {
            let lcols: BTreeSet<ColRef> = left.output_cols().into_iter().collect();
            let rcols: BTreeSet<ColRef> = right.output_cols().into_iter().collect();
            let mut left = *left;
            let mut right = *right;
            let mut keep = Vec::new();
            for c in split_conjuncts(&pred) {
                let cols = collect_columns(&c);
                let all_left = !cols.is_empty() && cols.iter().all(|x| lcols.contains(x));
                let all_right = !cols.is_empty() && cols.iter().all(|x| rcols.contains(x));
                match join_type {
                    // Above an inner join, either side accepts its own
                    // conjuncts.
                    JoinType::Inner if all_left => left = push_select(c, left),
                    JoinType::Inner if all_right => right = push_select(c, right),
                    // Semi/anti/outer joins output left columns only (or
                    // null-extend the right), so only left-side pushes are
                    // safe.
                    JoinType::LeftSemi | JoinType::LeftAnti | JoinType::LeftOuter if all_left => {
                        left = push_select(c, left)
                    }
                    _ => keep.push(c),
                }
            }
            // For inner joins the remaining conjuncts fold into the join
            // predicate itself (they may be equi-join keys); for other
            // join types they must stay above.
            if join_type == JoinType::Inner {
                let mut jconj = split_conjuncts(&jpred);
                jconj.extend(keep);
                LogicalPlan::Join {
                    join_type,
                    pred: simplify(&Expr::and(jconj)),
                    left: Box::new(left),
                    right: Box::new(right),
                }
            } else {
                let joined = LogicalPlan::Join {
                    join_type,
                    pred: jpred,
                    left: Box::new(left),
                    right: Box::new(right),
                };
                wrap_select(keep, joined)
            }
        }
        LogicalPlan::Select { pred: inner, child } => {
            // Merge adjacent selects, then retry the push with the union.
            let mut conj = split_conjuncts(&pred);
            conj.extend(split_conjuncts(&inner));
            push_select(Expr::and(conj), *child)
        }
        other => wrap_select(split_conjuncts(&pred), other),
    }
}

fn wrap_select(conjuncts: Vec<Expr>, child: LogicalPlan) -> LogicalPlan {
    if conjuncts.is_empty() {
        child
    } else {
        LogicalPlan::Select {
            pred: Expr::and(conjuncts),
            child: Box::new(child),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_catalog::builders::range_parts_equal_width;
    use mpp_catalog::{TableDesc, TableStats};
    use mpp_common::{Column, DataType, Datum, Schema};
    use mpp_plan::explain;

    /// R(a, b) hash-distributed on a, partitioned on b into `parts` ranges
    /// over [0, parts*10); S(a, b) hash-distributed on a, unpartitioned.
    fn rs_catalog(parts: u32, r_rows: u64, s_rows: u64) -> (Catalog, TableOid, TableOid) {
        let cat = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("b", DataType::Int32),
        ]);
        let r = cat.allocate_table_oid();
        let first = cat.allocate_part_oids(parts);
        cat.register(TableDesc {
            oid: r,
            name: "r".into(),
            schema: schema.clone(),
            distribution: Distribution::Hashed(vec![0]),
            partitioning: Some(
                range_parts_equal_width(
                    1,
                    Datum::Int32(0),
                    Datum::Int32(parts as i32 * 10),
                    parts as usize,
                    first,
                )
                .unwrap(),
            ),
        })
        .unwrap();
        cat.set_stats(r, TableStats::new(r_rows));
        let s = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid: s,
            name: "s".into(),
            schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: None,
        })
        .unwrap();
        cat.set_stats(s, TableStats::new(s_rows));
        (cat, r, s)
    }

    fn get(cat: &Catalog, oid: TableOid, ids: &[u32]) -> LogicalPlan {
        let desc = cat.table(oid).unwrap();
        LogicalPlan::Get {
            table: oid,
            table_name: desc.name.clone(),
            output: desc
                .schema
                .columns()
                .iter()
                .zip(ids)
                .map(|(c, &id)| ColRef::new(id, c.name.as_str()))
                .collect(),
        }
    }

    #[test]
    fn simple_selection_query_plans_with_static_selector() {
        let (cat, r, _) = rs_catalog(10, 100_000, 100);
        let opt = Optimizer::new(cat.clone(), OptimizerConfig::default());
        let rb = ColRef::new(2, "b");
        let logical = LogicalPlan::Select {
            pred: Expr::lt(Expr::col(rb), Expr::lit(30i32)),
            child: Box::new(get(&cat, r, &[1, 2])),
        };
        let plan = opt.optimize(&logical).unwrap();
        let text = explain(&plan);
        assert_eq!(plan.count_op("PartitionSelector"), 1, "{text}");
        assert_eq!(plan.count_op("DynamicScan"), 1, "{text}");
        assert_eq!(plan.count_op("Sequence"), 1, "{text}");
        // Root gather present.
        assert!(text.starts_with("Gather Motion"), "{text}");
        validate_selector_pairing(&plan).unwrap();
    }

    #[test]
    fn join_on_partition_key_produces_dpe_plan() {
        // select * from R, S where R.b = S.b and S.a < 100  (paper §4.4.2)
        let (cat, r, s) = rs_catalog(100, 1_000_000, 1_000);
        let opt = Optimizer::new(cat.clone(), OptimizerConfig::default());
        let (ra, rb) = (ColRef::new(1, "a"), ColRef::new(2, "b"));
        let (sa, sb) = (ColRef::new(3, "a"), ColRef::new(4, "b"));
        let _ = ra;
        let logical = LogicalPlan::Select {
            pred: Expr::and(vec![
                Expr::eq(Expr::col(rb), Expr::col(sb.clone())),
                Expr::lt(Expr::col(sa), Expr::lit(100i32)),
            ]),
            child: Box::new(LogicalPlan::Join {
                join_type: JoinType::Inner,
                // Keep S as the join's outer side so the DynamicScan of R
                // sits on the inner side (the Figure 5(d) shape).
                pred: Expr::lit(true),
                left: Box::new(get(&cat, s, &[3, 4])),
                right: Box::new(get(&cat, r, &[1, 2])),
            }),
        };
        let plan = opt.optimize(&logical).unwrap();
        let text = explain(&plan);
        // The selector is a pass-through on the outer side with the join
        // predicate — dynamic partition elimination.
        assert_eq!(plan.count_op("PartitionSelector"), 1, "{text}");
        let mut dpe = false;
        plan.visit(&mut |p| {
            if let PhysicalPlan::PartitionSelector {
                child: Some(_),
                predicates,
                ..
            } = p
            {
                if predicates[0].is_some() {
                    dpe = true;
                }
            }
        });
        assert!(dpe, "expected pass-through DPE selector:\n{text}");
        validate_selector_pairing(&plan).unwrap();
    }

    /// R(a, b) hash-distributed on a, partitioned on b into 4 narrow
    /// ranges over [0, 40) plus a DEFAULT partition holding ~99% of the
    /// rows (per-partition counts as if ANALYZE ran); S(a, b)
    /// unpartitioned with a histogram putting every b inside [0, 40).
    fn skewed_catalog() -> (Catalog, TableOid, TableOid) {
        use mpp_catalog::{
            ColumnStats, HistogramBuilder, PartTree, PartitionLevel, PartitionPiece,
        };
        use mpp_expr::interval::Interval;
        let cat = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("b", DataType::Int32),
        ]);
        let r = cat.allocate_table_oid();
        let first = cat.allocate_part_oids(5);
        let mut pieces: Vec<PartitionPiece> = (0..4)
            .map(|i| {
                PartitionPiece::new(
                    format!("p{i}"),
                    IntervalSet::interval(Interval::half_open(
                        Datum::Int32(i * 10),
                        Datum::Int32((i + 1) * 10),
                    )),
                )
            })
            .collect();
        pieces.push(PartitionPiece::default_piece("pdefault"));
        let tree = PartTree::new(vec![PartitionLevel::new(1, pieces).unwrap()], first).unwrap();
        let leaf_oids: Vec<_> = tree.partition_expansion();
        cat.register(TableDesc {
            oid: r,
            name: "r".into(),
            schema: schema.clone(),
            distribution: Distribution::Hashed(vec![0]),
            partitioning: Some(tree),
        })
        .unwrap();
        let mut part_rows = std::collections::HashMap::new();
        for oid in &leaf_oids[..4] {
            part_rows.insert(*oid, 250u64);
        }
        part_rows.insert(leaf_oids[4], 90_000u64);
        cat.set_stats(r, TableStats::new(91_000).with_part_rows(part_rows));

        let s = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid: s,
            name: "s".into(),
            schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: None,
        })
        .unwrap();
        let mut hist = HistogramBuilder::new();
        for v in 0..1000 {
            hist.add(v % 40);
        }
        cat.set_stats(
            s,
            TableStats::new(1_000).with_column(
                1,
                ColumnStats::new(40)
                    .with_range(Datum::Int32(0), Datum::Int32(39))
                    .with_histogram(hist.finish().unwrap()),
            ),
        );
        (cat, r, s)
    }

    /// The skewed join: S outer, R inner, equi on the partition key b.
    fn skewed_join(cat: &Catalog, r: TableOid, s: TableOid) -> LogicalPlan {
        let (rb, sb) = (ColRef::new(2, "b"), ColRef::new(4, "b"));
        LogicalPlan::Join {
            join_type: JoinType::Inner,
            pred: Expr::eq(Expr::col(sb), Expr::col(rb)),
            left: Box::new(get(cat, s, &[3, 4])),
            right: Box::new(get(cat, r, &[1, 2])),
        }
    }

    #[test]
    fn skewed_partitions_specialize_into_append_branches() {
        let (cat, r, s) = skewed_catalog();
        let opt = Optimizer::new(cat.clone(), OptimizerConfig::default());
        let plan = opt.optimize(&skewed_join(&cat, r, s)).unwrap();
        let text = explain(&plan);
        assert_eq!(plan.count_op("Append"), 1, "{text}");
        assert_eq!(plan.count_op("DynamicScan"), 2, "{text}");
        assert_eq!(plan.count_op("PartitionSelector"), 2, "{text}");
        // Both branches restrict their scans to their own group.
        let mut restricts = Vec::new();
        plan.visit(&mut |p| {
            if let PhysicalPlan::DynamicScan {
                restrict: Some(oids),
                ..
            } = p
            {
                restricts.push(oids.len());
            }
        });
        restricts.sort_unstable();
        assert_eq!(restricts, vec![1, 4], "{text}");
        // The heavy branch keeps the big partition in place: its outer
        // side is filtered to the uncovered complement and never drags
        // the 90k-row partition through a Motion. The EXPLAIN carries the
        // per-group annotation.
        assert!(text.contains("group: 1 part(s)"), "{text}");
        assert!(text.contains("group: 4 part(s)"), "{text}");
        validate_selector_pairing(&plan).unwrap();
    }

    #[test]
    fn adaptive_off_keeps_uniform_join() {
        let (cat, r, s) = skewed_catalog();
        let opt = Optimizer::new(
            cat.clone(),
            OptimizerConfig {
                adaptive_plans: false,
                ..OptimizerConfig::default()
            },
        );
        let plan = opt.optimize(&skewed_join(&cat, r, s)).unwrap();
        let text = explain(&plan);
        assert_eq!(plan.count_op("Append"), 0, "{text}");
        assert_eq!(plan.count_op("DynamicScan"), 1, "{text}");
        validate_selector_pairing(&plan).unwrap();
    }

    #[test]
    fn uniform_partitions_do_not_specialize() {
        // Same shape but evenly loaded partitions: the skew gate must
        // keep the uniform plan.
        let (cat, r, s) = rs_catalog(5, 91_000, 1_000);
        let mut part_rows = std::collections::HashMap::new();
        for oid in cat.part_tree(r).unwrap().partition_expansion() {
            part_rows.insert(oid, 91_000 / 5);
        }
        cat.set_stats(r, TableStats::new(91_000).with_part_rows(part_rows));
        let opt = Optimizer::new(cat.clone(), OptimizerConfig::default());
        let plan = opt.optimize(&skewed_join(&cat, r, s)).unwrap();
        assert_eq!(plan.count_op("Append"), 0, "{}", explain(&plan));
    }

    #[test]
    fn disabling_partition_selection_strips_predicates() {
        let (cat, r, _) = rs_catalog(10, 10_000, 100);
        let opt = Optimizer::new(
            cat.clone(),
            OptimizerConfig {
                enable_partition_selection: false,
                ..OptimizerConfig::default()
            },
        );
        let rb = ColRef::new(2, "b");
        let logical = LogicalPlan::Select {
            pred: Expr::lt(Expr::col(rb), Expr::lit(30i32)),
            child: Box::new(get(&cat, r, &[1, 2])),
        };
        let plan = opt.optimize(&logical).unwrap();
        plan.visit(&mut |p| {
            if let PhysicalPlan::PartitionSelector { predicates, .. } = p {
                assert!(predicates.iter().all(Option::is_none));
            }
        });
    }

    #[test]
    fn normalization_pushes_predicates_below_join() {
        let (cat, r, s) = rs_catalog(10, 1000, 1000);
        let (rb, sa) = (ColRef::new(2, "b"), ColRef::new(3, "a"));
        let logical = LogicalPlan::Select {
            pred: Expr::and(vec![
                Expr::lt(Expr::col(rb.clone()), Expr::lit(30i32)),
                Expr::eq(Expr::col(sa.clone()), Expr::lit(5i32)),
            ]),
            child: Box::new(LogicalPlan::Join {
                join_type: JoinType::Inner,
                pred: Expr::eq(Expr::col(ColRef::new(1, "a")), Expr::col(sa.clone())),
                left: Box::new(get(&cat, r, &[1, 2])),
                right: Box::new(get(&cat, s, &[3, 4])),
            }),
        };
        let n = normalize(logical);
        // Both conjuncts sank below the join.
        match &n {
            LogicalPlan::Join { left, right, .. } => {
                assert!(matches!(left.as_ref(), LogicalPlan::Select { .. }));
                assert!(matches!(right.as_ref(), LogicalPlan::Select { .. }));
            }
            other => panic!("expected Join at top, got {}", other.name()),
        }
    }

    #[test]
    fn scalar_agg_gathers_before_aggregating() {
        let (cat, r, _) = rs_catalog(10, 1000, 100);
        let opt = Optimizer::new(cat.clone(), OptimizerConfig::default());
        let out = ColRef::new(50, "cnt");
        let logical = LogicalPlan::Agg {
            group_by: vec![],
            aggs: vec![mpp_plan::AggCall::count_star()],
            output: vec![out],
            child: Box::new(get(&cat, r, &[1, 2])),
        };
        let plan = opt.optimize(&logical).unwrap();
        let text = explain(&plan);
        // Singleton output: no root gather on top; Gather below the agg.
        assert!(text.contains("HashAgg"), "{text}");
        assert!(text.contains("Gather Motion"), "{text}");
        assert!(
            !text.starts_with("Gather"),
            "agg output is already singleton:\n{text}"
        );
    }

    #[test]
    fn grouped_agg_redistributes_when_not_colocated() {
        let (cat, r, _) = rs_catalog(10, 1000, 100);
        let opt = Optimizer::new(cat.clone(), OptimizerConfig::default());
        // Group by b, but r is distributed on a → redistribute.
        let rb = ColRef::new(2, "b");
        let logical = LogicalPlan::Agg {
            group_by: vec![rb.clone()],
            aggs: vec![mpp_plan::AggCall::count_star()],
            output: vec![rb, ColRef::new(50, "cnt")],
            child: Box::new(get(&cat, r, &[1, 2])),
        };
        let plan = opt.optimize(&logical).unwrap();
        let text = explain(&plan);
        assert!(text.contains("Redistribute Motion"), "{text}");
    }

    /// Star schema: fact F(f1, f2, f3) with `fact_rows` rows, three dims
    /// D1, D2, D3 (100/50/10 rows) joined on their first column. Returns
    /// the catalog and the bound Get nodes (colref ids 1.. in order).
    fn star_catalog(fact_rows: u64) -> (Catalog, LogicalPlan, Vec<LogicalPlan>) {
        let cat = Catalog::new();
        let fact_schema = Schema::new(vec![
            Column::new("f1", DataType::Int32),
            Column::new("f2", DataType::Int32),
            Column::new("f3", DataType::Int32),
        ]);
        let f = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid: f,
            name: "fact".into(),
            schema: fact_schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: None,
        })
        .unwrap();
        cat.set_stats(f, TableStats::new(fact_rows));
        let mut dims = Vec::new();
        for (i, rows) in [(1u32, 100u64), (2, 50), (3, 10)] {
            let schema = Schema::new(vec![
                Column::new("pk", DataType::Int32),
                Column::new("pay", DataType::Int32),
            ]);
            let d = cat.allocate_table_oid();
            cat.register(TableDesc {
                oid: d,
                name: format!("d{i}"),
                schema,
                distribution: Distribution::Hashed(vec![0]),
                partitioning: None,
            })
            .unwrap();
            cat.set_stats(d, TableStats::new(rows));
            dims.push(d);
        }
        let fact = get(&cat, f, &[1, 2, 3]);
        let dim_gets: Vec<LogicalPlan> = dims
            .iter()
            .enumerate()
            .map(|(i, &d)| get(&cat, d, &[10 + 2 * i as u32, 11 + 2 * i as u32]))
            .collect();
        (cat, fact, dim_gets)
    }

    /// Left-deep as written: ((F ⨝ D1) ⨝ D2) ⨝ D3 on fk_i = pk_i.
    fn star_query(fact: &LogicalPlan, dims: &[LogicalPlan]) -> LogicalPlan {
        let mut plan = fact.clone();
        for (i, d) in dims.iter().enumerate() {
            let fk = ColRef::new(1 + i as u32, format!("f{}", i + 1));
            let pk = ColRef::new(10 + 2 * i as u32, "pk");
            plan = LogicalPlan::Join {
                join_type: JoinType::Inner,
                pred: Expr::eq(Expr::col(fk), Expr::col(pk)),
                left: Box::new(plan),
                right: Box::new(d.clone()),
            };
        }
        plan
    }

    /// Does the plan contain a HashJoin whose *left* (build) subtree roots
    /// a scan of `name`?
    fn builds_on(plan: &PhysicalPlan, name: &str) -> bool {
        fn roots_scan(p: &PhysicalPlan, name: &str) -> bool {
            match p {
                PhysicalPlan::TableScan { table_name, .. }
                | PhysicalPlan::DynamicScan { table_name, .. } => table_name == name,
                PhysicalPlan::Filter { child, .. }
                | PhysicalPlan::Project { child, .. }
                | PhysicalPlan::Motion { child, .. } => roots_scan(child, name),
                _ => false,
            }
        }
        let mut found = false;
        plan.visit(&mut |p| {
            if let PhysicalPlan::HashJoin { left, .. } = p {
                if roots_scan(left, name) {
                    found = true;
                }
            }
        });
        found
    }

    #[test]
    fn join_order_search_moves_fact_off_the_build_side() {
        let (cat, fact, dims) = star_catalog(1_000_000);
        let logical = star_query(&fact, &dims);
        // As written, every build (left) side contains the 1M-row fact.
        let left_deep = Optimizer::new(
            cat.clone(),
            OptimizerConfig {
                join_order_search: false,
                ..OptimizerConfig::default()
            },
        )
        .optimize(&logical)
        .unwrap();
        assert!(
            builds_on(&left_deep, "fact"),
            "baseline should build on fact:\n{}",
            explain(&left_deep)
        );
        // The enumerator flips the fact onto the probe side everywhere.
        let searched = Optimizer::new(cat.clone(), OptimizerConfig::default())
            .optimize(&logical)
            .unwrap();
        let text = explain(&searched);
        assert_eq!(searched.count_op("HashJoin"), 3, "{text}");
        assert!(!builds_on(&searched, "fact"), "{text}");
    }

    #[test]
    fn join_order_search_preserves_output_column_order() {
        let (cat, fact, dims) = star_catalog(1_000_000);
        let logical = star_query(&fact, &dims);
        let expected = logical.output_cols();
        let plan = Optimizer::new(cat, OptimizerConfig::default())
            .optimize(&logical)
            .unwrap();
        assert_eq!(
            plan.output_cols(),
            expected,
            "reordered join must deliver the syntactic column order:\n{}",
            explain(&plan)
        );
    }

    #[test]
    fn join_order_search_keeps_dpe_on_partitioned_fact() {
        // R partitioned on b joined to two small relations; the enumerator
        // must keep R inner (motion-free) so DPE still applies.
        let (cat, r, s) = rs_catalog(100, 1_000_000, 1_000);
        // Third table: tiny T(a, b) hashed on a.
        let t = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid: t,
            name: "t".into(),
            schema: Schema::new(vec![
                Column::new("a", DataType::Int32),
                Column::new("b", DataType::Int32),
            ]),
            distribution: Distribution::Hashed(vec![0]),
            partitioning: None,
        })
        .unwrap();
        cat.set_stats(t, TableStats::new(50));
        let (rb, sa, sb) = (
            ColRef::new(2, "b"),
            ColRef::new(3, "a"),
            ColRef::new(4, "b"),
        );
        let (ta, _tb) = (ColRef::new(5, "a"), ColRef::new(6, "b"));
        // select * from t, s, r where t.a = s.a and s.b = r.b and s.a < 100
        let logical = LogicalPlan::Select {
            pred: Expr::and(vec![
                Expr::eq(Expr::col(ta), Expr::col(sa.clone())),
                Expr::eq(Expr::col(sb), Expr::col(rb)),
                Expr::lt(Expr::col(sa), Expr::lit(100i32)),
            ]),
            child: Box::new(LogicalPlan::Join {
                join_type: JoinType::Inner,
                pred: Expr::lit(true),
                left: Box::new(LogicalPlan::Join {
                    join_type: JoinType::Inner,
                    pred: Expr::lit(true),
                    left: Box::new(get(&cat, t, &[5, 6])),
                    right: Box::new(get(&cat, s, &[3, 4])),
                }),
                right: Box::new(get(&cat, r, &[1, 2])),
            }),
        };
        let opt = Optimizer::new(cat.clone(), OptimizerConfig::default());
        let plan = opt.optimize(&logical).unwrap();
        let text = explain(&plan);
        let mut dpe = false;
        plan.visit(&mut |p| {
            if let PhysicalPlan::PartitionSelector {
                child: Some(_),
                predicates,
                ..
            } = p
            {
                if predicates.iter().any(Option::is_some) {
                    dpe = true;
                }
            }
        });
        assert!(dpe, "expected DPE selector to survive reordering:\n{text}");
        validate_selector_pairing(&plan).unwrap();
    }

    #[test]
    fn grouped_agg_stays_local_when_colocated() {
        let (cat, r, _) = rs_catalog(10, 1000, 100);
        let opt = Optimizer::new(cat.clone(), OptimizerConfig::default());
        // Group by a = the distribution key: no redistribute needed.
        let ra = ColRef::new(1, "a");
        let logical = LogicalPlan::Agg {
            group_by: vec![ra.clone()],
            aggs: vec![mpp_plan::AggCall::count_star()],
            output: vec![ra, ColRef::new(50, "cnt")],
            child: Box::new(get(&cat, r, &[1, 2])),
        };
        let plan = opt.optimize(&logical).unwrap();
        let text = explain(&plan);
        assert!(!text.contains("Redistribute Motion"), "{text}");
    }
}
