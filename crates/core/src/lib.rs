//! # mpp-core
//!
//! The paper's primary contribution: query optimization over partitioned
//! tables in an MPP system, as implemented in Orca / Greenplum
//! ("Optimizing Queries over Partitioned Tables in MPP Systems",
//! SIGMOD 2014).
//!
//! The crate provides two cooperating entry points:
//!
//! * [`placement`] — the literal §2.3 algorithms: given a physical
//!   operator tree containing [`mpp_plan::PhysicalPlan::DynamicScan`]s,
//!   compute where every `PartitionSelector` goes
//!   ([`placement::place_partition_selectors`], Algorithms 1–4, including
//!   the multi-level extension of §2.4);
//! * [`optimizer`] — the full pipeline from a bound [`mpp_plan::LogicalPlan`]
//!   to an executable [`mpp_plan::PhysicalPlan`]: normalization, join
//!   implementation, Motion placement for distribution, PartitionSelector
//!   placement, and DML planning. Its cost-based core is [`memo`], a
//!   Cascades-style Memo with optimization requests carrying *distribution*
//!   and *partition propagation* requirements, `Motion` and
//!   `PartitionSelector` as property enforcers, and the §3.1 ordering
//!   restriction (no Motion between a selector and its paired scan).
//!
//! Supporting modules: [`spec`] (the `PartSelectorSpec` of Figures 7/11),
//! [`cardinality`] and [`cost`] (estimation), [`validate`] (§3.1 plan
//! validity checking).

pub mod cardinality;
pub mod cost;
pub mod estimate;
pub mod memo;
pub mod optimizer;
pub mod placement;
pub mod spec;
pub mod validate;

pub use estimate::{estimate_plan, explain_with_estimates, PlanEstimates};
pub use optimizer::{Optimizer, OptimizerConfig};
pub use placement::place_partition_selectors;
pub use spec::PartSelectorSpec;
pub use validate::validate_selector_pairing;
