//! Helpers shared by integration tests, examples and benches.

use crate::MppDb;
use mpp_catalog::builders::{list_level, monthly_range_level, monthly_range_parts};
use mpp_catalog::{Distribution, PartTree, TableDesc};
use mpp_common::{Column, DataType, Datum, Result, Row, Schema, TableOid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sort rows into a canonical order so bags can be compared.
pub fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
    rows
}

/// Do two results contain the same bag of rows?
pub fn same_bag(a: Vec<Row>, b: Vec<Row>) -> bool {
    sorted(a) == sorted(b)
}

/// Bag comparison tolerating floating-point summation-order differences:
/// floats are equal within a relative epsilon, everything else exactly.
pub fn approx_same_bag(a: Vec<Row>, b: Vec<Row>) -> bool {
    let (a, b) = (sorted(a), sorted(b));
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(&b).all(|(ra, rb)| {
        ra.len() == rb.len()
            && ra
                .values()
                .iter()
                .zip(rb.values())
                .all(|(x, y)| match (x, y) {
                    (Datum::Float64(x), Datum::Float64(y)) => {
                        let scale = x.abs().max(y.abs()).max(1.0);
                        (x - y).abs() <= 1e-9 * scale
                    }
                    _ => x == y,
                })
    })
}

/// The paper's Figure 1 schema: `orders(o_id, amount, date)` partitioned
/// into 24 monthly partitions covering 2012–2013, populated with `rows`
/// seeded random orders. Returns the table OID.
pub fn setup_orders(db: &MppDb, rows: usize, seed: u64) -> Result<TableOid> {
    let cat = db.catalog();
    let schema = Schema::new(vec![
        Column::new("o_id", DataType::Int64).not_null(),
        Column::new("amount", DataType::Float64).not_null(),
        Column::new("date", DataType::Date).not_null(),
    ]);
    let oid = cat.allocate_table_oid();
    let first = cat.allocate_part_oids(24);
    cat.register(TableDesc {
        oid,
        name: "orders".into(),
        schema,
        distribution: Distribution::Hashed(vec![0]),
        partitioning: Some(monthly_range_parts(2, 2012, 1, 24, first)?),
    })?;
    let lo = mpp_common::value::days_from_civil(2012, 1, 1);
    let hi = mpp_common::value::days_from_civil(2014, 1, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows).map(|i| {
        Row::new(vec![
            Datum::Int64(i as i64 + 1),
            Datum::Float64(rng.gen_range(100..100_000) as f64 / 100.0),
            Datum::Date(rng.gen_range(lo..hi)),
        ])
    });
    db.storage().insert(oid, data)?;
    db.storage().analyze(oid)?;
    Ok(oid)
}

/// The paper's Figure 9 schema: `orders_ml(o_id, amount, date, region)`
/// partitioned two levels deep — 24 monthly date ranges × the given
/// regions (categorical).
pub fn setup_orders_multilevel(
    db: &MppDb,
    regions: &[&str],
    rows: usize,
    seed: u64,
) -> Result<TableOid> {
    let cat = db.catalog();
    let schema = Schema::new(vec![
        Column::new("o_id", DataType::Int64).not_null(),
        Column::new("amount", DataType::Float64).not_null(),
        Column::new("date", DataType::Date).not_null(),
        Column::new("region", DataType::Utf8).not_null(),
    ]);
    let oid = cat.allocate_table_oid();
    let leaves = 24 * regions.len() as u32;
    let first = cat.allocate_part_oids(leaves);
    let region_level = list_level(
        3,
        regions
            .iter()
            .map(|r| (r.to_string(), vec![Datum::str(*r)]))
            .collect(),
        false,
    )?;
    let tree = PartTree::new(
        vec![monthly_range_level(2, 2012, 1, 24)?, region_level],
        first,
    )?;
    cat.register(TableDesc {
        oid,
        name: "orders_ml".into(),
        schema,
        distribution: Distribution::Hashed(vec![0]),
        partitioning: Some(tree),
    })?;
    let lo = mpp_common::value::days_from_civil(2012, 1, 1);
    let hi = mpp_common::value::days_from_civil(2014, 1, 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows).map(|i| {
        Row::new(vec![
            Datum::Int64(i as i64 + 1),
            Datum::Float64(rng.gen_range(100..100_000) as f64 / 100.0),
            Datum::Date(rng.gen_range(lo..hi)),
            Datum::str(regions[rng.gen_range(0..regions.len())]),
        ])
    });
    db.storage().insert(oid, data)?;
    db.storage().analyze(oid)?;
    Ok(oid)
}
