//! # mppart — partitioned-table query optimization for MPP systems
//!
//! A from-scratch Rust reproduction of *"Optimizing Queries over
//! Partitioned Tables in MPP Systems"* (SIGMOD 2014): the
//! `PartitionSelector` / `DynamicScan` model of the Orca optimizer, its
//! placement algorithms, static and dynamic partition elimination unified
//! over single- and multi-level partitioned tables, a Cascades-style Memo
//! with partition propagation as an enforced property, a legacy-planner
//! baseline, and a simulated MPP runtime to execute it all.
//!
//! The easiest entry point is [`MppDb`]:
//!
//! ```
//! use mppart::MppDb;
//!
//! let db = MppDb::new(4); // 4 segments
//! db.sql("").err(); // empty SQL is a parse error
//! ```
//!
//! See the `examples/` directory for full scenarios (the paper's Figure 2
//! and Figure 4 queries, multi-level partitioning, prepared statements).
//!
//! The underlying crates are re-exported for direct use:
//! [`catalog`], [`storage`], [`plan`], [`core`] (optimizer), [`legacy`]
//! (baseline planner), [`executor`], [`sql`], [`workloads`].

pub use mpp_catalog as catalog;
pub use mpp_common as common;
pub use mpp_core as core;
pub use mpp_executor as executor;
pub use mpp_expr as expr;
pub use mpp_legacy as legacy;
pub use mpp_plan as plan;
pub use mpp_sql as sql;
pub use mpp_storage as storage;
pub use mpp_workloads as workloads;

use mpp_catalog::Catalog;
use mpp_common::{Datum, Error, Result, Row};
use mpp_core::{Optimizer, OptimizerConfig};
pub use mpp_executor::ExecMode;
use mpp_executor::{execute_with_params_mode, ExecutionStats};
use mpp_expr::ColRefGenerator;
use mpp_legacy::LegacyPlanner;
use mpp_plan::{explain, PhysicalPlan};
use mpp_storage::Storage;

pub mod testing;

/// Result of running one SQL statement.
#[derive(Debug)]
pub struct QueryOutcome {
    pub rows: Vec<Row>,
    pub stats: ExecutionStats,
    /// The executed physical plan.
    pub plan: PhysicalPlan,
}

/// A self-contained in-process "MPP database": catalog + storage +
/// Orca-style optimizer + legacy planner + executor + SQL front-end.
pub struct MppDb {
    storage: Storage,
    optimizer: Optimizer,
    legacy: LegacyPlanner,
    gen: ColRefGenerator,
    exec_mode: ExecMode,
}

impl MppDb {
    /// A database with the given number of segments and default optimizer
    /// configuration.
    pub fn new(num_segments: usize) -> MppDb {
        MppDb::with_config(OptimizerConfig {
            num_segments,
            ..OptimizerConfig::default()
        })
    }

    /// A database with an explicit optimizer configuration.
    pub fn with_config(config: OptimizerConfig) -> MppDb {
        let catalog = Catalog::new();
        let storage = Storage::new(catalog.clone(), config.num_segments);
        MppDb {
            storage,
            optimizer: Optimizer::new(catalog.clone(), config),
            legacy: LegacyPlanner::new(catalog),
            gen: ColRefGenerator::new(),
            exec_mode: ExecMode::Sequential,
        }
    }

    /// Same database, executing queries under the given [`ExecMode`]
    /// (per-segment worker threads when `Parallel`).
    pub fn with_exec_mode(mut self, mode: ExecMode) -> MppDb {
        self.exec_mode = mode;
        self
    }

    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    pub fn catalog(&self) -> &Catalog {
        self.storage.catalog()
    }

    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    pub fn legacy_planner(&self) -> &LegacyPlanner {
        &self.legacy
    }

    /// Parse + bind a statement and produce the optimized physical plan
    /// (Orca-style pipeline).
    pub fn plan(&self, sql_text: &str) -> Result<PhysicalPlan> {
        let bound = mpp_sql::plan_sql(sql_text, self.catalog(), &self.gen)?;
        self.optimizer.optimize(&bound.plan)
    }

    /// Same statement through the legacy planner baseline.
    pub fn plan_legacy(&self, sql_text: &str) -> Result<PhysicalPlan> {
        let bound = mpp_sql::plan_sql(sql_text, self.catalog(), &self.gen)?;
        self.legacy.optimize(&bound.plan)
    }

    /// Run a SQL statement end to end. `EXPLAIN …` returns the plan text
    /// as single-column rows instead of executing.
    pub fn sql(&self, sql_text: &str) -> Result<QueryOutcome> {
        self.sql_with_params(sql_text, &[])
    }

    /// Run a SQL statement with prepared-statement parameters bound.
    pub fn sql_with_params(&self, sql_text: &str, params: &[Datum]) -> Result<QueryOutcome> {
        let stmt = mpp_sql::parse(sql_text)?;
        if let Some(outcome) = self.try_ddl(&stmt)? {
            return Ok(outcome);
        }
        let bound = mpp_sql::bind(&stmt, self.catalog(), &self.gen)?;
        if bound.param_count as usize > params.len() {
            return Err(Error::Execution(format!(
                "statement needs {} parameters, {} given",
                bound.param_count,
                params.len()
            )));
        }
        let plan = self.optimizer.optimize(&bound.plan)?;
        if bound.explain {
            let rows = explain(&plan)
                .lines()
                .map(|l| Row::new(vec![Datum::str(l)]))
                .collect();
            return Ok(QueryOutcome {
                rows,
                stats: ExecutionStats::default(),
                plan,
            });
        }
        let res = execute_with_params_mode(&self.storage, &plan, params, self.exec_mode)?;
        Ok(QueryOutcome {
            rows: res.rows,
            stats: res.stats,
            plan,
        })
    }

    /// Execute a SQL statement through the legacy planner (baseline
    /// comparison path).
    pub fn sql_legacy(&self, sql_text: &str) -> Result<QueryOutcome> {
        self.sql_legacy_with_params(sql_text, &[])
    }

    pub fn sql_legacy_with_params(&self, sql_text: &str, params: &[Datum]) -> Result<QueryOutcome> {
        let stmt = mpp_sql::parse(sql_text)?;
        if let Some(outcome) = self.try_ddl(&stmt)? {
            return Ok(outcome);
        }
        let bound = mpp_sql::bind(&stmt, self.catalog(), &self.gen)?;
        let plan = self.legacy.optimize(&bound.plan)?;
        if bound.explain {
            let rows = explain(&plan)
                .lines()
                .map(|l| Row::new(vec![Datum::str(l)]))
                .collect();
            return Ok(QueryOutcome {
                rows,
                stats: ExecutionStats::default(),
                plan,
            });
        }
        let res = execute_with_params_mode(&self.storage, &plan, params, self.exec_mode)?;
        Ok(QueryOutcome {
            rows: res.rows,
            stats: res.stats,
            plan,
        })
    }

    /// Execute DDL statements (CREATE TABLE / DROP TABLE); `None` when the
    /// statement is not DDL. DROP also truncates the table's storage.
    fn try_ddl(&self, stmt: &mpp_sql::Statement) -> Result<Option<QueryOutcome>> {
        use mpp_sql::Statement;
        match stmt {
            Statement::CreateTable { .. } => {
                mpp_sql::execute_ddl(stmt, self.catalog())?;
            }
            Statement::DropTable { .. } => {
                // Clear rows first, while the catalog still knows the table.
                if let Statement::DropTable { name } = stmt {
                    let oid = self.catalog().table_by_name(name)?.oid;
                    self.storage.truncate(oid)?;
                }
                mpp_sql::execute_ddl(stmt, self.catalog())?;
            }
            _ => return Ok(None),
        }
        Ok(Some(QueryOutcome {
            rows: Vec::new(),
            stats: ExecutionStats::default(),
            plan: PhysicalPlan::Values {
                rows: vec![],
                output: vec![],
            },
        }))
    }

    /// EXPLAIN text of the optimized plan.
    pub fn explain_sql(&self, sql_text: &str) -> Result<String> {
        Ok(explain(&self.plan(sql_text)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_workloads::{setup_rs, SynthConfig};

    #[test]
    fn sql_roundtrip_on_synthetic_schema() {
        let db = MppDb::new(4);
        setup_rs(db.storage(), &SynthConfig::default()).unwrap();
        let out = db.sql("SELECT count(*) FROM r WHERE b < 100").unwrap();
        assert_eq!(out.rows.len(), 1);
        // 10 of 100 partitions scanned.
        let r = db.catalog().table_by_name("r").unwrap();
        assert_eq!(out.stats.parts_scanned_for(r.oid), 10);
    }

    #[test]
    fn explain_returns_text() {
        let db = MppDb::new(4);
        setup_rs(db.storage(), &SynthConfig::default()).unwrap();
        let out = db.sql("EXPLAIN SELECT * FROM r WHERE b = 5").unwrap();
        let text: Vec<String> = out
            .rows
            .iter()
            .map(|r| r.values()[0].as_str().unwrap().to_string())
            .collect();
        assert!(text.iter().any(|l| l.contains("PartitionSelector")));
        assert!(text.iter().any(|l| l.contains("DynamicScan")));
    }

    #[test]
    fn missing_parameters_are_rejected() {
        let db = MppDb::new(2);
        setup_rs(db.storage(), &SynthConfig::default()).unwrap();
        let err = db.sql("SELECT * FROM r WHERE b = $1").unwrap_err();
        assert!(err.to_string().contains("parameters"));
    }

    #[test]
    fn parallel_mode_matches_sequential_through_sql() {
        let seq_db = MppDb::new(4);
        setup_rs(seq_db.storage(), &SynthConfig::default()).unwrap();
        let par_db = MppDb::new(4).with_exec_mode(ExecMode::Parallel);
        setup_rs(par_db.storage(), &SynthConfig::default()).unwrap();
        for q in [
            "SELECT count(*) FROM r WHERE b < 100",
            "SELECT * FROM r, s WHERE r.a = s.a AND s.b = 3",
        ] {
            let seq = seq_db.sql(q).unwrap();
            let par = par_db.sql(q).unwrap();
            let mut a = seq.rows;
            let mut b = par.rows;
            a.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
            b.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
            assert_eq!(a, b, "{q}");
            assert_eq!(seq.stats.parts_scanned, par.stats.parts_scanned, "{q}");
            assert_eq!(seq.stats.tuples_scanned, par.stats.tuples_scanned, "{q}");
        }
    }
}
