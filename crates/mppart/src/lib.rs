//! # mppart — partitioned-table query optimization for MPP systems
//!
//! A from-scratch Rust reproduction of *"Optimizing Queries over
//! Partitioned Tables in MPP Systems"* (SIGMOD 2014): the
//! `PartitionSelector` / `DynamicScan` model of the Orca optimizer, its
//! placement algorithms, static and dynamic partition elimination unified
//! over single- and multi-level partitioned tables, a Cascades-style Memo
//! with partition propagation as an enforced property, a legacy-planner
//! baseline, and a simulated MPP runtime to execute it all.
//!
//! The easiest entry point is [`MppDb`]:
//!
//! ```
//! use mppart::MppDb;
//!
//! let db = MppDb::new(4); // 4 segments
//! db.sql("").err(); // empty SQL is a parse error
//! ```
//!
//! See the `examples/` directory for full scenarios (the paper's Figure 2
//! and Figure 4 queries, multi-level partitioning, prepared statements).
//!
//! The underlying crates are re-exported for direct use:
//! [`catalog`], [`storage`], [`plan`], [`core`] (optimizer), [`legacy`]
//! (baseline planner), [`executor`], [`sql`], [`workloads`].

pub use mpp_catalog as catalog;
pub use mpp_common as common;
pub use mpp_core as core;
pub use mpp_executor as executor;
pub use mpp_expr as expr;
pub use mpp_legacy as legacy;
pub use mpp_plan as plan;
pub use mpp_sql as sql;
pub use mpp_storage as storage;
pub use mpp_workloads as workloads;

use mpp_catalog::Catalog;
use mpp_common::{Datum, Error, PartOid, Result, Row, TableOid};
use mpp_core::estimate::{estimate_plan, fmt as fmt_est};
use mpp_core::{explain_with_estimates, Optimizer, OptimizerConfig};
use mpp_executor::{execute_stream_sched, ExecutionStats, PreparedPlan};
pub use mpp_executor::{
    CancelToken, ExecEngine, ExecMode, ResultChunk, RowSink, SchedConfig, SchedPolicy, StreamResult,
};
use mpp_expr::ColRefGenerator;
use mpp_legacy::LegacyPlanner;
use mpp_plan::{explain_annotated, PhysicalPlan};
use mpp_storage::Storage;
use std::sync::Arc;

pub mod testing;

/// Which planner produced a physical plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Planner {
    /// The Orca-style Memo optimizer (the paper's subject).
    #[default]
    Orca,
    /// The legacy-planner baseline.
    Legacy,
}

/// Plan-cache observability for one statement: whether this execution
/// reused a cached plan, plus the cache-wide counters at completion.
/// Filled in by the session layer; `None` on direct [`MppDb`] calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheInfo {
    /// Did this statement reuse a cached plan?
    pub hit: bool,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub invalidations: u64,
}

/// Result of running one SQL statement.
#[derive(Debug)]
pub struct QueryOutcome {
    pub rows: Vec<Row>,
    pub stats: ExecutionStats,
    /// The executed physical plan (shared: cached plans hand out the same
    /// allocation to every execution).
    pub plan: Arc<PhysicalPlan>,
    /// Plan-cache counters when the statement ran through a session.
    pub cache: Option<CacheInfo>,
}

/// Result of *streaming* one SQL statement: the rows went through the
/// caller's sink, so only the statistics, plan and cache counters remain
/// here. Unlike [`QueryOutcome`], statistics survive errors — a
/// cancelled or failed query reports what it did before stopping, which
/// is what the network layer sends in an `Error` frame.
#[derive(Debug)]
pub struct StreamOutcome {
    pub stats: ExecutionStats,
    /// The executed physical plan; `None` when the statement failed
    /// before planning completed.
    pub plan: Option<Arc<PhysicalPlan>>,
    /// Plan-cache counters when the statement ran through a session.
    pub cache: Option<CacheInfo>,
    pub result: Result<()>,
}

impl StreamOutcome {
    /// An outcome for a statement that failed before execution started.
    pub fn failed(e: Error) -> StreamOutcome {
        StreamOutcome {
            stats: ExecutionStats::default(),
            plan: None,
            cache: None,
            result: Err(e),
        }
    }
}

/// A statement prepared against the catalog: parse, bind and optimize are
/// paid once at [`MppDb::prepare`] time; every [`MppDb::execute_prepared`]
/// binds fresh parameters, re-resolves partition OIDs through the plan's
/// `PartitionSelector`s, and reuses the executor's compiled-expression
/// templates ([`mpp_executor::PreparedPlan`]).
pub struct PreparedQuery {
    prepared: Arc<PreparedPlan>,
    param_count: u32,
    explain: bool,
    planner: Planner,
    catalog_version: u64,
    stats_version: u64,
    /// Per-table tuples the plan expected to read from storage, captured
    /// from the statistics *the plan was optimized against*. Runtime
    /// cardinality feedback compares these against the executor's
    /// `scan_rows` actuals — the current catalog can't serve that role,
    /// because a coarse insert-time refresh updates it without
    /// invalidating this plan.
    scan_estimates: Vec<(TableOid, u64)>,
}

impl PreparedQuery {
    pub fn plan(&self) -> &Arc<PhysicalPlan> {
        self.prepared.plan()
    }

    /// Exact number of `$n` parameters each execution must supply.
    pub fn param_count(&self) -> u32 {
        self.param_count
    }

    /// Is this an `EXPLAIN` statement (executions return plan text rows
    /// instead of running the plan)?
    pub fn is_explain(&self) -> bool {
        self.explain
    }

    pub fn planner(&self) -> Planner {
        self.planner
    }

    /// The catalog version the plan was optimized against. Stale handles
    /// (version no longer current) should be re-prepared after DDL.
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version
    }

    /// The statistics version the plan was costed against. ANALYZE bumps it,
    /// so cached plans re-optimize once fresher statistics exist.
    pub fn stats_version(&self) -> u64 {
        self.stats_version
    }

    /// Both planning inputs as one comparable epoch: (catalog, statistics).
    pub fn epoch(&self) -> (u64, u64) {
        (self.catalog_version, self.stats_version)
    }

    /// Expression sites lowered so far by executions of this handle.
    pub fn compiled_sites(&self) -> usize {
        self.prepared.compiled_sites()
    }

    /// The executor-level prepared plan (shared, cheap to clone).
    pub fn prepared_plan(&self) -> &Arc<PreparedPlan> {
        &self.prepared
    }

    /// Plan-time per-table scan cardinality estimates (see the field doc).
    pub fn scan_estimates(&self) -> &[(TableOid, u64)] {
        &self.scan_estimates
    }
}

/// Per-table tuples a plan expects to read from storage under the given
/// catalog statistics: full row count per `TableScan`, surviving-group
/// rows per restricted `DynamicScan`, per-partition rows per static
/// `PartScan`. Multiple scans of one table sum.
fn scan_estimates(plan: &PhysicalPlan, catalog: &Catalog) -> Vec<(TableOid, u64)> {
    fn walk(
        plan: &PhysicalPlan,
        catalog: &Catalog,
        acc: &mut std::collections::HashMap<TableOid, u64>,
    ) {
        match plan {
            PhysicalPlan::TableScan { table, .. } => {
                *acc.entry(*table).or_default() += catalog.stats(*table).row_count;
            }
            PhysicalPlan::DynamicScan {
                table, restrict, ..
            } => {
                let stats = catalog.stats(*table);
                let rows = restrict
                    .as_ref()
                    .and_then(|oids| stats.rows_in_parts(oids.iter()))
                    .unwrap_or(stats.row_count);
                *acc.entry(*table).or_default() += rows;
            }
            PhysicalPlan::PartScan { table, part, .. } => {
                let stats = catalog.stats(*table);
                let rows = stats
                    .rows_in_parts(std::iter::once(part))
                    .unwrap_or(stats.row_count);
                *acc.entry(*table).or_default() += rows;
            }
            _ => {}
        }
        for c in plan.children() {
            walk(c, catalog, acc);
        }
    }
    let mut acc = std::collections::HashMap::new();
    walk(plan, catalog, &mut acc);
    let mut v: Vec<_> = acc.into_iter().collect();
    v.sort_by_key(|(t, _)| t.raw());
    v
}

/// A self-contained in-process "MPP database": catalog + storage +
/// Orca-style optimizer + legacy planner + executor + SQL front-end.
pub struct MppDb {
    storage: Storage,
    optimizer: Optimizer,
    legacy: LegacyPlanner,
    gen: ColRefGenerator,
    exec_mode: ExecMode,
    exec_engine: ExecEngine,
    sched: SchedConfig,
}

impl MppDb {
    /// A database with the given number of segments and default optimizer
    /// configuration.
    pub fn new(num_segments: usize) -> MppDb {
        MppDb::with_config(OptimizerConfig {
            num_segments,
            ..OptimizerConfig::default()
        })
    }

    /// A database with an explicit optimizer configuration.
    pub fn with_config(config: OptimizerConfig) -> MppDb {
        let catalog = Catalog::new();
        let storage = Storage::new(catalog.clone(), config.num_segments);
        MppDb {
            storage,
            optimizer: Optimizer::new(catalog.clone(), config),
            legacy: LegacyPlanner::new(catalog),
            gen: ColRefGenerator::new(),
            exec_mode: ExecMode::Sequential,
            exec_engine: ExecEngine::default(),
            sched: SchedConfig::default(),
        }
    }

    /// Same database, executing queries under the given [`ExecMode`]
    /// (per-segment worker threads when `Parallel`).
    pub fn with_exec_mode(mut self, mode: ExecMode) -> MppDb {
        self.exec_mode = mode;
        self
    }

    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Same database, executing queries on the given [`ExecEngine`]
    /// (vectorized `Batch` by default; `Row` forces tuple-at-a-time).
    pub fn with_exec_engine(mut self, engine: ExecEngine) -> MppDb {
        self.exec_engine = engine;
        self
    }

    pub fn set_exec_engine(&mut self, engine: ExecEngine) {
        self.exec_engine = engine;
    }

    pub fn exec_engine(&self) -> ExecEngine {
        self.exec_engine
    }

    /// Same database, with an explicit morsel-scheduler configuration
    /// (worker count, decomposition policy, morsel size).
    pub fn with_sched_config(mut self, sched: SchedConfig) -> MppDb {
        self.sched = sched;
        self
    }

    pub fn set_sched_config(&mut self, sched: SchedConfig) {
        self.sched = sched;
    }

    pub fn sched_config(&self) -> SchedConfig {
        self.sched
    }

    /// Same database, with adaptive per-partition plan specialization and
    /// runtime cardinality feedback toggled (on by default).
    pub fn with_adaptive_plans(mut self, on: bool) -> MppDb {
        self.set_adaptive_plans(on);
        self
    }

    /// Toggle adaptive planning: per-partition join specialization in the
    /// optimizer plus post-execution cardinality feedback. Off, the
    /// optimizer costs one uniform strategy per join and executions never
    /// touch the feedback store — the differential baseline.
    pub fn set_adaptive_plans(&mut self, on: bool) {
        self.optimizer.set_adaptive_plans(on);
    }

    pub fn adaptive_plans(&self) -> bool {
        self.optimizer.config().adaptive_plans
    }

    pub fn catalog(&self) -> &Catalog {
        self.storage.catalog()
    }

    /// Current planning epoch: (catalog version, statistics version). A plan
    /// whose [`PreparedQuery::epoch`] differs was optimized against a schema
    /// or statistics snapshot that no longer holds.
    pub fn planning_epoch(&self) -> (u64, u64) {
        let cat = self.storage.catalog();
        (cat.version(), cat.stats_version())
    }

    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    pub fn legacy_planner(&self) -> &LegacyPlanner {
        &self.legacy
    }

    /// Parse + bind a statement and produce the optimized physical plan
    /// (Orca-style pipeline).
    pub fn plan(&self, sql_text: &str) -> Result<PhysicalPlan> {
        let bound = mpp_sql::plan_sql(sql_text, self.catalog(), &self.gen)?;
        self.optimizer.optimize(&bound.plan)
    }

    /// Same statement through the legacy planner baseline.
    pub fn plan_legacy(&self, sql_text: &str) -> Result<PhysicalPlan> {
        let bound = mpp_sql::plan_sql(sql_text, self.catalog(), &self.gen)?;
        self.legacy.optimize(&bound.plan)
    }

    /// Run a SQL statement end to end. `EXPLAIN …` returns the plan text
    /// as single-column rows instead of executing.
    pub fn sql(&self, sql_text: &str) -> Result<QueryOutcome> {
        self.sql_with_params(sql_text, &[])
    }

    /// Run a SQL statement with prepared-statement parameters bound.
    pub fn sql_with_params(&self, sql_text: &str, params: &[Datum]) -> Result<QueryOutcome> {
        self.run_sql(sql_text, params, Planner::Orca)
    }

    /// Execute a SQL statement through the legacy planner (baseline
    /// comparison path).
    pub fn sql_legacy(&self, sql_text: &str) -> Result<QueryOutcome> {
        self.sql_legacy_with_params(sql_text, &[])
    }

    pub fn sql_legacy_with_params(&self, sql_text: &str, params: &[Datum]) -> Result<QueryOutcome> {
        self.run_sql(sql_text, params, Planner::Legacy)
    }

    /// The single parse→DDL→bind→optimize→execute path behind both
    /// planner flavors (and the session layer): a streaming execution
    /// whose sink collects every chunk into the returned row vector.
    pub fn run_sql(
        &self,
        sql_text: &str,
        params: &[Datum],
        planner: Planner,
    ) -> Result<QueryOutcome> {
        let mut rows: Vec<Row> = Vec::new();
        let mut sink = |chunk: ResultChunk| {
            chunk.append_to(&mut rows);
            Ok(())
        };
        let out = self.stream_sql(sql_text, params, planner, &CancelToken::new(), &mut sink);
        out.result?;
        Ok(QueryOutcome {
            rows,
            stats: out.stats,
            plan: out
                .plan
                .expect("successful statement always carries a plan"),
            cache: out.cache,
        })
    }

    /// Streaming form of [`MppDb::run_sql`]: result chunks flow through
    /// `sink` as segments finish, `cancel` stops execution at the next
    /// block boundary, and the returned [`StreamOutcome`] keeps partial
    /// statistics even on error. DDL and `EXPLAIN` behave exactly as in
    /// the collecting path (DDL emits no chunks; EXPLAIN emits its plan
    /// text as one chunk without executing).
    pub fn stream_sql(
        &self,
        sql_text: &str,
        params: &[Datum],
        planner: Planner,
        cancel: &CancelToken,
        sink: &mut RowSink<'_>,
    ) -> StreamOutcome {
        // Everything up to execution fails without stats, as before.
        let planned = (|| {
            let stmt = mpp_sql::parse(sql_text)?;
            if self.try_ddl(&stmt)?.is_some() {
                return Ok(None);
            }
            let bound = mpp_sql::bind(&stmt, self.catalog(), &self.gen)?;
            check_param_arity(bound.param_count, params.len())?;
            let plan = Arc::new(self.optimize_with(planner, &bound.plan)?);
            Ok(Some((plan, bound.explain)))
        })();
        let (plan, explain) = match planned {
            Err(e) => return StreamOutcome::failed(e),
            // DDL already executed inside try_ddl; it has no result rows.
            Ok(None) => {
                return StreamOutcome {
                    stats: ExecutionStats::default(),
                    plan: Some(Arc::new(PhysicalPlan::Values {
                        rows: vec![],
                        output: vec![],
                    })),
                    cache: None,
                    result: Ok(()),
                }
            }
            Ok(Some(p)) => p,
        };
        if explain {
            let result = sink(ResultChunk::Rows(text_rows(&self.explain_plan(&plan))));
            return StreamOutcome {
                stats: ExecutionStats::default(),
                plan: Some(plan),
                cache: None,
                result,
            };
        }
        let estimates = self
            .adaptive_plans()
            .then(|| scan_estimates(&plan, self.catalog()));
        let out = execute_stream_sched(
            &self.storage,
            &plan,
            params,
            self.exec_mode,
            self.exec_engine,
            &self.sched,
            cancel,
            sink,
        );
        if out.result.is_ok() {
            if let Some(est) = &estimates {
                self.record_feedback(est, &out.stats);
            }
        }
        StreamOutcome {
            stats: out.stats,
            plan: Some(plan),
            cache: None,
            result: out.result,
        }
    }

    /// Prepare a statement: parse, bind and optimize once. The returned
    /// handle executes many times via [`MppDb::execute_prepared`] with
    /// fresh parameters each call. DDL cannot be prepared.
    pub fn prepare(&self, sql_text: &str) -> Result<PreparedQuery> {
        self.prepare_with(sql_text, Planner::Orca)
    }

    /// [`MppDb::prepare`] with an explicit planner flavor.
    pub fn prepare_with(&self, sql_text: &str, planner: Planner) -> Result<PreparedQuery> {
        let stmt = mpp_sql::parse(sql_text)?;
        if is_ddl(&stmt) {
            return Err(Error::Unsupported(
                "DDL statements cannot be prepared; run them directly".into(),
            ));
        }
        // Read the versions before binding: a concurrent DDL or ANALYZE
        // between this read and the optimize pass makes the handle *stale*
        // (its epoch no longer current), never silently wrong.
        let catalog_version = self.catalog().version();
        let stats_version = self.catalog().stats_version();
        let bound = mpp_sql::bind(&stmt, self.catalog(), &self.gen)?;
        let plan = Arc::new(self.optimize_with(planner, &bound.plan)?);
        let scan_estimates = scan_estimates(&plan, self.catalog());
        Ok(PreparedQuery {
            prepared: Arc::new(PreparedPlan::new(plan)),
            param_count: bound.param_count,
            explain: bound.explain,
            planner,
            catalog_version,
            stats_version,
            scan_estimates,
        })
    }

    /// Execute a prepared statement with this call's parameter bindings.
    pub fn execute_prepared(&self, q: &PreparedQuery, params: &[Datum]) -> Result<QueryOutcome> {
        let mut rows: Vec<Row> = Vec::new();
        let mut sink = |chunk: ResultChunk| {
            chunk.append_to(&mut rows);
            Ok(())
        };
        let out = self.stream_prepared(q, params, &CancelToken::new(), &mut sink);
        out.result?;
        Ok(QueryOutcome {
            rows,
            stats: out.stats,
            plan: out.plan.expect("prepared statement always carries a plan"),
            cache: out.cache,
        })
    }

    /// Streaming form of [`MppDb::execute_prepared`].
    pub fn stream_prepared(
        &self,
        q: &PreparedQuery,
        params: &[Datum],
        cancel: &CancelToken,
        sink: &mut RowSink<'_>,
    ) -> StreamOutcome {
        let plan = Arc::clone(q.prepared.plan());
        if let Err(e) = check_param_arity(q.param_count, params.len()) {
            return StreamOutcome::failed(e);
        }
        if q.explain {
            let result = sink(ResultChunk::Rows(text_rows(&self.explain_plan(&plan))));
            return StreamOutcome {
                stats: ExecutionStats::default(),
                plan: Some(plan),
                cache: None,
                result,
            };
        }
        let out = q.prepared.execute_stream_sched(
            &self.storage,
            params,
            self.exec_mode,
            self.exec_engine,
            &self.sched,
            cancel,
            sink,
        );
        if out.result.is_ok() && self.adaptive_plans() {
            self.record_feedback(&q.scan_estimates, &out.stats);
        }
        StreamOutcome {
            stats: out.stats,
            plan: Some(plan),
            cache: None,
            result: out.result,
        }
    }

    /// Fold one execution's observed scan cardinalities back into the
    /// catalog. `estimates` are plan-time per-table expectations
    /// ([`PreparedQuery::scan_estimates`]); `stats.scan_rows` are the
    /// actuals. Only *underestimates* count as misses: a dynamic scan
    /// legitimately reads fewer tuples than its static estimate (runtime
    /// partition elimination) and early-terminating operators stop scans
    /// short, but reading 10× *more* than planned is unambiguous
    /// evidence of stale statistics. Returns whether cached plans were
    /// invalidated (the catalog bumped its stats version).
    pub fn record_feedback(&self, estimates: &[(TableOid, u64)], stats: &ExecutionStats) -> bool {
        let mut invalidated = false;
        for (table, est) in estimates {
            if let Some(&actual) = stats.scan_rows.get(table) {
                if actual > *est {
                    invalidated |= self.catalog().record_feedback(*table, *est, actual);
                }
            }
        }
        invalidated
    }

    fn optimize_with(
        &self,
        planner: Planner,
        plan: &mpp_plan::LogicalPlan,
    ) -> Result<PhysicalPlan> {
        match planner {
            Planner::Orca => self.optimizer.optimize(plan),
            Planner::Legacy => self.legacy.optimize(plan),
        }
    }

    /// Execute DDL statements (CREATE / DROP / ALTER TABLE); `None` when
    /// the statement is not DDL. DROP also truncates the table's storage,
    /// and ALTER … DROP PARTITION removes the dropped leaves' rows.
    fn try_ddl(&self, stmt: &mpp_sql::Statement) -> Result<Option<QueryOutcome>> {
        use mpp_sql::Statement;
        match stmt {
            Statement::CreateTable { .. } => {
                mpp_sql::execute_ddl(stmt, self.catalog())?;
            }
            Statement::DropTable { .. } => {
                // Clear rows first, while the catalog still knows the table.
                if let Statement::DropTable { name } = stmt {
                    let oid = self.catalog().table_by_name(name)?.oid;
                    self.storage.truncate(oid)?;
                }
                mpp_sql::execute_ddl(stmt, self.catalog())?;
            }
            Statement::AlterTable { table, .. } => {
                let before = self
                    .catalog()
                    .table_by_name(table)?
                    .part_tree()?
                    .partition_expansion();
                mpp_sql::execute_ddl(stmt, self.catalog())?;
                let after: std::collections::HashSet<PartOid> = self
                    .catalog()
                    .table_by_name(table)?
                    .part_tree()?
                    .partition_expansion()
                    .into_iter()
                    .collect();
                let dropped: Vec<PartOid> =
                    before.into_iter().filter(|p| !after.contains(p)).collect();
                if !dropped.is_empty() {
                    self.storage.drop_parts(&dropped);
                }
            }
            Statement::Analyze { table } => {
                // One streaming pass over the table's blocks: row counts,
                // per-partition counts, per-column NDV / nulls / min-max /
                // equi-depth histograms. Writing the stats bumps the
                // catalog's stats version, invalidating cached plans.
                let oid = self.catalog().table_by_name(table)?.oid;
                self.storage.analyze(oid)?;
            }
            _ => return Ok(None),
        }
        Ok(Some(QueryOutcome {
            rows: Vec::new(),
            stats: ExecutionStats::default(),
            plan: Arc::new(PhysicalPlan::Values {
                rows: vec![],
                output: vec![],
            }),
            cache: None,
        }))
    }

    /// EXPLAIN text of the optimized plan, with per-operator estimated
    /// rows and cumulative estimated cost.
    pub fn explain_sql(&self, sql_text: &str) -> Result<String> {
        Ok(self.explain_plan(&self.plan(sql_text)?))
    }

    fn explain_plan(&self, plan: &PhysicalPlan) -> String {
        explain_with_estimates(plan, self.catalog(), self.storage.num_segments())
    }

    /// Run the statement, then render its plan with estimated *and*
    /// actual figures side by side — result rows at the root, partitions
    /// scanned at each DynamicScan — so misestimates that misorder joins
    /// or defeat partition elimination show up directly in test output.
    pub fn explain_analyze_sql(&self, sql_text: &str) -> Result<String> {
        let out = self.sql(sql_text)?;
        let ests = estimate_plan(&out.plan, self.catalog(), self.storage.num_segments());
        Ok(explain_annotated(&out.plan, &|node| {
            let e = ests.get(node)?;
            let mut note = format!("rows={} cost={}", fmt_est(e.rows), fmt_est(e.cost));
            if std::ptr::eq(node, out.plan.as_ref()) {
                note.push_str(&format!(" actual-rows={}", out.stats.rows_returned));
            }
            if let PhysicalPlan::DynamicScan { table, .. } = node {
                note.push_str(&format!(
                    " actual-parts={}",
                    out.stats.parts_scanned_for(*table)
                ));
            }
            Some(note)
        }))
    }
}

/// Every execution must supply exactly the parameters the statement
/// declares: too few would leave `$n` unbound at evaluation, and extras
/// are almost certainly a caller bug (historically they were silently
/// ignored).
fn check_param_arity(needed: u32, given: usize) -> Result<()> {
    if needed as usize != given {
        return Err(Error::Execution(format!(
            "statement takes exactly {needed} parameter(s), {given} given"
        )));
    }
    Ok(())
}

fn text_rows(text: &str) -> Vec<Row> {
    text.lines()
        .map(|l| Row::new(vec![Datum::str(l)]))
        .collect()
}

/// Is this statement DDL (CREATE / DROP / ALTER TABLE / ANALYZE, possibly
/// behind EXPLAIN)? DDL cannot be prepared or plan-cached. ANALYZE rides
/// along: it produces no rows and changes planning inputs (statistics),
/// so it takes the same non-preparable path.
pub fn is_ddl(stmt: &mpp_sql::Statement) -> bool {
    use mpp_sql::Statement;
    match stmt {
        Statement::CreateTable { .. }
        | Statement::DropTable { .. }
        | Statement::AlterTable { .. }
        | Statement::Analyze { .. } => true,
        Statement::Explain(inner) => is_ddl(inner),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_workloads::{setup_rs, SynthConfig};

    #[test]
    fn sql_roundtrip_on_synthetic_schema() {
        let db = MppDb::new(4);
        setup_rs(db.storage(), &SynthConfig::default()).unwrap();
        let out = db.sql("SELECT count(*) FROM r WHERE b < 100").unwrap();
        assert_eq!(out.rows.len(), 1);
        // 10 of 100 partitions scanned.
        let r = db.catalog().table_by_name("r").unwrap();
        assert_eq!(out.stats.parts_scanned_for(r.oid), 10);
    }

    #[test]
    fn explain_returns_text() {
        let db = MppDb::new(4);
        setup_rs(db.storage(), &SynthConfig::default()).unwrap();
        let out = db.sql("EXPLAIN SELECT * FROM r WHERE b = 5").unwrap();
        let text: Vec<String> = out
            .rows
            .iter()
            .map(|r| r.values()[0].as_str().unwrap().to_string())
            .collect();
        assert!(text.iter().any(|l| l.contains("PartitionSelector")));
        assert!(text.iter().any(|l| l.contains("DynamicScan")));
        // Every operator line carries its estimates.
        assert!(
            text.iter()
                .all(|l| l.contains("rows=") && l.contains("cost=")),
            "estimate annotations missing: {text:?}"
        );
    }

    #[test]
    fn explain_analyze_reports_estimated_vs_actual() {
        let db = MppDb::new(4);
        setup_rs(db.storage(), &SynthConfig::default()).unwrap();
        db.sql("ANALYZE r").unwrap();
        let text = db
            .explain_analyze_sql("SELECT count(*) FROM r WHERE b < 100")
            .unwrap();
        let root = text.lines().next().unwrap();
        assert!(
            root.contains("rows=") && root.contains("actual-rows=1"),
            "{root}"
        );
        let scan = text
            .lines()
            .find(|l| l.contains("DynamicScan"))
            .expect("partitioned scan in plan");
        // Static elimination keeps 10 of 100 partitions; with fresh
        // per-partition counts the estimate should agree with reality.
        assert!(scan.contains("actual-parts=10"), "{scan}");
    }

    #[test]
    fn missing_parameters_are_rejected() {
        let db = MppDb::new(2);
        setup_rs(db.storage(), &SynthConfig::default()).unwrap();
        let err = db.sql("SELECT * FROM r WHERE b = $1").unwrap_err();
        assert!(err.to_string().contains("parameter"), "{err}");
    }

    #[test]
    fn extra_parameters_are_rejected() {
        // The arity check is exact: extras used to be silently ignored.
        let db = MppDb::new(2);
        setup_rs(db.storage(), &SynthConfig::default()).unwrap();
        let two = [Datum::Int32(1), Datum::Int32(2)];
        let err = db
            .sql_with_params("SELECT * FROM r WHERE b = $1", &two)
            .unwrap_err();
        assert!(err.to_string().contains("exactly 1 parameter"), "{err}");
        // The legacy path shares the same entry point and check.
        let err = db
            .sql_legacy_with_params("SELECT * FROM r WHERE b = $1", &two)
            .unwrap_err();
        assert!(err.to_string().contains("exactly 1 parameter"), "{err}");
        assert!(db
            .sql_with_params("SELECT * FROM r WHERE b = $1", &[Datum::Int32(1)])
            .is_ok());
    }

    #[test]
    fn prepare_execute_matches_fresh_sql() {
        let db = MppDb::new(2);
        setup_rs(db.storage(), &SynthConfig::default()).unwrap();
        let q = db.prepare("SELECT count(*) FROM r WHERE b < $1").unwrap();
        assert_eq!(q.param_count(), 1);
        for v in [0, 100, 555] {
            let params = [Datum::Int32(v)];
            let prepared = db.execute_prepared(&q, &params).unwrap();
            let fresh = db
                .sql_with_params("SELECT count(*) FROM r WHERE b < $1", &params)
                .unwrap();
            assert_eq!(prepared.rows, fresh.rows, "v={v}");
            let r = db.catalog().table_by_name("r").unwrap();
            assert_eq!(
                prepared.stats.parts_scanned_for(r.oid),
                fresh.stats.parts_scanned_for(r.oid),
                "v={v}"
            );
        }
        // Expression templates compiled once, then reused.
        let sites = q.compiled_sites();
        assert!(sites > 0);
        db.execute_prepared(&q, &[Datum::Int32(77)]).unwrap();
        assert_eq!(q.compiled_sites(), sites);
        // Arity is exact here too, and DDL cannot be prepared.
        assert!(db.execute_prepared(&q, &[]).is_err());
        assert!(db.prepare("CREATE TABLE nope (a int)").is_err());
    }

    #[test]
    fn analyze_collects_stats_end_to_end() {
        let db = MppDb::new(2);
        db.sql(
            "CREATE TABLE m (k int, v int) \
             PARTITION BY RANGE (k) (START (0) END (30) EVERY (10))",
        )
        .unwrap();
        db.sql("INSERT INTO m VALUES (5, 1), (15, 1), (15, 2), (25, 1)")
            .unwrap();
        let oid = db.catalog().table_by_name("m").unwrap().oid;
        let sv = db.catalog().stats_version();
        let out = db.sql("ANALYZE m").unwrap();
        assert!(out.rows.is_empty());
        assert!(db.catalog().stats_version() > sv, "ANALYZE bumps stats");
        let stats = db.catalog().stats(oid);
        assert_eq!(stats.row_count, 4);
        assert_eq!(stats.part_rows.values().sum::<u64>(), 4);
        // k has 3 distinct values; its histogram covers all rows.
        assert_eq!(stats.columns.get(&0).unwrap().ndv, 3);
        let hist = stats.columns.get(&0).unwrap().histogram.as_ref().unwrap();
        assert_eq!(hist.total, 4);
        // ANALYZE cannot be prepared, like other DDL.
        assert!(db.prepare("ANALYZE m").is_err());
        // Unknown table errors cleanly.
        assert!(db.sql("ANALYZE nope").is_err());
    }

    #[test]
    fn alter_partition_ddl_end_to_end() {
        let db = MppDb::new(2);
        db.sql(
            "CREATE TABLE m (k int, v int) \
             PARTITION BY RANGE (k) (START (0) END (30) EVERY (10))",
        )
        .unwrap();
        db.sql("INSERT INTO m VALUES (5, 1), (15, 1), (25, 1)")
            .unwrap();
        // Rows outside every partition are rejected until the range exists.
        assert!(db.sql("INSERT INTO m VALUES (35, 1)").is_err());
        db.sql("ALTER TABLE m ADD PARTITION p4 START (30) END (40)")
            .unwrap();
        db.sql("INSERT INTO m VALUES (35, 1)").unwrap();
        let out = db.sql("SELECT count(*) FROM m").unwrap();
        assert_eq!(out.rows[0].values()[0], Datum::Int64(4));
        // Existing partitions kept their rows across the tree swap.
        let out = db.sql("SELECT count(*) FROM m WHERE k < 30").unwrap();
        assert_eq!(out.rows[0].values()[0], Datum::Int64(3));
        // Dropping a partition removes its rows from storage too.
        db.sql("ALTER TABLE m DROP PARTITION p4").unwrap();
        let out = db.sql("SELECT count(*) FROM m").unwrap();
        assert_eq!(out.rows[0].values()[0], Datum::Int64(3));
        assert!(db.sql("INSERT INTO m VALUES (35, 1)").is_err());
    }

    #[test]
    fn parallel_mode_matches_sequential_through_sql() {
        let seq_db = MppDb::new(4);
        setup_rs(seq_db.storage(), &SynthConfig::default()).unwrap();
        let par_db = MppDb::new(4).with_exec_mode(ExecMode::Parallel);
        setup_rs(par_db.storage(), &SynthConfig::default()).unwrap();
        for q in [
            "SELECT count(*) FROM r WHERE b < 100",
            "SELECT * FROM r, s WHERE r.a = s.a AND s.b = 3",
        ] {
            let seq = seq_db.sql(q).unwrap();
            let par = par_db.sql(q).unwrap();
            let mut a = seq.rows;
            let mut b = par.rows;
            a.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
            b.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
            assert_eq!(a, b, "{q}");
            assert_eq!(seq.stats.parts_scanned, par.stats.parts_scanned, "{q}");
            assert_eq!(seq.stats.tuples_scanned, par.stats.tuples_scanned, "{q}");
        }
    }
}
