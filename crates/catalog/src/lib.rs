//! # mpp-catalog
//!
//! Table metadata for the simulated MPP system:
//!
//! * [`TableDesc`] — schema, distribution spec, and optional partitioning,
//! * [`PartTree`] — single- and multi-level (hierarchical) partition
//!   descriptors: every leaf partition is a separate physical table with a
//!   check constraint of the form `pk ∈ ∪ᵢ(aᵢ, bᵢ)` (paper §3.2), stored
//!   here as an [`mpp_expr::IntervalSet`] per level,
//! * the four built-in partition-selection functions of paper Table 1
//!   (`partition_expansion`, `partition_selection`,
//!   `partition_constraints`, plus the predicate-driven `f*_T` as
//!   [`PartTree::select_partitions`]),
//! * [`Catalog`] — the shared registry the binder, optimizers and executor
//!   consult,
//! * [`TableStats`] — row counts and per-column summaries for the cost
//!   model.

pub mod builders;
pub mod catalog;
pub mod partition;
pub mod stats;
pub mod table;

pub use builders::{list_parts, monthly_range_parts, range_parts_equal_width};
pub use catalog::Catalog;
pub use partition::{LeafPart, PartTree, PartitionLevel, PartitionPiece};
pub use stats::{ColumnStats, Histogram, HistogramBuilder, TableStats, HISTOGRAM_BUCKETS};
pub use table::{Distribution, TableDesc};
