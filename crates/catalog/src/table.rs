//! Table descriptors and distribution specs.

use crate::partition::PartTree;
use mpp_common::{Error, Result, Schema, TableOid};
use serde::{Deserialize, Serialize};

/// How a table's rows are laid out across the MPP segments (paper §3.1).
/// Distribution is orthogonal to partitioning: a distributed table may also
/// be partitioned *within* each segment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Distribution {
    /// Rows hashed on the listed column indices.
    Hashed(Vec<usize>),
    /// A full copy on every segment.
    Replicated,
    /// All rows on a single segment (segment 0).
    Singleton,
}

impl Distribution {
    pub fn describe(&self, schema: &Schema) -> String {
        match self {
            Distribution::Hashed(cols) => {
                let names: Vec<&str> = cols
                    .iter()
                    .filter_map(|&i| schema.columns().get(i).map(|c| c.name.as_str()))
                    .collect();
                format!("hashed({})", names.join(", "))
            }
            Distribution::Replicated => "replicated".into(),
            Distribution::Singleton => "singleton".into(),
        }
    }
}

/// Full metadata of one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDesc {
    pub oid: TableOid,
    pub name: String,
    pub schema: Schema,
    pub distribution: Distribution,
    /// `None` for plain (unpartitioned) tables.
    pub partitioning: Option<PartTree>,
}

impl TableDesc {
    /// Validate internal consistency (key/distribution columns in range).
    pub fn validate(&self) -> Result<()> {
        let ncols = self.schema.len();
        if let Distribution::Hashed(cols) = &self.distribution {
            if cols.is_empty() {
                return Err(Error::InvalidMetadata(format!(
                    "table {}: hashed distribution needs at least one column",
                    self.name
                )));
            }
            if let Some(&bad) = cols.iter().find(|&&i| i >= ncols) {
                return Err(Error::InvalidMetadata(format!(
                    "table {}: distribution column #{bad} out of range",
                    self.name
                )));
            }
        }
        if let Some(tree) = &self.partitioning {
            for level in tree.levels() {
                if level.key_index >= ncols {
                    return Err(Error::InvalidMetadata(format!(
                        "table {}: partition key #{} out of range",
                        self.name, level.key_index
                    )));
                }
            }
        }
        Ok(())
    }

    pub fn is_partitioned(&self) -> bool {
        self.partitioning.is_some()
    }

    /// The partition tree, or an error for plain tables.
    pub fn part_tree(&self) -> Result<&PartTree> {
        self.partitioning.as_ref().ok_or_else(|| {
            Error::InvalidMetadata(format!("table {} is not partitioned", self.name))
        })
    }

    /// Number of leaf partitions (1 for plain tables, matching how the
    /// storage layer stores them).
    pub fn num_leaves(&self) -> usize {
        self.partitioning
            .as_ref()
            .map(|t| t.num_leaves())
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{PartitionLevel, PartitionPiece};
    use mpp_common::{Column, DataType, PartOid};
    use mpp_expr::interval::Interval;
    use mpp_expr::IntervalSet;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("b", DataType::Int32),
        ])
    }

    fn tree_on(col: usize) -> PartTree {
        let pieces = vec![PartitionPiece::new(
            "p0",
            IntervalSet::interval(Interval::half_open(
                mpp_common::Datum::Int32(0),
                mpp_common::Datum::Int32(10),
            )),
        )];
        PartTree::new(vec![PartitionLevel::new(col, pieces).unwrap()], PartOid(0)).unwrap()
    }

    #[test]
    fn validation_catches_bad_columns() {
        let good = TableDesc {
            oid: TableOid(1),
            name: "r".into(),
            schema: schema(),
            distribution: Distribution::Hashed(vec![0]),
            partitioning: Some(tree_on(1)),
        };
        assert!(good.validate().is_ok());
        let bad_dist = TableDesc {
            distribution: Distribution::Hashed(vec![5]),
            ..good.clone()
        };
        assert!(bad_dist.validate().is_err());
        let bad_part = TableDesc {
            partitioning: Some(tree_on(7)),
            ..good.clone()
        };
        assert!(bad_part.validate().is_err());
        let empty_hash = TableDesc {
            distribution: Distribution::Hashed(vec![]),
            ..good
        };
        assert!(empty_hash.validate().is_err());
    }

    #[test]
    fn distribution_describe() {
        assert_eq!(
            Distribution::Hashed(vec![1]).describe(&schema()),
            "hashed(b)"
        );
        assert_eq!(Distribution::Replicated.describe(&schema()), "replicated");
    }

    #[test]
    fn leaves_default_to_one() {
        let t = TableDesc {
            oid: TableOid(1),
            name: "r".into(),
            schema: schema(),
            distribution: Distribution::Replicated,
            partitioning: None,
        };
        assert_eq!(t.num_leaves(), 1);
        assert!(!t.is_partitioned());
        assert!(t.part_tree().is_err());
    }
}
