//! Table statistics for cardinality estimation and costing.

use mpp_common::Datum;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-column summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub ndv: u64,
    /// Fraction of NULLs, in `[0, 1]`.
    pub null_frac: f64,
    pub min: Option<Datum>,
    pub max: Option<Datum>,
}

impl ColumnStats {
    pub fn new(ndv: u64) -> ColumnStats {
        ColumnStats {
            ndv: ndv.max(1),
            null_frac: 0.0,
            min: None,
            max: None,
        }
    }

    pub fn with_range(mut self, min: Datum, max: Datum) -> ColumnStats {
        self.min = Some(min);
        self.max = Some(max);
        self
    }
}

/// Statistics of one table.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TableStats {
    pub row_count: u64,
    /// Column index → stats. Sparse: absent columns use defaults.
    pub columns: HashMap<usize, ColumnStats>,
}

impl TableStats {
    pub fn new(row_count: u64) -> TableStats {
        TableStats {
            row_count,
            columns: HashMap::new(),
        }
    }

    pub fn with_column(mut self, idx: usize, stats: ColumnStats) -> TableStats {
        self.columns.insert(idx, stats);
        self
    }

    /// NDV of a column, defaulting to a fraction of the row count when
    /// unknown (the classic System-R guess).
    pub fn ndv(&self, idx: usize) -> u64 {
        self.columns
            .get(&idx)
            .map(|c| c.ndv)
            .unwrap_or_else(|| (self.row_count / 10).max(1))
    }

    /// Selectivity of an equality predicate on the column.
    pub fn eq_selectivity(&self, idx: usize) -> f64 {
        1.0 / self.ndv(idx) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = TableStats::new(1000);
        assert_eq!(s.ndv(0), 100);
        assert!((s.eq_selectivity(0) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn explicit_column_stats_win() {
        let s = TableStats::new(1000).with_column(2, ColumnStats::new(50));
        assert_eq!(s.ndv(2), 50);
        assert_eq!(s.ndv(0), 100);
    }

    #[test]
    fn ndv_never_zero() {
        let s = TableStats::new(0).with_column(0, ColumnStats::new(0));
        assert_eq!(s.ndv(0), 1);
        assert_eq!(s.ndv(1), 1);
    }
}
