//! Table statistics for cardinality estimation and costing.
//!
//! Besides the classic NDV / null-fraction / min-max summary, columns can
//! carry an equi-depth [`Histogram`] built by `ANALYZE` and tables keep
//! per-leaf-partition row counts, which is what lets the optimizer cost a
//! `DynamicScan` by the rows of the partitions that *survive* elimination
//! rather than by a whole-table fraction.

use mpp_common::{Datum, PartOid};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of buckets every equi-depth histogram carries.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Sample capacity of the streaming histogram builder.
const RESERVOIR_CAP: usize = 4096;

/// An equi-depth histogram over an integer-ordered column.
///
/// `bounds` holds `n+1` non-decreasing values: bucket `i` covers
/// `(bounds[i], bounds[i+1]]` (the first bucket is closed on the left) and
/// each bucket holds ~`total / n` of the non-null values. Built from a
/// bounded reservoir sample, so construction is a single streaming pass
/// over the data — only the fixed-size sample is ever sorted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    pub bounds: Vec<i64>,
    /// Non-null values summarized.
    pub total: u64,
}

impl Histogram {
    fn buckets(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Fraction of non-null values `<= v` (0 when the histogram is empty).
    pub fn le_frac(&self, v: i64) -> f64 {
        let n = self.buckets();
        if n == 0 || self.total == 0 {
            return 0.0;
        }
        let lo = self.bounds[0];
        let hi = self.bounds[n];
        if v < lo {
            return 0.0;
        }
        if v >= hi {
            return 1.0;
        }
        // Find the bucket containing v: bounds[i] <= v < bounds[i+1].
        let i = match self.bounds.binary_search(&v) {
            // v equals a boundary; everything up to and including bucket i
            // (which ends at v) qualifies. Skip duplicate boundaries.
            Ok(mut idx) => {
                while idx < n && self.bounds[idx + 1] == v {
                    idx += 1;
                }
                return (idx as f64 / n as f64).clamp(0.0, 1.0);
            }
            Err(ins) => ins - 1,
        };
        let b_lo = self.bounds[i];
        let b_hi = self.bounds[i + 1];
        let within = if b_hi > b_lo {
            (v - b_lo) as f64 / (b_hi - b_lo) as f64
        } else {
            1.0
        };
        ((i as f64 + within) / n as f64).clamp(0.0, 1.0)
    }

    /// Fraction of non-null values in `[lo, hi]` (inclusive both ends).
    pub fn range_frac(&self, lo: Option<i64>, hi: Option<i64>) -> f64 {
        let above_lo = match lo {
            // P(x >= lo) = 1 - P(x <= lo-1)
            Some(l) => 1.0 - self.le_frac(l.saturating_sub(1)),
            None => 1.0,
        };
        let below_hi = match hi {
            Some(h) => self.le_frac(h),
            None => 1.0,
        };
        (above_lo + below_hi - 1.0).clamp(0.0, 1.0)
    }
}

/// Streaming builder: reservoir-samples values in one pass, then derives
/// equi-depth boundaries from the sorted sample. Deterministic (fixed
/// xorshift seed) so repeated ANALYZE over identical data yields
/// identical plans.
#[derive(Debug, Clone)]
pub struct HistogramBuilder {
    reservoir: Vec<i64>,
    seen: u64,
    rng: u64,
}

impl Default for HistogramBuilder {
    fn default() -> Self {
        HistogramBuilder::new()
    }
}

impl HistogramBuilder {
    pub fn new() -> HistogramBuilder {
        HistogramBuilder {
            reservoir: Vec::new(),
            seen: 0,
            rng: 0x9e3779b97f4a7c15,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Feed one non-null value.
    pub fn add(&mut self, v: i64) {
        self.seen += 1;
        if self.reservoir.len() < RESERVOIR_CAP {
            self.reservoir.push(v);
        } else {
            let j = self.next_rand() % self.seen;
            if (j as usize) < RESERVOIR_CAP {
                self.reservoir[j as usize] = v;
            }
        }
    }

    /// Feed an integer-valued datum; non-integer datums are skipped (the
    /// histogram stays value-domain `i64`; string columns rely on NDV).
    pub fn add_datum(&mut self, d: &Datum) {
        match d {
            Datum::Int32(v) => self.add(*v as i64),
            Datum::Int64(v) => self.add(*v),
            Datum::Date(v) => self.add(*v as i64),
            Datum::Bool(v) => self.add(*v as i64),
            _ => {}
        }
    }

    /// Finish into a histogram with up to [`HISTOGRAM_BUCKETS`] buckets,
    /// or `None` when no integer values were seen.
    pub fn finish(mut self) -> Option<Histogram> {
        if self.reservoir.is_empty() {
            return None;
        }
        self.reservoir.sort_unstable();
        let sample = &self.reservoir;
        let n = HISTOGRAM_BUCKETS.min(sample.len());
        let mut bounds = Vec::with_capacity(n + 1);
        bounds.push(sample[0]);
        for b in 1..=n {
            let idx = ((b * sample.len()) / n)
                .saturating_sub(1)
                .min(sample.len() - 1);
            bounds.push(sample[idx].max(*bounds.last().unwrap()));
        }
        Some(Histogram {
            bounds,
            total: self.seen,
        })
    }
}

/// Per-column summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub ndv: u64,
    /// Fraction of NULLs, in `[0, 1]`.
    pub null_frac: f64,
    pub min: Option<Datum>,
    pub max: Option<Datum>,
    /// Equi-depth histogram over non-null values (ANALYZE only; coarse
    /// refresh paths leave it `None`).
    #[serde(default)]
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    pub fn new(ndv: u64) -> ColumnStats {
        ColumnStats {
            ndv: ndv.max(1),
            null_frac: 0.0,
            min: None,
            max: None,
            histogram: None,
        }
    }

    pub fn with_range(mut self, min: Datum, max: Datum) -> ColumnStats {
        self.min = Some(min);
        self.max = Some(max);
        self
    }

    pub fn with_histogram(mut self, h: Histogram) -> ColumnStats {
        self.histogram = Some(h);
        self
    }
}

/// Statistics of one table.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TableStats {
    pub row_count: u64,
    /// Column index → stats. Sparse: absent columns use defaults.
    pub columns: HashMap<usize, ColumnStats>,
    /// Leaf partition → row count (ANALYZE fills it; empty means assume a
    /// uniform spread across leaves).
    #[serde(default)]
    pub part_rows: HashMap<PartOid, u64>,
}

impl TableStats {
    pub fn new(row_count: u64) -> TableStats {
        TableStats {
            row_count,
            columns: HashMap::new(),
            part_rows: HashMap::new(),
        }
    }

    pub fn with_column(mut self, idx: usize, stats: ColumnStats) -> TableStats {
        self.columns.insert(idx, stats);
        self
    }

    pub fn with_part_rows(mut self, rows: HashMap<PartOid, u64>) -> TableStats {
        self.part_rows = rows;
        self
    }

    /// NDV of a column, defaulting to a fraction of the row count when
    /// unknown (the classic System-R guess).
    pub fn ndv(&self, idx: usize) -> u64 {
        self.columns
            .get(&idx)
            .map(|c| c.ndv)
            .unwrap_or_else(|| (self.row_count / 10).max(1))
    }

    /// Fraction of NULLs in a column (0 when unknown).
    pub fn null_frac(&self, idx: usize) -> f64 {
        self.columns
            .get(&idx)
            .map(|c| c.null_frac.clamp(0.0, 1.0))
            .unwrap_or(0.0)
    }

    /// Selectivity of an equality predicate on the column. Equality never
    /// matches NULL, so the NULL fraction is excluded before the uniform
    /// 1/NDV spread over the remaining rows.
    pub fn eq_selectivity(&self, idx: usize) -> f64 {
        ((1.0 - self.null_frac(idx)) / self.ndv(idx) as f64).clamp(0.0, 1.0)
    }

    /// Total rows across a set of surviving leaf partitions, or `None`
    /// when per-partition counts were never collected.
    pub fn rows_in_parts<'a>(&self, parts: impl Iterator<Item = &'a PartOid>) -> Option<u64> {
        if self.part_rows.is_empty() {
            return None;
        }
        Some(
            parts
                .map(|p| self.part_rows.get(p).copied().unwrap_or(0))
                .sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = TableStats::new(1000);
        assert_eq!(s.ndv(0), 100);
        assert!((s.eq_selectivity(0) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn explicit_column_stats_win() {
        let s = TableStats::new(1000).with_column(2, ColumnStats::new(50));
        assert_eq!(s.ndv(2), 50);
        assert_eq!(s.ndv(0), 100);
    }

    #[test]
    fn ndv_never_zero() {
        let s = TableStats::new(0).with_column(0, ColumnStats::new(0));
        assert_eq!(s.ndv(0), 1);
        assert_eq!(s.ndv(1), 1);
    }

    #[test]
    fn eq_selectivity_excludes_nulls() {
        let mut col = ColumnStats::new(10);
        col.null_frac = 0.5;
        let s = TableStats::new(1000).with_column(0, col);
        assert!((s.eq_selectivity(0) - 0.05).abs() < 1e-9);
    }

    #[test]
    fn histogram_uniform_quantiles() {
        let mut b = HistogramBuilder::new();
        for v in 0..10_000i64 {
            b.add(v);
        }
        let h = b.finish().unwrap();
        assert_eq!(h.total, 10_000);
        // Median of 0..10000 should be ~5000.
        let le = h.le_frac(5_000);
        assert!((le - 0.5).abs() < 0.05, "le_frac(5000) = {le}");
        assert_eq!(h.le_frac(-1), 0.0);
        assert_eq!(h.le_frac(10_000), 1.0);
        // A [2500, 7500] range covers ~half the values.
        let r = h.range_frac(Some(2_500), Some(7_500));
        assert!((r - 0.5).abs() < 0.08, "range_frac = {r}");
    }

    #[test]
    fn histogram_skewed_data() {
        // 90% of values are 0, the rest uniform in [1, 1000].
        let mut b = HistogramBuilder::new();
        for i in 0..10_000i64 {
            b.add(if i % 10 == 0 { 1 + (i % 1000) } else { 0 });
        }
        let h = b.finish().unwrap();
        let le0 = h.le_frac(0);
        assert!(le0 > 0.8, "le_frac(0) = {le0} for 90%-zero data");
        // A range that excludes zero must estimate well under 20%.
        let r = h.range_frac(Some(1), Some(1_000));
        assert!(r < 0.2, "range_frac(1..1000) = {r}");
    }

    #[test]
    fn histogram_reservoir_bounded() {
        let mut b = HistogramBuilder::new();
        for v in 0..100_000i64 {
            b.add(v % 997);
        }
        let h = b.finish().unwrap();
        assert_eq!(h.total, 100_000);
        assert!(h.bounds.len() <= HISTOGRAM_BUCKETS + 1);
        // Sample-derived quantiles should still be roughly uniform.
        let le = h.le_frac(498);
        assert!((le - 0.5).abs() < 0.1, "le_frac(498) = {le}");
    }

    #[test]
    fn empty_builder_yields_none() {
        assert!(HistogramBuilder::new().finish().is_none());
        let mut b = HistogramBuilder::new();
        b.add_datum(&Datum::str("only strings"));
        b.add_datum(&Datum::Null);
        assert!(b.finish().is_none());
    }

    #[test]
    fn part_rows_sum_surviving() {
        let mut parts = HashMap::new();
        parts.insert(PartOid(1), 100);
        parts.insert(PartOid(2), 900);
        let s = TableStats::new(1000).with_part_rows(parts);
        let survivors = [PartOid(2)];
        assert_eq!(s.rows_in_parts(survivors.iter()), Some(900));
        let none = TableStats::new(1000);
        assert_eq!(none.rows_in_parts(survivors.iter()), None);
    }
}
