//! Convenience builders for the partitioning schemes the paper's
//! experiments use: equal-width ranges, monthly date ranges, categorical
//! lists.

use crate::partition::{PartTree, PartitionLevel, PartitionPiece};
use mpp_common::value::{civil_from_days, days_from_civil};
use mpp_common::{Datum, Error, PartOid, Result};
use mpp_expr::interval::Interval;
use mpp_expr::IntervalSet;

/// A single-level range partitioning with `n` equal-width pieces covering
/// `[low, high)`. Works for `Int32`/`Int64`/`Date` keys.
pub fn range_parts_equal_width(
    key_index: usize,
    low: Datum,
    high: Datum,
    n: usize,
    first_oid: PartOid,
) -> Result<PartTree> {
    let level = range_level_equal_width(key_index, low, high, n)?;
    PartTree::new(vec![level], first_oid)
}

/// Build just the [`PartitionLevel`] for equal-width ranges — reusable as a
/// level of a multi-level tree.
pub fn range_level_equal_width(
    key_index: usize,
    low: Datum,
    high: Datum,
    n: usize,
) -> Result<PartitionLevel> {
    if n == 0 {
        return Err(Error::InvalidMetadata("need at least one partition".into()));
    }
    let lo = low.as_i64()?;
    let hi = high.as_i64()?;
    if hi <= lo {
        return Err(Error::InvalidMetadata(format!(
            "empty partition domain [{lo}, {hi})"
        )));
    }
    let span = (hi - lo) as u128;
    let mk = |v: i64| -> Result<Datum> {
        Ok(match low {
            Datum::Int32(_) => Datum::Int32(
                i32::try_from(v).map_err(|_| Error::Arithmetic("bound overflow".into()))?,
            ),
            Datum::Int64(_) => Datum::Int64(v),
            Datum::Date(_) => Datum::Date(
                i32::try_from(v).map_err(|_| Error::Arithmetic("bound overflow".into()))?,
            ),
            _ => {
                return Err(Error::TypeMismatch(
                    "equal-width ranges need an integer-like key".into(),
                ))
            }
        })
    };
    let mut pieces = Vec::with_capacity(n);
    for i in 0..n {
        let a = lo + ((span * i as u128) / n as u128) as i64;
        let b = lo + ((span * (i + 1) as u128) / n as u128) as i64;
        if b <= a {
            return Err(Error::InvalidMetadata(format!(
                "more partitions ({n}) than key values ({span})"
            )));
        }
        pieces.push(PartitionPiece::new(
            format!("p{i}"),
            IntervalSet::interval(Interval::half_open(mk(a)?, mk(b)?)),
        ));
    }
    PartitionLevel::new(key_index, pieces)
}

/// A single-level *monthly* range partitioning over a `Date` key — the
/// scheme of paper Figure 1 (`orders` partitioned by month). Covers
/// `months` consecutive months starting at `start_year`/`start_month`.
pub fn monthly_range_parts(
    key_index: usize,
    start_year: i32,
    start_month: u32,
    months: usize,
    first_oid: PartOid,
) -> Result<PartTree> {
    let level = monthly_range_level(key_index, start_year, start_month, months)?;
    PartTree::new(vec![level], first_oid)
}

/// The [`PartitionLevel`] behind [`monthly_range_parts`].
pub fn monthly_range_level(
    key_index: usize,
    start_year: i32,
    start_month: u32,
    months: usize,
) -> Result<PartitionLevel> {
    if months == 0 {
        return Err(Error::InvalidMetadata("need at least one month".into()));
    }
    if !(1..=12).contains(&start_month) {
        return Err(Error::InvalidMetadata(format!(
            "bad start month {start_month}"
        )));
    }
    let mut pieces = Vec::with_capacity(months);
    let mut y = start_year;
    let mut m = start_month;
    for _ in 0..months {
        let (ny, nm) = if m == 12 { (y + 1, 1) } else { (y, m + 1) };
        let lo = Datum::Date(days_from_civil(y, m, 1));
        let hi = Datum::Date(days_from_civil(ny, nm, 1));
        pieces.push(PartitionPiece::new(
            format!("{y:04}_{m:02}"),
            IntervalSet::interval(Interval::half_open(lo, hi)),
        ));
        y = ny;
        m = nm;
    }
    PartitionLevel::new(key_index, pieces)
}

/// Step size for [`range_level_stepped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeStep {
    /// Fixed numeric width (integer-like keys and day-stepped dates).
    Width(i64),
    /// Calendar months (date keys only).
    Months(u32),
}

/// Range pieces of the given step covering `[start, end)` — the engine
/// behind `PARTITION BY RANGE (…) (START … END … EVERY …)`.
pub fn range_level_stepped(
    key_index: usize,
    start: Datum,
    end: Datum,
    step: RangeStep,
) -> Result<PartitionLevel> {
    let lo = start.as_i64()?;
    let hi = end.as_i64()?;
    if hi <= lo {
        return Err(Error::InvalidMetadata(format!(
            "empty partition domain [{lo}, {hi})"
        )));
    }
    let mk = |v: i64| -> Result<Datum> {
        Ok(match start {
            Datum::Int32(_) => Datum::Int32(
                i32::try_from(v).map_err(|_| Error::Arithmetic("bound overflow".into()))?,
            ),
            Datum::Int64(_) => Datum::Int64(v),
            Datum::Date(_) => Datum::Date(
                i32::try_from(v).map_err(|_| Error::Arithmetic("bound overflow".into()))?,
            ),
            _ => {
                return Err(Error::TypeMismatch(
                    "stepped ranges need an integer-like key".into(),
                ))
            }
        })
    };
    let mut pieces = Vec::new();
    let mut cur = lo;
    let mut i = 0usize;
    while cur < hi {
        let next = match step {
            RangeStep::Width(w) => {
                if w <= 0 {
                    return Err(Error::InvalidMetadata("EVERY must be positive".into()));
                }
                (cur + w).min(hi)
            }
            RangeStep::Months(m) => {
                if m == 0 {
                    return Err(Error::InvalidMetadata("EVERY must be positive".into()));
                }
                if !matches!(start, Datum::Date(_)) {
                    return Err(Error::TypeMismatch(
                        "EVERY (n MONTHS) requires a date key".into(),
                    ));
                }
                let (y, mo, d) = civil_from_days(cur as i32);
                let total = (y as i64) * 12 + (mo as i64 - 1) + m as i64;
                let (ny, nm) = ((total / 12) as i32, (total % 12 + 1) as u32);
                (days_from_civil(ny, nm, d.min(28)) as i64).min(hi)
            }
        };
        if next <= cur {
            return Err(Error::InvalidMetadata("EVERY step does not advance".into()));
        }
        pieces.push(PartitionPiece::new(
            format!("p{i}"),
            IntervalSet::interval(Interval::half_open(mk(cur)?, mk(next)?)),
        ));
        cur = next;
        i += 1;
        if i > 100_000 {
            return Err(Error::InvalidMetadata(
                "EVERY step produces too many partitions".into(),
            ));
        }
    }
    PartitionLevel::new(key_index, pieces)
}

/// A single-level categorical (list) partitioning: one piece per value
/// group, optionally with a default piece.
pub fn list_parts(
    key_index: usize,
    groups: Vec<(String, Vec<Datum>)>,
    with_default: bool,
    first_oid: PartOid,
) -> Result<PartTree> {
    let level = list_level(key_index, groups, with_default)?;
    PartTree::new(vec![level], first_oid)
}

/// The [`PartitionLevel`] behind [`list_parts`].
pub fn list_level(
    key_index: usize,
    groups: Vec<(String, Vec<Datum>)>,
    with_default: bool,
) -> Result<PartitionLevel> {
    let mut pieces: Vec<PartitionPiece> = groups
        .into_iter()
        .map(|(name, vals)| PartitionPiece::new(name, IntervalSet::points(vals)))
        .collect();
    if with_default {
        pieces.push(PartitionPiece::default_piece("default"));
    }
    PartitionLevel::new(key_index, pieces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_covers_domain_exactly() {
        let t =
            range_parts_equal_width(0, Datum::Int32(0), Datum::Int32(100), 7, PartOid(0)).unwrap();
        assert_eq!(t.num_leaves(), 7);
        // Every value in [0, 100) routes somewhere; edges route nowhere.
        for v in [0, 1, 14, 15, 50, 99] {
            assert!(t.route(&[Datum::Int32(v)]).is_some(), "v={v}");
        }
        assert!(t.route(&[Datum::Int32(100)]).is_none());
        assert!(t.route(&[Datum::Int32(-1)]).is_none());
        // Pieces are contiguous: count distinct targets.
        let mut seen = std::collections::HashSet::new();
        for v in 0..100 {
            seen.insert(t.route(&[Datum::Int32(v)]).unwrap());
        }
        assert_eq!(seen.len(), 7);
    }

    #[test]
    fn equal_width_rejects_degenerate_inputs() {
        assert!(
            range_parts_equal_width(0, Datum::Int32(0), Datum::Int32(0), 3, PartOid(0)).is_err()
        );
        assert!(
            range_parts_equal_width(0, Datum::Int32(0), Datum::Int32(2), 5, PartOid(0)).is_err()
        );
        assert!(
            range_parts_equal_width(0, Datum::str("x"), Datum::str("y"), 2, PartOid(0)).is_err()
        );
    }

    #[test]
    fn monthly_parts_like_figure_1() {
        // orders: 24 monthly partitions over 2012–2013 (paper Figure 1).
        let t = monthly_range_parts(2, 2012, 1, 24, PartOid(10)).unwrap();
        assert_eq!(t.num_leaves(), 24);
        // An order on 2013-10-15 lands in partition 2013_10 (index 21).
        let oid = t.route(&[Datum::date_ymd(2013, 10, 15)]).unwrap();
        let leaf = t.leaf_by_oid(oid).unwrap();
        assert_eq!(leaf.name, "2013_10");
        assert_eq!(oid, PartOid(31));
        // Month boundaries are half-open.
        assert_eq!(
            t.route(&[Datum::date_ymd(2012, 2, 1)]).unwrap(),
            PartOid(11)
        );
        assert!(t.route(&[Datum::date_ymd(2014, 1, 1)]).is_none());
    }

    #[test]
    fn monthly_parts_cross_year_boundary() {
        let t = monthly_range_parts(0, 2012, 11, 4, PartOid(0)).unwrap();
        let names: Vec<&str> = t.leaves().iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["2012_11", "2012_12", "2013_01", "2013_02"]);
    }

    #[test]
    fn list_parts_with_default() {
        let t = list_parts(
            1,
            vec![
                ("west".into(), vec![Datum::str("CA"), Datum::str("OR")]),
                ("east".into(), vec![Datum::str("NY")]),
            ],
            true,
            PartOid(0),
        )
        .unwrap();
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.route(&[Datum::str("OR")]), Some(PartOid(0)));
        assert_eq!(t.route(&[Datum::str("NY")]), Some(PartOid(1)));
        assert_eq!(t.route(&[Datum::str("TX")]), Some(PartOid(2)));
        // Without a default, unknown values are unroutable.
        let t2 = list_parts(
            1,
            vec![("west".into(), vec![Datum::str("CA")])],
            false,
            PartOid(0),
        )
        .unwrap();
        assert_eq!(t2.route(&[Datum::str("TX")]), None);
    }

    #[test]
    fn multi_level_from_level_builders() {
        // Figure 9: 24 months × 2 regions + default region.
        let date_level = monthly_range_level(2, 2012, 1, 24).unwrap();
        let region_level = list_level(
            3,
            vec![
                ("region1".into(), vec![Datum::str("Region 1")]),
                ("region2".into(), vec![Datum::str("Region 2")]),
            ],
            false,
        )
        .unwrap();
        let t = PartTree::new(vec![date_level, region_level], PartOid(0)).unwrap();
        assert_eq!(t.num_leaves(), 48);
        let oid = t
            .route(&[Datum::date_ymd(2012, 1, 5), Datum::str("Region 1")])
            .unwrap();
        assert_eq!(t.leaf_by_oid(oid).unwrap().name, "2012_01.region1");
    }
}
