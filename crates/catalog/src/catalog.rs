//! The catalog registry: shared, thread-safe metadata store.

use crate::partition::PartTree;
use crate::stats::TableStats;
use crate::table::TableDesc;
use mpp_common::{Error, PartOid, Result, TableOid};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Default)]
struct Inner {
    tables: HashMap<TableOid, Arc<TableDesc>>,
    by_name: HashMap<String, TableOid>,
    stats: HashMap<TableOid, TableStats>,
    /// Leaf partition OID → owning root table.
    part_owner: HashMap<PartOid, TableOid>,
    next_table_oid: u32,
    next_part_oid: u32,
    /// Monotonic DDL version: bumped on every CREATE/DROP/ALTER (any
    /// change to table metadata that could invalidate a compiled plan).
    /// Statistics updates do NOT bump it — stale stats only affect plan
    /// *quality*, never correctness, and auto-analyze after DML would
    /// otherwise flush every plan cache on every insert.
    version: u64,
    /// Monotonic statistics version: bumped by [`Catalog::set_stats`]
    /// (the ANALYZE path), so plan caches can re-optimize once better
    /// cardinalities exist. The coarse insert-time refresh goes through
    /// [`Catalog::refresh_stats_coarse`], which deliberately does NOT
    /// bump it — otherwise every bulk insert would flush every cache.
    stats_version: u64,
    /// Runtime cardinality feedback: per-table row counts *observed*
    /// during execution where the optimizer's estimate was off by more
    /// than [`FEEDBACK_MISS_FACTOR`]. [`Catalog::stats`] folds these over
    /// the stored statistics (scaling `row_count` and `part_rows`
    /// proportionally), so the next optimization sees the observed
    /// cardinality; ANALYZE ([`Catalog::set_stats`]) supersedes and
    /// clears them.
    feedback: HashMap<TableOid, u64>,
}

/// A runtime cardinality observation only counts as a *miss* — and only
/// then invalidates cached plans — when estimate and actual differ by
/// more than this factor in either direction.
pub const FEEDBACK_MISS_FACTOR: f64 = 10.0;

fn off_by(a: u64, b: u64, factor: f64) -> bool {
    let a = a.max(1) as f64;
    let b = b.max(1) as f64;
    a / b > factor || b / a > factor
}

/// Thread-safe registry of table metadata, shared by binder, optimizers,
/// storage and executor. Cloning is cheap (`Arc` inside).
#[derive(Clone, Default)]
pub struct Catalog {
    inner: Arc<RwLock<Inner>>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog {
            inner: Arc::new(RwLock::new(Inner {
                next_table_oid: 1,
                next_part_oid: 1000,
                ..Inner::default()
            })),
        }
    }

    /// Current DDL version. Any two calls that return the same value are
    /// guaranteed to have seen identical table metadata in between, so a
    /// plan cached under version `v` is valid exactly while
    /// `version() == v`.
    pub fn version(&self) -> u64 {
        self.inner.read().version
    }

    /// Current statistics version: bumps whenever ANALYZE installs fresh
    /// stats. Plan caches combine it with [`Catalog::version`] so cached
    /// plans re-optimize after stats change without DDL churn.
    pub fn stats_version(&self) -> u64 {
        self.inner.read().stats_version
    }

    /// Reserve the next table OID.
    pub fn allocate_table_oid(&self) -> TableOid {
        let mut g = self.inner.write();
        let oid = TableOid(g.next_table_oid);
        g.next_table_oid += 1;
        oid
    }

    /// Reserve a dense block of `n` leaf-partition OIDs and return the first.
    pub fn allocate_part_oids(&self, n: u32) -> PartOid {
        let mut g = self.inner.write();
        let first = PartOid(g.next_part_oid);
        g.next_part_oid += n;
        first
    }

    /// Register a table. Its name must be unique; the descriptor must
    /// validate.
    pub fn register(&self, desc: TableDesc) -> Result<Arc<TableDesc>> {
        desc.validate()?;
        let mut g = self.inner.write();
        let key = desc.name.to_ascii_lowercase();
        if g.by_name.contains_key(&key) {
            return Err(Error::Duplicate(format!("table '{}'", desc.name)));
        }
        if g.tables.contains_key(&desc.oid) {
            return Err(Error::Duplicate(format!("table oid {}", desc.oid)));
        }
        let desc = Arc::new(desc);
        if let Some(tree) = &desc.partitioning {
            for leaf in tree.leaves() {
                if g.part_owner.contains_key(&leaf.oid) {
                    return Err(Error::Duplicate(format!("partition oid {}", leaf.oid)));
                }
            }
            for leaf in tree.leaves() {
                g.part_owner.insert(leaf.oid, desc.oid);
            }
        }
        g.by_name.insert(key, desc.oid);
        g.tables.insert(desc.oid, Arc::clone(&desc));
        g.version += 1;
        Ok(desc)
    }

    /// Swap a table's descriptor in place (same OID, e.g. ALTER TABLE
    /// ADD/DROP PARTITION). The partition-ownership index is re-derived
    /// from the new tree; leaf OIDs shared with the old tree keep their
    /// identity, so surviving partitions keep their stored rows.
    pub fn replace_table(&self, desc: TableDesc) -> Result<Arc<TableDesc>> {
        desc.validate()?;
        let mut g = self.inner.write();
        let old = g
            .tables
            .get(&desc.oid)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {}", desc.oid)))?;
        if !old.name.eq_ignore_ascii_case(&desc.name) {
            return Err(Error::InvalidMetadata(format!(
                "replace_table cannot rename '{}' to '{}'",
                old.name, desc.name
            )));
        }
        if let Some(tree) = &desc.partitioning {
            let old_leaves: std::collections::HashSet<PartOid> = old
                .partitioning
                .iter()
                .flat_map(|t| t.leaves().iter().map(|l| l.oid))
                .collect();
            for leaf in tree.leaves() {
                if !old_leaves.contains(&leaf.oid) && g.part_owner.contains_key(&leaf.oid) {
                    return Err(Error::Duplicate(format!("partition oid {}", leaf.oid)));
                }
            }
        }
        if let Some(tree) = &old.partitioning {
            for leaf in tree.leaves() {
                g.part_owner.remove(&leaf.oid);
            }
        }
        let desc = Arc::new(desc);
        if let Some(tree) = &desc.partitioning {
            for leaf in tree.leaves() {
                g.part_owner.insert(leaf.oid, desc.oid);
            }
        }
        g.tables.insert(desc.oid, Arc::clone(&desc));
        g.version += 1;
        Ok(desc)
    }

    pub fn table(&self, oid: TableOid) -> Result<Arc<TableDesc>> {
        self.inner
            .read()
            .tables
            .get(&oid)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {oid}")))
    }

    pub fn table_by_name(&self, name: &str) -> Result<Arc<TableDesc>> {
        let g = self.inner.read();
        let oid = g
            .by_name
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| Error::NotFound(format!("table '{name}'")))?;
        Ok(Arc::clone(&g.tables[&oid]))
    }

    /// Which root table owns a leaf partition?
    pub fn part_owner(&self, part: PartOid) -> Result<TableOid> {
        self.inner
            .read()
            .part_owner
            .get(&part)
            .copied()
            .ok_or_else(|| Error::NotFound(format!("partition {part}")))
    }

    /// Partition tree of a table (error if not partitioned).
    pub fn part_tree(&self, oid: TableOid) -> Result<PartTree> {
        Ok(self.table(oid)?.part_tree()?.clone())
    }

    pub fn all_tables(&self) -> Vec<Arc<TableDesc>> {
        let g = self.inner.read();
        let mut v: Vec<_> = g.tables.values().cloned().collect();
        v.sort_by_key(|t| t.oid);
        v
    }

    /// Remove a table (and its partition index entries) from the catalog.
    pub fn drop_table(&self, oid: TableOid) -> Result<()> {
        let mut g = self.inner.write();
        let desc = g
            .tables
            .remove(&oid)
            .ok_or_else(|| Error::NotFound(format!("table {oid}")))?;
        g.by_name.remove(&desc.name.to_ascii_lowercase());
        g.stats.remove(&oid);
        g.feedback.remove(&oid);
        if let Some(tree) = &desc.partitioning {
            for leaf in tree.leaves() {
                g.part_owner.remove(&leaf.oid);
            }
        }
        g.version += 1;
        Ok(())
    }

    /// Install full statistics (the ANALYZE path). Bumps the stats
    /// version so plan caches drop plans optimized against the old
    /// cardinalities, and clears any runtime feedback override — real
    /// statistics supersede observed row counts.
    pub fn set_stats(&self, oid: TableOid, stats: TableStats) {
        let mut g = self.inner.write();
        g.stats.insert(oid, stats);
        g.feedback.remove(&oid);
        g.stats_version += 1;
    }

    /// Coarse, cheap stats refresh on bulk insert: scales the row count
    /// (total and per-partition deltas) without touching histograms and
    /// WITHOUT bumping the stats version — row-count drift alone must not
    /// flush plan caches on every insert.
    pub fn refresh_stats_coarse(
        &self,
        oid: TableOid,
        added_rows: u64,
        part_deltas: &[(PartOid, u64)],
    ) {
        let mut g = self.inner.write();
        let stats = g.stats.entry(oid).or_insert_with(|| TableStats::new(0));
        stats.row_count += added_rows;
        if !stats.part_rows.is_empty() || !part_deltas.is_empty() {
            for (p, n) in part_deltas {
                *stats.part_rows.entry(*p).or_insert(0) += n;
            }
        }
    }

    /// Stats for a table; defaults to a small-table guess when never
    /// analyzed. Any runtime feedback override is folded in: the observed
    /// row count replaces `row_count` and per-partition counts are scaled
    /// proportionally (the *shape* of the stored distribution is the best
    /// information available; only its magnitude was observed wrong).
    pub fn stats(&self, oid: TableOid) -> TableStats {
        let g = self.inner.read();
        let mut stats = g
            .stats
            .get(&oid)
            .cloned()
            .unwrap_or_else(|| TableStats::new(1000));
        if let Some(&observed) = g.feedback.get(&oid) {
            let old = stats.row_count.max(1);
            stats.row_count = observed;
            if !stats.part_rows.is_empty() {
                let scale = observed as f64 / old as f64;
                for rows in stats.part_rows.values_mut() {
                    *rows = (*rows as f64 * scale).round() as u64;
                }
            }
        }
        stats
    }

    /// Record a runtime cardinality observation for a base-table scan:
    /// `estimated` is what the optimizer planned with, `observed` what the
    /// executor actually read. Installs a feedback override and bumps the
    /// stats version — invalidating every cached plan through the existing
    /// `(catalog_version, stats_version)` epoch — **only** when the
    /// estimate was off by more than [`FEEDBACK_MISS_FACTOR`] *and* the
    /// observation materially changes the override already in place.
    /// The second condition breaks invalidation loops: once the override
    /// is folded into [`Catalog::stats`], the re-optimized plan estimates
    /// near the observation, the next run sees no 10× miss, and the cache
    /// settles. Returns whether cached plans were invalidated.
    pub fn record_feedback(&self, oid: TableOid, estimated: u64, observed: u64) -> bool {
        if !off_by(estimated, observed, FEEDBACK_MISS_FACTOR) {
            return false;
        }
        let mut g = self.inner.write();
        if !g.tables.contains_key(&oid) {
            return false;
        }
        if let Some(&prev) = g.feedback.get(&oid) {
            if !off_by(prev, observed, 2.0) {
                return false; // already folded close enough — no re-bump
            }
        }
        g.feedback.insert(oid, observed);
        g.stats_version += 1;
        true
    }

    /// The runtime feedback override for a table, if one is in place.
    pub fn feedback_override(&self, oid: TableOid) -> Option<u64> {
        self.inner.read().feedback.get(&oid).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::range_parts_equal_width;
    use crate::table::Distribution;
    use mpp_common::{Column, DataType, Datum, Schema};

    fn register_partitioned(cat: &Catalog, name: &str, parts: u32) -> Arc<TableDesc> {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("b", DataType::Int32),
        ]);
        let oid = cat.allocate_table_oid();
        let first = cat.allocate_part_oids(parts);
        let tree = range_parts_equal_width(
            1,
            Datum::Int32(0),
            Datum::Int32(parts as i32 * 10),
            parts as usize,
            first,
        )
        .unwrap();
        cat.register(TableDesc {
            oid,
            name: name.into(),
            schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: Some(tree),
        })
        .unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let cat = Catalog::new();
        let t = register_partitioned(&cat, "R", 4);
        assert_eq!(cat.table(t.oid).unwrap().name, "R");
        assert_eq!(cat.table_by_name("r").unwrap().oid, t.oid);
        assert!(cat.table_by_name("missing").is_err());
        assert!(cat.table(TableOid(999)).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let cat = Catalog::new();
        register_partitioned(&cat, "R", 2);
        let schema = Schema::new(vec![Column::new("x", DataType::Int32)]);
        let oid = cat.allocate_table_oid();
        let err = cat.register(TableDesc {
            oid,
            name: "r".into(),
            schema,
            distribution: Distribution::Replicated,
            partitioning: None,
        });
        assert!(err.is_err());
    }

    #[test]
    fn part_ownership_indexed() {
        let cat = Catalog::new();
        let t = register_partitioned(&cat, "R", 4);
        let leaves = t.part_tree().unwrap().partition_expansion();
        for leaf in leaves {
            assert_eq!(cat.part_owner(leaf).unwrap(), t.oid);
        }
        assert!(cat.part_owner(PartOid(1)).is_err());
    }

    #[test]
    fn oid_allocation_is_dense_and_unique() {
        let cat = Catalog::new();
        let a = cat.allocate_part_oids(10);
        let b = cat.allocate_part_oids(5);
        assert_eq!(b.0, a.0 + 10);
        assert_ne!(cat.allocate_table_oid(), cat.allocate_table_oid());
    }

    #[test]
    fn version_bumps_on_ddl_but_not_stats() {
        let cat = Catalog::new();
        let v0 = cat.version();
        let t = register_partitioned(&cat, "R", 2);
        let v1 = cat.version();
        assert!(v1 > v0, "register must bump the version");
        cat.set_stats(t.oid, TableStats::new(99));
        assert_eq!(cat.version(), v1, "stats updates must NOT bump");
        cat.drop_table(t.oid).unwrap();
        assert!(cat.version() > v1, "drop must bump the version");
    }

    #[test]
    fn replace_table_swaps_tree_and_reindexes_owners() {
        let cat = Catalog::new();
        let t = register_partitioned(&cat, "R", 4);
        let old_leaves = t.part_tree().unwrap().partition_expansion();
        let v1 = cat.version();

        // New 2-piece tree keeping the first two original leaf OIDs.
        let tree = crate::builders::range_parts_equal_width(
            1,
            Datum::Int32(0),
            Datum::Int32(20),
            2,
            old_leaves[0],
        )
        .unwrap();
        let new_desc = TableDesc {
            partitioning: Some(tree),
            ..(*t).clone()
        };
        cat.replace_table(new_desc).unwrap();
        assert!(cat.version() > v1, "replace must bump the version");
        assert_eq!(cat.part_owner(old_leaves[0]).unwrap(), t.oid);
        assert!(
            cat.part_owner(old_leaves[3]).is_err(),
            "dropped leaves must leave the ownership index"
        );
        assert_eq!(
            cat.table(t.oid).unwrap().part_tree().unwrap().num_leaves(),
            2
        );

        // Renames and unknown OIDs are rejected.
        let renamed = TableDesc {
            name: "other".into(),
            ..(*cat.table(t.oid).unwrap()).clone()
        };
        assert!(cat.replace_table(renamed).is_err());
        let missing = TableDesc {
            oid: TableOid(999),
            ..(*cat.table(t.oid).unwrap()).clone()
        };
        assert!(cat.replace_table(missing).is_err());
    }

    #[test]
    fn stats_version_bumps_on_analyze_not_coarse_refresh() {
        let cat = Catalog::new();
        let t = register_partitioned(&cat, "R", 2);
        let ddl_v = cat.version();
        let sv0 = cat.stats_version();
        cat.set_stats(t.oid, TableStats::new(500));
        assert!(cat.stats_version() > sv0, "ANALYZE stats must bump");
        assert_eq!(cat.version(), ddl_v, "stats must not bump the DDL version");
        let sv1 = cat.stats_version();
        cat.refresh_stats_coarse(t.oid, 100, &[(PartOid(1000), 100)]);
        assert_eq!(cat.stats_version(), sv1, "coarse refresh must NOT bump");
        assert_eq!(cat.stats(t.oid).row_count, 600);
        assert_eq!(cat.stats(t.oid).part_rows.get(&PartOid(1000)), Some(&100));
    }

    #[test]
    fn feedback_miss_overrides_stats_and_bumps_once() {
        let cat = Catalog::new();
        let t = register_partitioned(&cat, "R", 2);
        let mut part_rows = HashMap::new();
        part_rows.insert(PartOid(1000), 75u64);
        part_rows.insert(PartOid(1001), 25u64);
        cat.set_stats(t.oid, TableStats::new(100).with_part_rows(part_rows));
        let sv = cat.stats_version();

        // A 5× miss is within tolerance: no override, no invalidation.
        assert!(!cat.record_feedback(t.oid, 100, 500));
        assert_eq!(cat.stats_version(), sv);
        assert_eq!(cat.feedback_override(t.oid), None);

        // A >10× miss installs the observation and bumps the epoch; the
        // per-partition distribution is scaled, not discarded.
        assert!(cat.record_feedback(t.oid, 100, 10_000));
        assert_eq!(cat.stats_version(), sv + 1);
        let s = cat.stats(t.oid);
        assert_eq!(s.row_count, 10_000);
        assert_eq!(s.part_rows[&PartOid(1000)], 7_500);
        assert_eq!(s.part_rows[&PartOid(1001)], 2_500);

        // Re-observing roughly the same cardinality must NOT re-bump —
        // otherwise folded feedback would flush the cache every query.
        assert!(!cat.record_feedback(t.oid, 100, 11_000));
        assert_eq!(cat.stats_version(), sv + 1);

        // ANALYZE supersedes: the override is cleared.
        cat.set_stats(t.oid, TableStats::new(10_000));
        assert_eq!(cat.feedback_override(t.oid), None);
        assert_eq!(cat.stats(t.oid).row_count, 10_000);

        // Unknown tables are ignored.
        assert!(!cat.record_feedback(TableOid(999), 1, 1_000_000));
    }

    #[test]
    fn stats_roundtrip_with_default() {
        let cat = Catalog::new();
        let t = register_partitioned(&cat, "R", 2);
        assert_eq!(cat.stats(t.oid).row_count, 1000); // default
        cat.set_stats(t.oid, TableStats::new(5_000_000));
        assert_eq!(cat.stats(t.oid).row_count, 5_000_000);
    }
}
