//! Partition trees: the catalog-side model of partitioned tables.
//!
//! A table may be partitioned over multiple *levels* (paper §2.4,
//! Figure 9): level 0 splits the table into pieces, level 1 splits every
//! level-0 piece the same way, and so on. Leaf partitions — the physical
//! tables the storage layer actually holds — are the cartesian product of
//! the per-level pieces, each identified by a [`PartOid`] and carrying one
//! check constraint (an [`IntervalSet`]) per level.
//!
//! This module implements both partitioning functions of paper §2.1:
//!
//! * `f_T`  — tuple routing ([`PartTree::route`]): key values → leaf OID or
//!   `⊥`,
//! * `f*_T` — partition selection ([`PartTree::select_partitions`]):
//!   predicate-derived value sets → the set of leaf OIDs that may contain
//!   satisfying tuples. It is sound (never misses a partition) and minimal
//!   for the exactly-analyzable predicate forms.

use mpp_common::{Datum, Error, PartOid, Result};
use mpp_expr::analysis::DerivedSet;
use mpp_expr::interval::{cmp_high, cmp_low, Interval};
use mpp_expr::IntervalSet;
use serde::{Deserialize, Serialize};

/// One piece of one partitioning level (e.g. "the January 2012 range" or
/// "Region 1"). A *default* piece catches values outside every sibling's
/// constraint, as well as NULL keys.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionPiece {
    pub name: String,
    /// Values this piece accepts. Ignored for routing when `is_default`.
    pub constraint: IntervalSet,
    pub is_default: bool,
}

impl PartitionPiece {
    pub fn new(name: impl Into<String>, constraint: IntervalSet) -> PartitionPiece {
        PartitionPiece {
            name: name.into(),
            constraint,
            is_default: false,
        }
    }

    pub fn default_piece(name: impl Into<String>) -> PartitionPiece {
        PartitionPiece {
            name: name.into(),
            constraint: IntervalSet::empty(),
            is_default: true,
        }
    }
}

/// One level of the partition hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionLevel {
    /// Index of the partitioning key column in the table schema.
    pub key_index: usize,
    pub pieces: Vec<PartitionPiece>,
    /// Pre-computed union of all non-default constraints; the default piece
    /// owns the complement (plus NULLs).
    covered: IntervalSet,
    /// Every interval of every non-default piece, tagged with its piece
    /// index and sorted by low bound. Pieces are pairwise disjoint (checked
    /// in [`PartitionLevel::new`]), so a value can only fall in the last
    /// interval whose low bound admits it — routing is one binary search
    /// instead of a linear scan over all pieces.
    route_index: Vec<(Interval, usize)>,
}

impl PartitionLevel {
    pub fn new(key_index: usize, pieces: Vec<PartitionPiece>) -> Result<PartitionLevel> {
        if pieces.is_empty() {
            return Err(Error::InvalidMetadata(
                "partition level must have at least one piece".into(),
            ));
        }
        if pieces.iter().filter(|p| p.is_default).count() > 1 {
            return Err(Error::InvalidMetadata(
                "at most one default piece per level".into(),
            ));
        }
        // Non-default constraints must be pairwise disjoint so routing is
        // unambiguous.
        let mut covered = IntervalSet::empty();
        let mut route_index = Vec::new();
        for (i, p) in pieces.iter().enumerate().filter(|(_, p)| !p.is_default) {
            if covered.overlaps(&p.constraint) {
                return Err(Error::InvalidMetadata(format!(
                    "partition piece '{}' overlaps a sibling",
                    p.name
                )));
            }
            covered = covered.union(&p.constraint);
            route_index.extend(p.constraint.intervals().iter().map(|iv| (iv.clone(), i)));
        }
        route_index.sort_by(|(a, _), (b, _)| {
            cmp_low(&a.low, &b.low).then_with(|| cmp_high(&a.high, &b.high))
        });
        Ok(PartitionLevel {
            key_index,
            pieces,
            covered,
            route_index,
        })
    }

    /// Values not owned by any non-default piece.
    pub fn uncovered(&self) -> IntervalSet {
        self.covered.complement()
    }

    pub fn default_position(&self) -> Option<usize> {
        self.pieces.iter().position(|p| p.is_default)
    }

    /// Route one key value to a piece index (`f_T` at this level) in
    /// O(log P): binary-search the sorted interval index. Disjointness
    /// means only the last interval whose low bound admits the value can
    /// contain it; everything else (out-of-range, NULLs) falls through to
    /// the default piece.
    pub fn route(&self, value: &Datum) -> Option<usize> {
        if !value.is_null() {
            let i = self
                .route_index
                .partition_point(|(iv, _)| iv.low_admits(value));
            if i > 0 {
                let (iv, piece) = &self.route_index[i - 1];
                if iv.high_admits(value) {
                    return Some(*piece);
                }
            }
        }
        self.default_position()
    }

    /// Piece indices that may hold values in `derived` (`f*_T` at this
    /// level).
    pub fn select(&self, derived: &DerivedSet) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, p) in self.pieces.iter().enumerate() {
            let selected = if p.is_default {
                derived.null_possible || derived.set.overlaps(&self.uncovered())
            } else {
                derived.set.overlaps(&p.constraint)
            };
            if selected {
                out.push(i);
            }
        }
        out
    }
}

/// A leaf partition: one physical table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeafPart {
    pub oid: PartOid,
    /// Dotted path of piece names, e.g. `jan2012.region1`.
    pub name: String,
    /// Piece index at each level.
    pub piece_path: Vec<usize>,
}

/// The full partition descriptor of a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartTree {
    levels: Vec<PartitionLevel>,
    leaves: Vec<LeafPart>,
}

impl PartTree {
    /// Build a tree from per-level descriptors. Leaf OIDs are assigned
    /// densely starting at `first_leaf_oid` in row-major (level-0 outermost)
    /// order.
    pub fn new(levels: Vec<PartitionLevel>, first_leaf_oid: PartOid) -> Result<PartTree> {
        if levels.is_empty() {
            return Err(Error::InvalidMetadata(
                "partitioned table needs at least one level".into(),
            ));
        }
        let mut leaves = Vec::new();
        let mut path = vec![0usize; levels.len()];
        loop {
            let name = path
                .iter()
                .zip(&levels)
                .map(|(&i, l)| l.pieces[i].name.clone())
                .collect::<Vec<_>>()
                .join(".");
            leaves.push(LeafPart {
                oid: PartOid(first_leaf_oid.0 + leaves.len() as u32),
                name,
                piece_path: path.clone(),
            });
            // Odometer increment over the piece counts.
            let mut l = levels.len();
            loop {
                if l == 0 {
                    return PartTree::validated(levels, leaves);
                }
                l -= 1;
                path[l] += 1;
                if path[l] < levels[l].pieces.len() {
                    break;
                }
                path[l] = 0;
            }
        }
    }

    /// Like [`PartTree::new`], but with an explicit OID per leaf (row-major
    /// order). Used by ALTER TABLE ADD/DROP PARTITION to rebuild a tree
    /// while surviving leaves keep their OIDs — and hence their stored
    /// rows.
    pub fn with_leaf_oids(levels: Vec<PartitionLevel>, oids: Vec<PartOid>) -> Result<PartTree> {
        let expected: usize = levels.iter().map(|l| l.pieces.len()).product();
        if levels.is_empty() || oids.len() != expected {
            return Err(Error::InvalidMetadata(format!(
                "expected {} leaf oids, got {}",
                expected,
                oids.len()
            )));
        }
        {
            let mut sorted = oids.clone();
            sorted.sort();
            sorted.dedup();
            if sorted.len() != oids.len() {
                return Err(Error::InvalidMetadata("duplicate leaf oid".into()));
            }
        }
        // Build with placeholder dense OIDs, then overwrite.
        let mut tree = PartTree::new(levels, PartOid(0))?;
        for (leaf, oid) in tree.leaves.iter_mut().zip(oids) {
            leaf.oid = oid;
        }
        Ok(tree)
    }

    fn validated(levels: Vec<PartitionLevel>, leaves: Vec<LeafPart>) -> Result<PartTree> {
        Ok(PartTree { levels, leaves })
    }

    pub fn levels(&self) -> &[PartitionLevel] {
        &self.levels
    }

    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    pub fn leaves(&self) -> &[LeafPart] {
        &self.leaves
    }

    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Key column indices, one per level (outermost first).
    pub fn key_indices(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.key_index).collect()
    }

    pub fn leaf_by_oid(&self, oid: PartOid) -> Result<&LeafPart> {
        self.leaves
            .iter()
            .find(|l| l.oid == oid)
            .ok_or_else(|| Error::NotFound(format!("leaf partition {oid}")))
    }

    /// Paper Table 1 `partition_expansion`: all leaf OIDs.
    pub fn partition_expansion(&self) -> Vec<PartOid> {
        self.leaves.iter().map(|l| l.oid).collect()
    }

    /// Paper Table 1 `partition_constraints`: every leaf with its per-level
    /// constraint (default pieces report the uncovered remainder).
    pub fn partition_constraints(&self) -> Vec<(PartOid, Vec<IntervalSet>)> {
        self.leaves
            .iter()
            .map(|leaf| {
                let cons = leaf
                    .piece_path
                    .iter()
                    .zip(&self.levels)
                    .map(|(&i, level)| {
                        let p = &level.pieces[i];
                        if p.is_default {
                            level.uncovered()
                        } else {
                            p.constraint.clone()
                        }
                    })
                    .collect();
                (leaf.oid, cons)
            })
            .collect()
    }

    /// Paper Table 1 `partition_selection` — also the paper's `f_T`: route
    /// one key value per level to the owning leaf, or `⊥` (`None`).
    pub fn route(&self, key_values: &[Datum]) -> Option<PartOid> {
        if key_values.len() != self.levels.len() {
            return None;
        }
        let mut path = Vec::with_capacity(self.levels.len());
        for (level, v) in self.levels.iter().zip(key_values) {
            path.push(level.route(v)?);
        }
        self.leaf_at(&path).map(|l| l.oid)
    }

    fn leaf_at(&self, path: &[usize]) -> Option<&LeafPart> {
        // Leaves are in row-major order; compute the flat index.
        let mut idx = 0usize;
        for (l, &p) in path.iter().enumerate() {
            idx = idx * self.levels[l].pieces.len() + p;
        }
        self.leaves.get(idx)
    }

    /// The paper's `f*_T`, generalized to multiple levels (Figure 10): given
    /// one [`DerivedSet`] per level (from predicate analysis), return the
    /// OIDs of every leaf that may contain satisfying tuples.
    pub fn select_partitions(&self, derived: &[DerivedSet]) -> Result<Vec<PartOid>> {
        if derived.len() != self.levels.len() {
            return Err(Error::InvalidMetadata(format!(
                "expected {} per-level predicates, got {}",
                self.levels.len(),
                derived.len()
            )));
        }
        let per_level: Vec<Vec<usize>> = self
            .levels
            .iter()
            .zip(derived)
            .map(|(level, d)| level.select(d))
            .collect();
        let mut out = Vec::new();
        for leaf in &self.leaves {
            if leaf
                .piece_path
                .iter()
                .zip(&per_level)
                .all(|(p, sel)| sel.contains(p))
            {
                out.push(leaf.oid);
            }
        }
        Ok(out)
    }

    /// Convenience for single-level trees: select by one derived set.
    pub fn select_single_level(&self, derived: &DerivedSet) -> Result<Vec<PartOid>> {
        if self.levels.len() != 1 {
            return Err(Error::InvalidMetadata(
                "select_single_level on multi-level tree".into(),
            ));
        }
        self.select_partitions(std::slice::from_ref(derived))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_expr::interval::Interval;

    fn d(v: i32) -> Datum {
        Datum::Int32(v)
    }

    /// 10 ranges [0,10), [10,20), …, [90,100).
    fn decades(key_index: usize) -> PartitionLevel {
        let pieces = (0..10)
            .map(|i| {
                PartitionPiece::new(
                    format!("p{i}"),
                    IntervalSet::interval(Interval::half_open(d(i * 10), d((i + 1) * 10))),
                )
            })
            .collect();
        PartitionLevel::new(key_index, pieces).unwrap()
    }

    fn regions(key_index: usize) -> PartitionLevel {
        let pieces = vec![
            PartitionPiece::new("r1", IntervalSet::point(Datum::str("Region 1"))),
            PartitionPiece::new("r2", IntervalSet::point(Datum::str("Region 2"))),
        ];
        PartitionLevel::new(key_index, pieces).unwrap()
    }

    fn exact(set: IntervalSet) -> DerivedSet {
        DerivedSet {
            set,
            exact: true,
            null_possible: false,
        }
    }

    #[test]
    fn single_level_routing() {
        let t = PartTree::new(vec![decades(0)], PartOid(100)).unwrap();
        assert_eq!(t.num_leaves(), 10);
        assert_eq!(t.route(&[d(0)]), Some(PartOid(100)));
        assert_eq!(t.route(&[d(95)]), Some(PartOid(109)));
        // Out of range & NULL: no default piece → ⊥.
        assert_eq!(t.route(&[d(100)]), None);
        assert_eq!(t.route(&[Datum::Null]), None);
    }

    #[test]
    fn default_piece_catches_stragglers() {
        let mut pieces: Vec<PartitionPiece> = (0..3)
            .map(|i| {
                PartitionPiece::new(
                    format!("p{i}"),
                    IntervalSet::interval(Interval::half_open(d(i * 10), d((i + 1) * 10))),
                )
            })
            .collect();
        pieces.push(PartitionPiece::default_piece("other"));
        let level = PartitionLevel::new(0, pieces).unwrap();
        let t = PartTree::new(vec![level], PartOid(1)).unwrap();
        let def = t.route(&[d(999)]).unwrap();
        assert_eq!(def, PartOid(4));
        assert_eq!(t.route(&[Datum::Null]), Some(def));
        assert_eq!(t.route(&[d(15)]), Some(PartOid(2)));
    }

    #[test]
    fn overlapping_pieces_rejected() {
        let pieces = vec![
            PartitionPiece::new("a", IntervalSet::interval(Interval::half_open(d(0), d(20)))),
            PartitionPiece::new(
                "b",
                IntervalSet::interval(Interval::half_open(d(10), d(30))),
            ),
        ];
        assert!(PartitionLevel::new(0, pieces).is_err());
    }

    #[test]
    fn selection_equality_and_range() {
        let t = PartTree::new(vec![decades(0)], PartOid(0)).unwrap();
        // pk = 42 → exactly the [40,50) part.
        let sel = t
            .select_single_level(&exact(IntervalSet::point(d(42))))
            .unwrap();
        assert_eq!(sel, vec![PartOid(4)]);
        // pk < 25 → first three parts (Figure 5(c) shape).
        let sel = t
            .select_single_level(&exact(IntervalSet::from_cmp(mpp_expr::CmpOp::Lt, d(25))))
            .unwrap();
        assert_eq!(sel, vec![PartOid(0), PartOid(1), PartOid(2)]);
        // No predicate info → all parts (Figure 5(a)).
        let sel = t.select_single_level(&DerivedSet::full()).unwrap();
        assert_eq!(sel.len(), 10);
        // Empty set → nothing.
        let sel = t.select_single_level(&DerivedSet::empty_exact()).unwrap();
        assert!(sel.is_empty());
    }

    #[test]
    fn default_part_selected_conservatively() {
        let mut pieces: Vec<PartitionPiece> = (0..3)
            .map(|i| {
                PartitionPiece::new(
                    format!("p{i}"),
                    IntervalSet::interval(Interval::half_open(d(i * 10), d((i + 1) * 10))),
                )
            })
            .collect();
        pieces.push(PartitionPiece::default_piece("other"));
        let t = PartTree::new(vec![PartitionLevel::new(0, pieces).unwrap()], PartOid(0)).unwrap();
        // pk = 15 is covered by p1: the default part is NOT selected.
        let sel = t
            .select_single_level(&exact(IntervalSet::point(d(15))))
            .unwrap();
        assert_eq!(sel, vec![PartOid(1)]);
        // pk = 99 lives only in the default part.
        let sel = t
            .select_single_level(&exact(IntervalSet::point(d(99))))
            .unwrap();
        assert_eq!(sel, vec![PartOid(3)]);
        // pk > 15 straddles covered and uncovered space.
        let sel = t
            .select_single_level(&exact(IntervalSet::from_cmp(mpp_expr::CmpOp::Gt, d(15))))
            .unwrap();
        assert_eq!(sel, vec![PartOid(1), PartOid(2), PartOid(3)]);
        // NULL-possible predicates must keep the default part.
        let sel = t
            .select_single_level(&DerivedSet {
                set: IntervalSet::empty(),
                exact: true,
                null_possible: true,
            })
            .unwrap();
        assert_eq!(sel, vec![PartOid(3)]);
    }

    #[test]
    fn multi_level_selection_matches_figure_10() {
        // 24 months × 2 regions, as in paper Figures 9/10 (scaled down to 3
        // months for readability of the assertions).
        let t = PartTree::new(vec![decades(0), regions(1)], PartOid(0)).unwrap();
        assert_eq!(t.num_leaves(), 20);
        // date-only predicate → all regions of one date piece.
        let sel = t
            .select_partitions(&[exact(IntervalSet::point(d(5))), DerivedSet::full()])
            .unwrap();
        assert_eq!(sel.len(), 2);
        // region-only predicate → that region in all date pieces.
        let sel = t
            .select_partitions(&[
                DerivedSet::full(),
                exact(IntervalSet::point(Datum::str("Region 1"))),
            ])
            .unwrap();
        assert_eq!(sel.len(), 10);
        // both predicates → exactly one leaf.
        let sel = t
            .select_partitions(&[
                exact(IntervalSet::point(d(5))),
                exact(IntervalSet::point(Datum::str("Region 1"))),
            ])
            .unwrap();
        assert_eq!(sel.len(), 1);
        // no predicates → all leaves.
        let sel = t
            .select_partitions(&[DerivedSet::full(), DerivedSet::full()])
            .unwrap();
        assert_eq!(sel.len(), 20);
    }

    #[test]
    fn multi_level_routing() {
        let t = PartTree::new(vec![decades(0), regions(1)], PartOid(0)).unwrap();
        let leaf = t.route(&[d(15), Datum::str("Region 2")]).unwrap();
        let l = t.leaf_by_oid(leaf).unwrap();
        assert_eq!(l.piece_path, vec![1, 1]);
        assert_eq!(l.name, "p1.r2");
        // Unroutable second level → ⊥.
        assert_eq!(t.route(&[d(15), Datum::str("Region 9")]), None);
        // Wrong arity → ⊥.
        assert_eq!(t.route(&[d(15)]), None);
    }

    #[test]
    fn constraints_report_uncovered_for_default() {
        let pieces = vec![
            PartitionPiece::new("a", IntervalSet::interval(Interval::half_open(d(0), d(10)))),
            PartitionPiece::default_piece("rest"),
        ];
        let t = PartTree::new(vec![PartitionLevel::new(0, pieces).unwrap()], PartOid(0)).unwrap();
        let cons = t.partition_constraints();
        assert_eq!(cons.len(), 2);
        assert!(cons[0].1[0].contains(&d(5)));
        assert!(!cons[1].1[0].contains(&d(5)));
        assert!(cons[1].1[0].contains(&d(50)));
    }

    #[test]
    fn with_leaf_oids_preserves_identity() {
        let oids: Vec<PartOid> = [7, 3, 99, 12, 5, 41, 8, 2, 60, 77]
            .into_iter()
            .map(PartOid)
            .collect();
        let t = PartTree::with_leaf_oids(vec![decades(0)], oids.clone()).unwrap();
        assert_eq!(t.partition_expansion(), oids);
        // Routing still works against the remapped OIDs.
        assert_eq!(t.route(&[d(25)]), Some(PartOid(99)));
        // Wrong count and duplicates are rejected.
        assert!(PartTree::with_leaf_oids(vec![decades(0)], vec![PartOid(1)]).is_err());
        let mut dup = oids;
        dup[1] = dup[0];
        assert!(PartTree::with_leaf_oids(vec![decades(0)], dup).is_err());
    }

    #[test]
    fn expansion_lists_all_leaves() {
        let t = PartTree::new(vec![decades(0)], PartOid(7)).unwrap();
        let all = t.partition_expansion();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0], PartOid(7));
        assert_eq!(all[9], PartOid(16));
    }
}
