//! Property tests for partition trees: routing (`f_T`) and selection
//! (`f*_T`) must be consistent — a tuple routed to partition P that
//! satisfies predicate φ implies P ∈ f*(φ).

// `--cfg ci_quick` (set via RUSTFLAGS by time-bounded CI lanes) shrinks
// the proptest case count; the cfg is probed, not declared, so silence
// the unexpected-cfgs lint.
#![allow(unexpected_cfgs)]

/// Full case count normally; an eighth (floor 32) under `ci_quick`.
fn prop_cases(full: u32) -> u32 {
    if cfg!(ci_quick) {
        (full / 8).max(32)
    } else {
        full
    }
}

use mpp_catalog::builders::{list_level, range_level_equal_width};
use mpp_catalog::{PartTree, PartitionLevel, PartitionPiece};
use mpp_common::{Datum, PartOid, Row};
use mpp_expr::analysis::derive_interval_set;
use mpp_expr::{eval, ColRef, EvalContext, Expr, IntervalSet};
use proptest::prelude::*;

fn d(v: i32) -> Datum {
    Datum::Int32(v)
}

/// A random single-level partitioning over [0, 100): equal ranges, or a
/// list over point groups, optionally with a default piece.
fn arb_level() -> impl Strategy<Value = PartitionLevel> {
    prop_oneof![
        (2usize..12).prop_map(|n| { range_level_equal_width(0, d(0), d(100), n).unwrap() }),
        (1usize..6, any::<bool>()).prop_map(|(groups, with_default)| {
            // Point groups 0..groups*10 step 7 (sparse, leaves gaps).
            let gs: Vec<(String, Vec<Datum>)> = (0..groups)
                .map(|g| {
                    (
                        format!("g{g}"),
                        vec![d((g * 17 % 100) as i32), d((g * 23 % 100) as i32 + 1)],
                    )
                })
                .collect();
            list_level(0, gs, with_default).unwrap()
        }),
        // Ranges with a default piece.
        (2usize..8).prop_map(|n| {
            let mut pieces: Vec<PartitionPiece> = range_level_equal_width(0, d(0), d(80), n)
                .unwrap()
                .pieces
                .clone();
            pieces.push(PartitionPiece::default_piece("rest"));
            PartitionLevel::new(0, pieces).unwrap()
        }),
    ]
}

fn key() -> ColRef {
    ColRef::new(1, "pk")
}

fn arb_pred() -> impl Strategy<Value = Expr> {
    let lit = -10i32..110;
    prop_oneof![
        (lit.clone()).prop_map(|v| Expr::eq(Expr::col(key()), Expr::lit(v))),
        (lit.clone()).prop_map(|v| Expr::lt(Expr::col(key()), Expr::lit(v))),
        (lit.clone()).prop_map(|v| Expr::ge(Expr::col(key()), Expr::lit(v))),
        (lit.clone(), lit.clone()).prop_map(|(a, b)| Expr::between(
            Expr::col(key()),
            Expr::lit(a.min(b)),
            Expr::lit(a.max(b))
        )),
        (lit.clone(), lit.clone()).prop_map(|(a, b)| Expr::or(vec![
            Expr::lt(Expr::col(key()), Expr::lit(a)),
            Expr::gt(Expr::col(key()), Expr::lit(b)),
        ])),
        Just(Expr::not(Expr::IsNull(Box::new(Expr::col(key()))))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(prop_cases(256)))]

    /// f_T / f*_T consistency: if value v routes to P and satisfies φ,
    /// then P is selected by f*(φ).
    #[test]
    fn routing_is_covered_by_selection(
        level in arb_level(),
        pred in arb_pred(),
        v in -5i32..105,
    ) {
        let tree = PartTree::new(vec![level], PartOid(0)).unwrap();
        let Some(part) = tree.route(&[d(v)]) else {
            return Ok(()); // ⊥: the tuple is unstorable, nothing to check
        };
        let ctx = EvalContext::from_columns(&[key()]);
        let row = Row::new(vec![d(v)]);
        let satisfied = eval(&pred, &row, &ctx)
            .unwrap()
            .as_bool()
            .unwrap()
            .unwrap_or(false);
        if satisfied {
            let derived = derive_interval_set(&pred, &key(), None);
            let selected = tree.select_partitions(&[derived]).unwrap();
            prop_assert!(
                selected.contains(&part),
                "v={v} satisfies {pred}, routed to {part}, but selection returned {selected:?}"
            );
        }
    }

    /// A NULL key routes to the default piece when one exists, and
    /// null-possible predicates keep that piece selected.
    #[test]
    fn null_routing_consistency(level in arb_level()) {
        let has_default = level.default_position().is_some();
        let tree = PartTree::new(vec![level], PartOid(0)).unwrap();
        let routed = tree.route(&[Datum::Null]);
        prop_assert_eq!(routed.is_some(), has_default);
        if let Some(p) = routed {
            // IS NULL selects exactly partitions that may hold nulls.
            let derived = derive_interval_set(
                &Expr::IsNull(Box::new(Expr::col(key()))),
                &key(),
                None,
            );
            let selected = tree.select_partitions(&[derived]).unwrap();
            prop_assert!(selected.contains(&p));
        }
    }

    /// Expansion ⊇ any selection; trivial predicate selects everything
    /// that can hold data.
    #[test]
    fn selection_is_subset_of_expansion(level in arb_level(), pred in arb_pred()) {
        let tree = PartTree::new(vec![level], PartOid(0)).unwrap();
        let all = tree.partition_expansion();
        let derived = derive_interval_set(&pred, &key(), None);
        let selected = tree.select_partitions(&[derived]).unwrap();
        for p in &selected {
            prop_assert!(all.contains(p));
        }
        // No duplicates.
        let mut dedup = selected.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), selected.len());
    }

    /// partition_constraints is faithful: v routes to P iff P's reported
    /// constraint contains v (non-null values; default pieces report the
    /// uncovered remainder).
    #[test]
    fn constraints_match_routing(level in arb_level(), v in -5i32..105) {
        let tree = PartTree::new(vec![level], PartOid(0)).unwrap();
        let routed = tree.route(&[d(v)]);
        let cons = tree.partition_constraints();
        let containing: Vec<PartOid> = cons
            .iter()
            .filter(|(_, sets)| sets[0].contains(&d(v)))
            .map(|(p, _)| *p)
            .collect();
        match routed {
            Some(p) => prop_assert_eq!(containing, vec![p]),
            None => prop_assert!(containing.is_empty()),
        }
    }

    /// Multi-level selection equals the cartesian filtering of per-level
    /// selections (Figure 10 semantics).
    #[test]
    fn multilevel_is_per_level_product(v1 in 0i32..100, v2 in 0i32..100) {
        let l1 = range_level_equal_width(0, d(0), d(100), 5).unwrap();
        let l2 = range_level_equal_width(1, d(0), d(100), 4).unwrap();
        let tree = PartTree::new(vec![l1, l2], PartOid(0)).unwrap();
        let p1 = Expr::eq(Expr::col(key()), Expr::lit(v1));
        let k2 = ColRef::new(2, "k2");
        let p2 = Expr::eq(Expr::col(k2.clone()), Expr::lit(v2));
        let derived = [
            derive_interval_set(&p1, &key(), None),
            derive_interval_set(&p2, &k2, None),
        ];
        let selected = tree.select_partitions(&derived).unwrap();
        prop_assert_eq!(selected.len(), 1);
        prop_assert_eq!(tree.route(&[d(v1), d(v2)]), Some(selected[0]));
    }

    /// The binary-search `route` agrees with the linear reference scan over
    /// the pieces on every value, including boundaries, out-of-range values
    /// and NULL.
    #[test]
    fn binary_route_matches_linear_scan(level in arb_level(), v in -5i32..110, null in any::<bool>()) {
        let value = if null { Datum::Null } else { d(v) };
        let reference = if value.is_null() {
            level.default_position()
        } else {
            level
                .pieces
                .iter()
                .position(|p| !p.is_default && p.constraint.contains(&value))
                .or_else(|| level.default_position())
        };
        prop_assert_eq!(level.route(&value), reference);
    }

    /// Leaf constraints of non-default range pieces partition the domain:
    /// every value is in at most one piece's interval set.
    #[test]
    fn range_pieces_are_disjoint(n in 2usize..12, v in 0i32..100) {
        let level = range_level_equal_width(0, d(0), d(100), n).unwrap();
        let count = level
            .pieces
            .iter()
            .filter(|p| p.constraint.contains(&d(v)))
            .count();
        prop_assert_eq!(count, 1);
    }
}

/// Deterministic regression: IntervalSet-based constraints of Figure 10.
#[test]
fn figure10_multilevel_predicates() {
    let date = range_level_equal_width(0, d(0), d(24), 24).unwrap(); // 24 "months"
    let region = list_level(
        1,
        vec![
            ("r1".into(), vec![Datum::str("Region 1")]),
            ("r2".into(), vec![Datum::str("Region 2")]),
        ],
        false,
    )
    .unwrap();
    let tree = PartTree::new(vec![date, region], PartOid(0)).unwrap();
    let full = mpp_expr::analysis::DerivedSet::full();
    let jan = mpp_expr::analysis::DerivedSet {
        set: IntervalSet::point(d(0)),
        exact: true,
        null_possible: false,
    };
    let r1 = mpp_expr::analysis::DerivedSet {
        set: IntervalSet::point(Datum::str("Region 1")),
        exact: true,
        null_possible: false,
    };
    // date='Jan' → T_{1,1..n}
    assert_eq!(
        tree.select_partitions(&[jan.clone(), full.clone()])
            .unwrap()
            .len(),
        2
    );
    // region='Region 1' → T_{1..24,1}
    assert_eq!(
        tree.select_partitions(&[full.clone(), r1.clone()])
            .unwrap()
            .len(),
        24
    );
    // both → T_{1,1}
    assert_eq!(tree.select_partitions(&[jan, r1]).unwrap().len(), 1);
    // φ → all leaves
    assert_eq!(
        tree.select_partitions(&[full.clone(), full]).unwrap().len(),
        48
    );
}
