//! Long-lived segment worker threads.
//!
//! An MPP deployment keeps one executor process per segment alive for
//! the lifetime of the cluster; queries are dispatched to the processes
//! that already exist. Spawning fresh threads per query (or worse, per
//! slice) pays thread start-up latency on the critical path of every
//! stage — measurably more than the fan-out saves on short queries.
//! This module mirrors the real architecture: a process-global pool of
//! worker threads, one per segment beyond segment 0 (which runs inline
//! on the query's driver thread), parked on a job channel between
//! queries.
//!
//! The only subtle part is lifetimes: jobs borrow the plan and the
//! per-query [`crate::context::ExecContext`], which do not live for
//! `'static`. [`run_with`] erases the lifetime to hand the job to a
//! long-lived thread, and re-establishes safety by not returning until
//! every job has either run to completion or provably never started —
//! the borrows outlive the call, and the call outlives the jobs.

use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::OnceLock;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Worker {
    jobs: mpsc::Sender<Job>,
}

fn spawn_worker(idx: usize) -> Worker {
    let (tx, rx) = mpsc::channel::<Job>();
    std::thread::Builder::new()
        .name(format!("mpp-segment-{}", idx + 1))
        .spawn(move || {
            for job in rx {
                // A panicking slice must not take the long-lived worker
                // down with it; the driver observes the panic through
                // the job's completion receipt.
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
        })
        .expect("failed to spawn segment worker thread");
    Worker { jobs: tx }
}

static POOL: OnceLock<Mutex<Vec<Worker>>> = OnceLock::new();

/// Dispatch `jobs[i]` to long-lived worker thread `i`, run `main` on the
/// calling thread while they execute, then block until every job has
/// finished. Returns `main`'s result plus, per job, whether it completed
/// without panicking (`false` covers both a panicked job and a job that
/// never ran because its worker was gone).
pub(crate) fn run_with<'env, T>(
    jobs: Vec<Box<dyn FnOnce() + Send + 'env>>,
    main: impl FnOnce() -> T,
) -> (T, Vec<bool>) {
    let pool = POOL.get_or_init(|| Mutex::new(Vec::new()));
    let mut receipts: Vec<Option<mpsc::Receiver<()>>> = Vec::with_capacity(jobs.len());
    {
        let mut workers = pool.lock();
        while workers.len() < jobs.len() {
            let idx = workers.len();
            workers.push(spawn_worker(idx));
        }
        for (i, job) in jobs.into_iter().enumerate() {
            // SAFETY: this function does not return before `done_rx`
            // yields a receipt or disconnects, and either outcome means
            // the job has finished running (or was dropped without ever
            // running, see the send-failure arm). Everything the job
            // borrows therefore outlives its execution; the `'static`
            // erasure is confined to that window.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            let (done_tx, done_rx) = mpsc::channel::<()>();
            let wrapped: Job = Box::new(move || {
                job();
                let _ = done_tx.send(());
            });
            match workers[i].jobs.send(wrapped) {
                Ok(()) => receipts.push(Some(done_rx)),
                Err(_) => {
                    // The worker's queue hung up (its thread died on a
                    // prior panic path): the job came back in the error
                    // and was dropped unrun. Replace the worker so the
                    // next batch has a live one.
                    workers[i] = spawn_worker(i);
                    receipts.push(None);
                }
            }
        }
        // Release the pool lock before blocking: concurrent queries may
        // enqueue to the same workers while this one waits.
    }
    // If `main` panics we must still join the outstanding jobs before
    // unwinding — they borrow stack data from our caller.
    let main_out = catch_unwind(AssertUnwindSafe(main));
    let oks: Vec<bool> = receipts
        .into_iter()
        .map(|r| match r {
            // A disconnect without a receipt means the job panicked (the
            // completion sender was dropped during unwind) — it is no
            // longer running either way.
            Some(rx) => rx.recv().is_ok(),
            None => false,
        })
        .collect();
    match main_out {
        Ok(out) => (out, oks),
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn jobs_run_on_workers_and_join() {
        let counter = AtomicU64::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4u64)
            .map(|i| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(i + 1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let (main_out, oks) = run_with(jobs, || 7);
        assert_eq!(main_out, 7);
        assert_eq!(oks, vec![true; 4]);
        assert_eq!(counter.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
    }

    #[test]
    fn panicked_job_reports_false_and_pool_survives() {
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> =
            vec![Box::new(|| panic!("boom")), Box::new(|| {})];
        let ((), oks) = run_with(jobs, || {});
        assert_eq!(oks, vec![false, true]);
        // The workers are still serviceable afterwards.
        let done = AtomicU64::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..2)
            .map(|_| {
                let done = &done;
                Box::new(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let ((), oks) = run_with(jobs, || {});
        assert_eq!(oks, vec![true, true]);
        assert_eq!(done.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn empty_batch_just_runs_main() {
        let (out, oks) = run_with(Vec::new(), || "main");
        assert_eq!(out, "main");
        assert!(oks.is_empty());
    }
}
