//! # mpp-executor
//!
//! The MPP runtime simulator. A physical plan executes once per *segment*
//! (worker); [`mpp_plan::PhysicalPlan::Motion`] operators are the only
//! points where rows cross segment boundaries — Gather funnels to the
//! master, Redistribute re-hashes, Broadcast replicates (paper §3.1).
//!
//! The partitioning operators work exactly as §2.2 describes:
//!
//! * a `PartitionSelector` evaluates its per-level predicates — against
//!   constants and prepared-statement parameters when childless (static
//!   selection), or against every input tuple when it has a child
//!   (dynamic selection) — and **pushes the selected partition OIDs into a
//!   per-(partScanId, segment) shared-memory registry**
//!   (the `partition_propagation` built-in of Table 1);
//! * the paired `DynamicScan` consumes that registry entry and scans only
//!   those partitions. A scan whose registry entry was never written is a
//!   runtime error — the §3.1 invalid-plan condition, detectable here as
//!   well as statically.
//!
//! Execution comes in two [`ExecMode`]s: `Sequential` (one driver
//! thread interprets every segment's slice in turn) and `Parallel` (the
//! plan is cut into slices at Motion boundaries — see [`slice`] — and
//! every segment's slice runs on its own worker thread, stage by
//! stage). Both modes return the same bag of rows and identical merged
//! statistics; only the per-segment `elapsed` breakdown differs.
//!
//! Execution also collects [`ExecutionStats`] — distinct partitions
//! scanned per table, tuples read, rows moved, now with per-segment
//! [`SegmentStats`] — which the benchmark harness uses to regenerate
//! the paper's Figures 16–17 and Table 2.

pub mod block_exec;
pub mod context;
pub mod exec;
pub mod morsel;
mod pool;
pub mod prepared;
pub mod slice;
pub mod stats;
pub mod stream;

#[cfg(test)]
mod motion_tests;

pub use context::ExecContext;
pub use exec::{
    execute, execute_mode, execute_stream_sched, execute_with_params, execute_with_params_engine,
    execute_with_params_mode, execute_with_params_sched, ExecEngine, ExecMode, Executor,
    QueryResult,
};
pub use morsel::{SchedConfig, SchedPolicy};
pub use prepared::{execute_prepared, CompiledCache, PreparedPlan};
pub use slice::SlicePlan;
pub use stats::{ExecutionStats, SegmentStats};
pub use stream::{CancelToken, ResultChunk, RowSink, StreamResult};
