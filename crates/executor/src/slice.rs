//! Plan slicing for parallel execution.
//!
//! A multi-process MPP executor does not interpret the whole plan on one
//! thread: it cuts the tree at [`mpp_plan::PhysicalPlan::Motion`]
//! boundaries into *slices* and runs each slice on every segment's
//! worker process (paper §3.1 — Motions are the only points where rows
//! cross process boundaries). [`SlicePlan::cut`] computes the stage
//! schedule: every Motion node becomes one stage, ordered children
//! before parents so a stage only consumes Motions that earlier stages
//! already materialized; the slice above the topmost Motions runs last
//! as the *root slice*. Init plans ([`init_plan_sites`]) execute before
//! any stage, the way classic planners run init plans before the main
//! plan — which is what lets a gated scan below a Motion read a
//! parameter its `InitPlanOids` sibling publishes from the root slice.

use mpp_common::MotionId;
use mpp_plan::{MotionKind, PhysicalPlan};

/// One Motion boundary: executing its `child` on every segment and
/// routing the result by `kind` is one parallel stage.
pub struct MotionSite<'a> {
    /// Stable id — identical to the one [`PhysicalPlan::motion_sites`]
    /// assigns (pre-order position among Motion nodes).
    pub id: MotionId,
    pub kind: &'a MotionKind,
    /// The Motion node itself (cache key lookups go through the
    /// context's address overlay).
    pub node: &'a PhysicalPlan,
    /// The subtree the stage executes per segment.
    pub child: &'a PhysicalPlan,
}

/// The stage schedule for one plan.
pub struct SlicePlan<'a> {
    /// Motion stages, children before parents (post-order).
    pub stages: Vec<MotionSite<'a>>,
    /// The plan root; the slice above all Motions runs after every stage.
    pub root: &'a PhysicalPlan,
}

impl<'a> SlicePlan<'a> {
    /// Cut `plan` at its Motion boundaries.
    ///
    /// Ids are assigned in pre-order (matching
    /// [`PhysicalPlan::motion_sites`], hence stable for a given tree
    /// shape); the stage list is emitted in post-order so that by the
    /// time a stage runs, every Motion in its slice is already cached.
    pub fn cut(plan: &'a PhysicalPlan) -> SlicePlan<'a> {
        fn walk<'a>(node: &'a PhysicalPlan, next: &mut u32, out: &mut Vec<MotionSite<'a>>) {
            if let PhysicalPlan::Motion { kind, child } = node {
                let id = MotionId(*next);
                *next += 1;
                walk(child, next, out);
                out.push(MotionSite {
                    id,
                    kind,
                    node,
                    child,
                });
            } else {
                for c in node.children() {
                    walk(c, next, out);
                }
            }
        }
        let mut stages = Vec::new();
        walk(plan, &mut 0, &mut stages);
        SlicePlan { stages, root: plan }
    }

    /// Number of slices (one per Motion, plus the root slice).
    pub fn num_slices(&self) -> usize {
        self.stages.len() + 1
    }
}

/// Every `InitPlanOids` node in the plan, in pre-order. The drivers run
/// these once, before the main plan, so every `$oids` parameter is
/// published before any slice that might read it executes — regardless
/// of where in the tree the planner placed the node.
pub fn init_plan_sites(plan: &PhysicalPlan) -> Vec<&PhysicalPlan> {
    fn walk<'a>(node: &'a PhysicalPlan, out: &mut Vec<&'a PhysicalPlan>) {
        if matches!(node, PhysicalPlan::InitPlanOids { .. }) {
            out.push(node);
        }
        for c in node.children() {
            walk(c, out);
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_common::{PartOid, TableOid};

    fn leaf(part: u32, gate: Option<u32>) -> PhysicalPlan {
        PhysicalPlan::PartScan {
            table: TableOid(1),
            part: PartOid(part),
            part_name: format!("p{part}"),
            output: vec![],
            filter: None,
            gate,
        }
    }

    fn motion(child: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(child),
        }
    }

    #[test]
    fn cut_orders_children_before_parents_with_preorder_ids() {
        // Motion#0( Append[ Motion#1(leaf), Motion#2(leaf) ] )
        let plan = motion(PhysicalPlan::Append {
            output: vec![],
            children: vec![motion(leaf(1, None)), motion(leaf(2, None))],
        });
        let slices = SlicePlan::cut(&plan);
        assert_eq!(slices.num_slices(), 4);
        let ids: Vec<u32> = slices.stages.iter().map(|s| s.id.0).collect();
        // Inner motions (ids 1, 2) stage before the outer one (id 0).
        assert_eq!(ids, vec![1, 2, 0]);
        // Ids agree with the pre-order enumeration the context uses.
        let pre: Vec<u32> = plan.motion_sites().iter().map(|(id, _)| id.0).collect();
        assert_eq!(pre, vec![0, 1, 2]);
    }

    #[test]
    fn plan_without_motions_has_only_the_root_slice() {
        let plan = leaf(1, None);
        let slices = SlicePlan::cut(&plan);
        assert!(slices.stages.is_empty());
        assert_eq!(slices.num_slices(), 1);
    }

    #[test]
    fn init_plan_sites_found_at_any_depth() {
        let plan = motion(PhysicalPlan::Sequence {
            children: vec![
                PhysicalPlan::InitPlanOids {
                    param: 1,
                    table: TableOid(1),
                    key: mpp_expr::Expr::Lit(mpp_common::Datum::Int64(0)),
                    child: Box::new(leaf(9, None)),
                },
                motion(PhysicalPlan::InitPlanOids {
                    param: 2,
                    table: TableOid(1),
                    key: mpp_expr::Expr::Lit(mpp_common::Datum::Int64(0)),
                    child: Box::new(leaf(8, None)),
                }),
                leaf(1, Some(1)),
            ],
        });
        let sites = init_plan_sites(&plan);
        let params: Vec<u32> = sites
            .iter()
            .map(|s| match s {
                PhysicalPlan::InitPlanOids { param, .. } => *param,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(params, vec![1, 2]);
    }
}
