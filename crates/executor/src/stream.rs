//! Streaming result delivery and cooperative cancellation.
//!
//! The executor's collecting entry points ([`crate::execute_with_params_sched`]
//! and friends) are thin wrappers over **one** streaming driver: result
//! chunks flow through a caller-supplied sink as each segment finishes,
//! instead of being materialized into a single `Vec<Row>` first. The
//! network server feeds the sink into a bounded channel (backpressure: a
//! slow client stalls the executor at the next chunk boundary instead of
//! ballooning server memory); the in-process path collects the chunks
//! into the familiar row vector.
//!
//! Cancellation is cooperative. A [`CancelToken`] is checked at block
//! boundaries — per stage, per segment, per partition scanned, per chunk
//! emitted — so a `Cancel` frame or a dropped connection stops the query
//! within one block of work, surfacing as [`Error::Cancelled`] with the
//! statistics accumulated so far.

use crate::stats::ExecutionStats;
use mpp_common::{Error, Result, Row, RowBlock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation handle shared between a query's driver and
/// whoever may want to stop it (the network layer's reader thread, a
/// timeout, a test).
///
/// Cloning is cheap (one `Arc`); all clones observe the same state.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Default)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    timed_out: AtomicBool,
}

impl CancelToken {
    /// A token that only trips when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally trips once `timeout` has elapsed.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
                timed_out: AtomicBool::new(false),
            }),
        }
    }

    /// Request cancellation. Idempotent; the executor notices at its
    /// next check.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Has the token tripped (explicitly or by deadline)?
    pub fn is_cancelled(&self) -> bool {
        self.check().is_err()
    }

    /// Did the token trip by reaching its deadline (as opposed to an
    /// explicit [`CancelToken::cancel`])? The server maps this to a
    /// `TIMEOUT` rather than `CANCELLED` error code.
    pub fn timed_out(&self) -> bool {
        self.inner.timed_out.load(Ordering::Acquire)
    }

    /// The cancellation check the executor runs at block boundaries.
    pub fn check(&self) -> Result<()> {
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.inner.timed_out.store(true, Ordering::Release);
                self.inner.cancelled.store(true, Ordering::Release);
                return Err(Error::Cancelled("query deadline exceeded".into()));
            }
        }
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Err(Error::Cancelled("query cancelled".into()));
        }
        Ok(())
    }
}

/// One incremental unit of query output: the row engine emits row
/// vectors (one per segment), the block engine emits `RowBlock` chunks.
#[derive(Debug, Clone)]
pub enum ResultChunk {
    Rows(Vec<Row>),
    Block(RowBlock),
}

impl ResultChunk {
    /// Logical rows in this chunk.
    pub fn len(&self) -> usize {
        match self {
            ResultChunk::Rows(rows) => rows.len(),
            ResultChunk::Block(b) => b.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append this chunk's rows to a collector — the convenience-wrapper
    /// path behind the materializing API.
    pub fn append_to(self, out: &mut Vec<Row>) {
        match self {
            ResultChunk::Rows(mut rows) => out.append(&mut rows),
            ResultChunk::Block(b) => out.extend(b.to_rows()),
        }
    }
}

/// The chunk consumer: returns `Err` to abort the query (the error
/// propagates out of the streaming driver as the query's result).
pub type RowSink<'s> = dyn FnMut(ResultChunk) -> Result<()> + 's;

/// Outcome of a streaming execution. Unlike the collecting API, the
/// statistics accumulated so far are retained **even on error** — a
/// cancelled query reports how much it scanned before stopping, which is
/// what crosses the wire in an `Error` frame.
pub struct StreamResult {
    pub stats: ExecutionStats,
    pub result: Result<()>,
}

impl StreamResult {
    /// Convert to the collecting API's contract: error, or stats.
    pub fn into_stats(self) -> Result<ExecutionStats> {
        self.result.map(|()| self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        assert!(!t.timed_out());
    }

    #[test]
    fn cancel_trips_all_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        let err = t.check().unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        assert!(!t.timed_out());
    }

    #[test]
    fn zero_timeout_trips_as_deadline() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        let err = t.check().unwrap_err();
        assert_eq!(err.kind(), "cancelled");
        assert!(t.timed_out());
        assert!(t.is_cancelled());
    }

    #[test]
    fn chunk_append_flattens_both_variants() {
        let rows = vec![Row::new(vec![mpp_common::Datum::Int32(1)])];
        let block = RowBlock::from_rows(&rows, 1);
        let mut out = Vec::new();
        ResultChunk::Rows(rows.clone()).append_to(&mut out);
        assert_eq!(ResultChunk::Block(block.clone()).len(), 1);
        ResultChunk::Block(block).append_to(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], out[1]);
        assert!(!ResultChunk::Rows(rows).is_empty());
    }
}
