//! Focused Motion-operator tests: the simulator's data-movement semantics
//! must exactly match the MPP model (paper §3.1) or the optimizer's
//! co-location reasoning is meaningless.

#![cfg(test)]

use crate::exec::execute;
use mpp_catalog::{Catalog, Distribution, TableDesc};
use mpp_common::{row, Column, DataType, Datum, Row, Schema, TableOid};
use mpp_expr::{ColRef, Expr};
use mpp_plan::{JoinType, MotionKind, PhysicalPlan};
use mpp_storage::Storage;

fn cr(id: u32, name: &str) -> ColRef {
    ColRef::new(id, name)
}

/// t(a, b) hash-distributed on a across `segs` segments, rows (i, i*10).
fn setup(segs: usize, rows: i32) -> (Storage, TableOid) {
    let cat = Catalog::new();
    let schema = Schema::new(vec![
        Column::new("a", DataType::Int32),
        Column::new("b", DataType::Int32),
    ]);
    let t = cat.allocate_table_oid();
    cat.register(TableDesc {
        oid: t,
        name: "t".into(),
        schema,
        distribution: Distribution::Hashed(vec![0]),
        partitioning: None,
    })
    .unwrap();
    let st = Storage::new(cat, segs);
    st.insert(t, (0..rows).map(|i| row![i, i * 10])).unwrap();
    (st, t)
}

fn scan(t: TableOid) -> PhysicalPlan {
    PhysicalPlan::TableScan {
        table: t,
        table_name: "t".into(),
        output: vec![cr(1, "a"), cr(2, "b")],
        filter: None,
    }
}

#[test]
fn gather_funnels_everything_exactly_once() {
    let (st, t) = setup(5, 100);
    let plan = PhysicalPlan::Motion {
        kind: MotionKind::Gather,
        child: Box::new(scan(t)),
    };
    let res = execute(&st, &plan).unwrap();
    assert_eq!(res.rows.len(), 100);
    // Values are exactly 0..100 once each.
    let mut seen: Vec<i64> = res
        .rows
        .iter()
        .map(|r| r.values()[0].as_i64().unwrap())
        .collect();
    seen.sort();
    assert_eq!(seen, (0..100).collect::<Vec<i64>>());
}

#[test]
fn gather_one_takes_a_single_copy_of_replicated_input() {
    let (st, t) = setup(4, 20);
    let bcast = PhysicalPlan::Motion {
        kind: MotionKind::Broadcast,
        child: Box::new(scan(t)),
    };
    // Broadcast then GatherOne: exactly one copy survives.
    let plan = PhysicalPlan::Motion {
        kind: MotionKind::GatherOne,
        child: Box::new(bcast.clone()),
    };
    let res = execute(&st, &plan).unwrap();
    assert_eq!(res.rows.len(), 20);
    // Broadcast then (incorrect) Gather would multiply by segments.
    let plan = PhysicalPlan::Motion {
        kind: MotionKind::Gather,
        child: Box::new(bcast),
    };
    let res = execute(&st, &plan).unwrap();
    assert_eq!(res.rows.len(), 80);
}

#[test]
fn redistribute_colocates_join_keys() {
    // Redistribute both sides of a self-join on b: every match must be
    // found even though b is not the storage distribution key.
    let (st, t) = setup(4, 50);
    let left = PhysicalPlan::Motion {
        kind: MotionKind::Redistribute(vec![cr(2, "b")]),
        child: Box::new(scan(t)),
    };
    let right_scan = PhysicalPlan::TableScan {
        table: t,
        table_name: "t".into(),
        output: vec![cr(3, "a2"), cr(4, "b2")],
        filter: None,
    };
    let right = PhysicalPlan::Motion {
        kind: MotionKind::Redistribute(vec![cr(4, "b2")]),
        child: Box::new(right_scan),
    };
    let join = PhysicalPlan::HashJoin {
        join_type: JoinType::Inner,
        left_keys: vec![Expr::col(cr(2, "b"))],
        right_keys: vec![Expr::col(cr(4, "b2"))],
        residual: None,
        left: Box::new(left),
        right: Box::new(right),
    };
    let plan = PhysicalPlan::Motion {
        kind: MotionKind::Gather,
        child: Box::new(join),
    };
    let res = execute(&st, &plan).unwrap();
    assert_eq!(res.rows.len(), 50, "every row matches itself exactly once");
}

#[test]
fn mismatched_distribution_misses_matches() {
    // Negative control: joining WITHOUT co-locating motions silently
    // loses matches — the simulator really is distribution-sensitive.
    let (st, t) = setup(4, 50);
    let right_scan = PhysicalPlan::TableScan {
        table: t,
        table_name: "t".into(),
        output: vec![cr(3, "a2"), cr(4, "b2")],
        filter: None,
    };
    let join = PhysicalPlan::HashJoin {
        join_type: JoinType::Inner,
        // Join a = b2: rows live on segments by hash(a) vs hash(a2), so
        // a-row 30 and b2-row 30 (a2=3) are usually on different segments.
        left_keys: vec![Expr::col(cr(1, "a"))],
        right_keys: vec![Expr::col(cr(4, "b2"))],
        residual: None,
        left: Box::new(scan(t)),
        right: Box::new(right_scan),
    };
    let plan = PhysicalPlan::Motion {
        kind: MotionKind::Gather,
        child: Box::new(join),
    };
    let res = execute(&st, &plan).unwrap();
    // The correct answer is 5 matches (a ∈ {0,10,20,30,40}); without
    // motions we must find at most that, and (with 4 segments and FNV
    // hashing) strictly fewer.
    assert!(res.rows.len() < 5, "got {} matches", res.rows.len());
}

#[test]
fn broadcast_preserves_per_segment_copies() {
    let (st, t) = setup(3, 10);
    let plan = PhysicalPlan::Motion {
        kind: MotionKind::Broadcast,
        child: Box::new(scan(t)),
    };
    // Each of the 3 segments sees all 10 rows; the raw union is 30.
    let res = execute(&st, &plan).unwrap();
    assert_eq!(res.rows.len(), 30);
}

#[test]
fn motion_cache_does_not_duplicate_side_effects() {
    // A motion's child executes once per source segment even when several
    // target segments pull from it: the stats must count one scan per
    // segment, not per (source, target) pair.
    let (st, t) = setup(4, 40);
    let plan = PhysicalPlan::Motion {
        kind: MotionKind::Broadcast,
        child: Box::new(scan(t)),
    };
    let res = execute(&st, &plan).unwrap();
    assert_eq!(res.stats.table_scans, 4, "one scan per source segment");
    assert_eq!(res.stats.tuples_scanned, 40);
    assert_eq!(res.stats.motions, 1);
    assert_eq!(res.stats.rows_moved, 40);
}

#[test]
fn empty_input_motions() {
    let (st, t) = setup(4, 0);
    for kind in [
        MotionKind::Gather,
        MotionKind::GatherOne,
        MotionKind::Broadcast,
        MotionKind::Redistribute(vec![cr(1, "a")]),
    ] {
        let plan = PhysicalPlan::Motion {
            kind,
            child: Box::new(scan(t)),
        };
        let res = execute(&st, &plan).unwrap();
        assert!(res.rows.is_empty());
    }
}

#[test]
fn redistribute_on_null_keys_is_deterministic() {
    // NULL keys must land on exactly one segment (not be dropped).
    let cat = Catalog::new();
    let schema = Schema::new(vec![Column::new("a", DataType::Int32)]);
    let t = cat.allocate_table_oid();
    cat.register(TableDesc {
        oid: t,
        name: "t".into(),
        schema,
        distribution: Distribution::Singleton,
        partitioning: None,
    })
    .unwrap();
    let st = Storage::new(cat, 4);
    st.insert(
        t,
        vec![Row::new(vec![Datum::Null]), Row::new(vec![Datum::Null])],
    )
    .unwrap();
    let plan = PhysicalPlan::Motion {
        kind: MotionKind::Redistribute(vec![cr(1, "a")]),
        child: Box::new(PhysicalPlan::TableScan {
            table: t,
            table_name: "t".into(),
            output: vec![cr(1, "a")],
            filter: None,
        }),
    };
    let res = execute(&st, &plan).unwrap();
    assert_eq!(res.rows.len(), 2, "null-keyed rows survive redistribution");
}
