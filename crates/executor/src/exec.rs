//! The plan interpreter.
//!
//! `exec(plan, segment, …)` evaluates a plan subtree *as seen by one
//! segment*. Children execute left-to-right (the ordering guarantee the
//! placement algorithms rely on), and a [`mpp_plan::PhysicalPlan::Motion`]
//! materializes its child once for **all** segments and hands each target
//! segment its share.
//!
//! Two drivers run the per-segment interpreter (see [`ExecMode`]):
//! sequential (one thread interprets every segment in turn, Motions
//! materialize lazily) and parallel (the plan is cut into slices at
//! Motion boundaries and every segment's slice runs on its own worker
//! thread, stage by stage — the process shape of a real MPP executor).
//! Both produce the same rows and the same merged statistics.

use crate::context::ExecContext;
use crate::morsel::{self, SchedConfig};
use crate::prepared::CompiledCache;
use crate::slice::init_plan_sites;
use crate::stats::ExecutionStats;
use crate::stream::{CancelToken, ResultChunk, RowSink, StreamResult};
use mpp_catalog::PartTree;
use mpp_common::{Datum, Error, PartOid, Result, Row, SegmentId, TableOid};
use mpp_expr::analysis::{derive_interval_set, DerivedSet};
use mpp_expr::{collect_columns, CmpOp, ColRef, CompiledExpr, Expr, IntervalSet};
use mpp_plan::{AggCall, AggFunc, JoinType, MotionKind, PhysicalPlan};
use mpp_storage::{PhysId, Storage};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Which operator implementations interpret the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecEngine {
    /// Vectorized execution: operators exchange columnar
    /// [`mpp_common::RowBlock`] chunks with selection vectors; filters
    /// refine selections without copying, projections and join keys
    /// evaluate column-at-a-time, and Motions ship refcounted column
    /// chunks. Falls back to row-at-a-time evaluation per block whenever
    /// strict batch evaluation cannot reproduce exact row semantics, so
    /// results (rows, errors, stats) are identical to [`ExecEngine::Row`].
    #[default]
    Batch,
    /// The original row-at-a-time interpreter — the semantic reference
    /// the batch engine is tested against, and the path DML always takes.
    Row,
}

/// How the simulated cluster's segments execute their plan slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// One driver thread interprets every segment's slice in turn and
    /// Motions materialize lazily on first access — the original
    /// single-process interpreter.
    #[default]
    Sequential,
    /// One worker thread per segment, stage by stage over the Motion
    /// boundaries (children before parents), so every Motion input is
    /// materialized before the slices reading it run. Rows and merged
    /// statistics are identical to [`ExecMode::Sequential`]; only the
    /// per-segment `elapsed` breakdown differs.
    Parallel,
}

/// Result of one query execution.
#[derive(Debug)]
pub struct QueryResult {
    pub rows: Vec<Row>,
    pub stats: ExecutionStats,
}

/// Convenience wrapper owning the storage handle.
pub struct Executor {
    storage: Storage,
    mode: ExecMode,
    engine: ExecEngine,
}

impl Executor {
    pub fn new(storage: Storage) -> Executor {
        Executor {
            storage,
            mode: ExecMode::Sequential,
            engine: ExecEngine::default(),
        }
    }

    pub fn with_mode(storage: Storage, mode: ExecMode) -> Executor {
        Executor {
            storage,
            mode,
            engine: ExecEngine::default(),
        }
    }

    pub fn set_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    pub fn set_engine(&mut self, engine: ExecEngine) {
        self.engine = engine;
    }

    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    pub fn run(&self, plan: &PhysicalPlan) -> Result<QueryResult> {
        execute_with_params_engine(&self.storage, plan, &[], self.mode, self.engine)
    }

    pub fn run_with_params(&self, plan: &PhysicalPlan, params: &[Datum]) -> Result<QueryResult> {
        execute_with_params_engine(&self.storage, plan, params, self.mode, self.engine)
    }
}

/// Execute a plan with no parameters (sequentially).
pub fn execute(storage: &Storage, plan: &PhysicalPlan) -> Result<QueryResult> {
    execute_with_params_mode(storage, plan, &[], ExecMode::Sequential)
}

/// Execute a plan with prepared-statement parameters bound (sequentially).
pub fn execute_with_params(
    storage: &Storage,
    plan: &PhysicalPlan,
    params: &[Datum],
) -> Result<QueryResult> {
    execute_with_params_mode(storage, plan, params, ExecMode::Sequential)
}

/// Execute a plan with no parameters under the given [`ExecMode`].
pub fn execute_mode(storage: &Storage, plan: &PhysicalPlan, mode: ExecMode) -> Result<QueryResult> {
    execute_with_params_mode(storage, plan, &[], mode)
}

/// Execute a plan with prepared-statement parameters bound, under the
/// given [`ExecMode`].
pub fn execute_with_params_mode(
    storage: &Storage,
    plan: &PhysicalPlan,
    params: &[Datum],
    mode: ExecMode,
) -> Result<QueryResult> {
    run_plan(storage, plan, params, mode, ExecEngine::default(), None)
}

/// Execute with full control over mode and [`ExecEngine`].
pub fn execute_with_params_engine(
    storage: &Storage,
    plan: &PhysicalPlan,
    params: &[Datum],
    mode: ExecMode,
    engine: ExecEngine,
) -> Result<QueryResult> {
    run_plan(storage, plan, params, mode, engine, None)
}

/// Execute with full control over mode, [`ExecEngine`] and the morsel
/// scheduler's [`SchedConfig`].
pub fn execute_with_params_sched(
    storage: &Storage,
    plan: &PhysicalPlan,
    params: &[Datum],
    mode: ExecMode,
    engine: ExecEngine,
    sched: &SchedConfig,
) -> Result<QueryResult> {
    run_plan_sched(storage, plan, params, mode, engine, None, sched)
}

/// The shared driver behind ad-hoc and prepared execution: the optional
/// [`CompiledCache`] carries a prepared plan's expression templates.
pub(crate) fn run_plan(
    storage: &Storage,
    plan: &PhysicalPlan,
    params: &[Datum],
    mode: ExecMode,
    engine: ExecEngine,
    cache: Option<&CompiledCache>,
) -> Result<QueryResult> {
    run_plan_sched(
        storage,
        plan,
        params,
        mode,
        engine,
        cache,
        &SchedConfig::default(),
    )
}

/// The collecting driver: one streaming execution whose sink appends
/// every chunk to a row vector. This is the *only* way a materialized
/// `Vec<Row>` is ever produced — streaming and collecting execution
/// share one implementation.
pub(crate) fn run_plan_sched(
    storage: &Storage,
    plan: &PhysicalPlan,
    params: &[Datum],
    mode: ExecMode,
    engine: ExecEngine,
    cache: Option<&CompiledCache>,
    sched: &SchedConfig,
) -> Result<QueryResult> {
    let mut rows: Vec<Row> = Vec::new();
    let mut sink = |chunk: ResultChunk| {
        chunk.append_to(&mut rows);
        Ok(())
    };
    let out = run_plan_stream(
        storage,
        plan,
        params,
        mode,
        engine,
        cache,
        sched,
        &CancelToken::new(),
        &mut sink,
    );
    let stats = out.into_stats()?;
    Ok(QueryResult { rows, stats })
}

/// Streaming execution with full control over mode, engine, scheduler
/// and cancellation: result chunks are pushed into `sink` as each
/// segment (and, for the block engine, each chunk) completes at the
/// root. Statistics survive errors — a cancelled query reports what it
/// scanned before stopping.
#[allow(clippy::too_many_arguments)]
pub fn execute_stream_sched(
    storage: &Storage,
    plan: &PhysicalPlan,
    params: &[Datum],
    mode: ExecMode,
    engine: ExecEngine,
    sched: &SchedConfig,
    cancel: &CancelToken,
    sink: &mut RowSink<'_>,
) -> StreamResult {
    run_plan_stream(
        storage, plan, params, mode, engine, None, sched, cancel, sink,
    )
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_plan_stream(
    storage: &Storage,
    plan: &PhysicalPlan,
    params: &[Datum],
    mode: ExecMode,
    engine: ExecEngine,
    cache: Option<&CompiledCache>,
    sched: &SchedConfig,
    cancel: &CancelToken,
    sink: &mut RowSink<'_>,
) -> StreamResult {
    // DML mutates shared storage from one driver thread in either mode;
    // its children still execute per segment, with Motions materialized
    // lazily, so it always runs under a sequential context. It also
    // always runs the row engine: every mutation path materializes rows
    // regardless, and the scan-not-observing-its-own-writes contract is
    // what the row path is tested for.
    let eff_mode = if is_dml(plan) {
        ExecMode::Sequential
    } else {
        mode
    };
    let eff_engine = if is_dml(plan) {
        ExecEngine::Row
    } else {
        engine
    };
    let ctx = ExecContext::for_plan(plan, params, storage.num_segments(), eff_mode)
        .with_compiled_cache(cache)
        .with_cancel(cancel.clone());
    let result = run_plan_stream_inner(plan, storage, &ctx, eff_engine, sched, sink);
    let mut stats = ctx.into_stats();
    match result {
        Ok(rows_returned) => {
            stats.rows_returned = rows_returned;
            StreamResult {
                stats,
                result: Ok(()),
            }
        }
        Err(e) => StreamResult {
            stats,
            result: Err(e),
        },
    }
}

fn run_plan_stream_inner(
    plan: &PhysicalPlan,
    storage: &Storage,
    ctx: &ExecContext<'_>,
    engine: ExecEngine,
    sched: &SchedConfig,
    sink: &mut RowSink<'_>,
) -> Result<u64> {
    // Init plans run once, before the main plan — the classic planner
    // contract. Publishing every $oids parameter up front is what lets a
    // gated scan below a Motion read a parameter its InitPlanOids
    // sibling sits above, in both modes, and it makes the two modes
    // reach gates in an identical publication state.
    for init in init_plan_sites(plan) {
        ctx.check_cancel()?;
        let t0 = Instant::now();
        exec(init, SegmentId(0), storage, ctx)?;
        ctx.seg_stats(SegmentId(0)).elapsed += t0.elapsed();
    }
    if is_dml(plan) {
        let t0 = Instant::now();
        let rows = exec_dml(plan, storage, ctx)?;
        ctx.seg_stats(SegmentId(0)).elapsed += t0.elapsed();
        let n = rows.len() as u64;
        if !rows.is_empty() {
            sink(ResultChunk::Rows(rows))?;
        }
        Ok(n)
    } else {
        // One stage driver for both modes and both engines: the plan is
        // cut into slices at Motion boundaries and each stage's work runs
        // on the morsel scheduler (Sequential = one worker).
        morsel::run_stages_stream(plan, storage, ctx, engine, sched, sink)
    }
}

fn is_dml(plan: &PhysicalPlan) -> bool {
    matches!(
        plan,
        PhysicalPlan::Update { .. } | PhysicalPlan::Delete { .. } | PhysicalPlan::Insert { .. }
    )
}

/// Lower an expression against an operator's output columns: columns become
/// row offsets, parameters and constant subtrees fold away. Every per-row
/// site below compiles once per (slice) execution and evaluates the
/// compiled form per row. Under prepared execution the context carries a
/// template cache and the lowering survives across executions — only the
/// cheap parameter re-bind runs per call.
pub(crate) fn compiled(e: &Expr, cols: &[ColRef], ctx: &ExecContext<'_>) -> Arc<CompiledExpr> {
    crate::prepared::compiled_for(e, cols, ctx)
}

/// Evaluate one subtree on one segment.
pub(crate) fn exec(
    plan: &PhysicalPlan,
    seg: SegmentId,
    storage: &Storage,
    ctx: &ExecContext<'_>,
) -> Result<Vec<Row>> {
    match plan {
        PhysicalPlan::TableScan {
            table,
            output,
            filter,
            ..
        } => {
            let rows = storage.scan(PhysId::Table(*table), seg);
            ctx.seg_stats(seg).record_table_scan(*table, rows.len());
            apply_filter(rows, filter, output, ctx)
        }

        PhysicalPlan::PartScan {
            table,
            part,
            output,
            filter,
            gate,
            ..
        } => {
            ctx.check_cancel()?;
            // Legacy gated scan: skip entirely when the run-time OID set
            // excludes this partition.
            if let Some(g) = gate {
                if !ctx.oid_param_contains(*g, *part)? {
                    return Ok(Vec::new());
                }
            }
            let rows = storage.scan(PhysId::Part(*part), seg);
            ctx.seg_stats(seg)
                .record_part_scan(*table, *part, rows.len());
            apply_filter(rows, filter, output, ctx)
        }

        PhysicalPlan::DynamicScan {
            table,
            part_scan_id,
            output,
            filter,
            restrict,
            ..
        } => {
            let mut oids = ctx.consume_parts(*part_scan_id, seg)?;
            // Adaptive group branch: scan only the selector-propagated OIDs
            // that fall inside this branch's partition group.
            if let Some(keep) = restrict {
                oids.retain(|oid| keep.contains(oid));
            }
            let scans = storage.scan_batch(oids.iter().map(|&oid| PhysId::Part(oid)), seg);
            let mut rows = Vec::new();
            {
                let mut stats = ctx.seg_stats(seg);
                for (oid, (_, part_rows)) in oids.iter().zip(scans) {
                    ctx.check_cancel()?;
                    stats.record_part_scan(*table, *oid, part_rows.len());
                    rows.extend(part_rows);
                }
            }
            apply_filter(rows, filter, output, ctx)
        }

        PhysicalPlan::PartitionSelector {
            table,
            part_scan_id,
            part_keys,
            predicates,
            child,
            ..
        } => {
            ctx.seg_stats(seg).selector_runs += 1;
            let tree = storage.catalog().part_tree(*table)?;
            match child {
                None => {
                    // Static selection: predicates reference only
                    // constants and parameters.
                    let derived: Vec<DerivedSet> = part_keys
                        .iter()
                        .zip(predicates)
                        .map(|(key, pred)| match pred {
                            Some(p) => derive_interval_set(p, key, Some(ctx.params)),
                            None => DerivedSet::full(),
                        })
                        .collect();
                    let oids = tree.select_partitions(&derived)?;
                    ctx.mark_selector_ran(*part_scan_id, seg);
                    ctx.propagate_parts(*part_scan_id, seg, oids);
                    Ok(Vec::new())
                }
                Some(child) => {
                    // Dynamic selection: apply the selection function per
                    // input tuple, pass tuples through unchanged.
                    let rows = exec(child, seg, storage, ctx)?;
                    ctx.mark_selector_ran(*part_scan_id, seg);
                    let child_cols = child.output_cols();
                    select_per_tuple(
                        &tree,
                        part_keys,
                        predicates,
                        &rows,
                        &child_cols,
                        ctx,
                        |oids| ctx.propagate_parts(*part_scan_id, seg, oids),
                    )?;
                    Ok(rows)
                }
            }
        }

        PhysicalPlan::Sequence { children } => {
            let mut last = Vec::new();
            for c in children {
                last = exec(c, seg, storage, ctx)?;
            }
            Ok(last)
        }

        PhysicalPlan::Filter { pred, child } => {
            let rows = exec(child, seg, storage, ctx)?;
            let cols = child.output_cols();
            let pred = compiled(pred, &cols, ctx);
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                if pred.eval_predicate(&r)? {
                    out.push(r);
                }
            }
            Ok(out)
        }

        PhysicalPlan::Project { exprs, child, .. } => {
            let rows = exec(child, seg, storage, ctx)?;
            let cols = child.output_cols();
            let exprs: Vec<Arc<CompiledExpr>> =
                exprs.iter().map(|e| compiled(e, &cols, ctx)).collect();
            rows.iter()
                .map(|r| {
                    exprs
                        .iter()
                        .map(|e| e.eval(r))
                        .collect::<Result<Vec<_>>>()
                        .map(Row::new)
                })
                .collect()
        }

        PhysicalPlan::HashJoin {
            join_type,
            left_keys,
            right_keys,
            residual,
            left,
            right,
        } => {
            let l_rows = exec(left, seg, storage, ctx)?;
            let r_rows = exec(right, seg, storage, ctx)?;
            hash_join(
                *join_type, left_keys, right_keys, residual, left, right, l_rows, r_rows, ctx,
            )
        }

        PhysicalPlan::NLJoin {
            join_type,
            pred,
            left,
            right,
        } => {
            let l_rows = exec(left, seg, storage, ctx)?;
            let r_rows = exec(right, seg, storage, ctx)?;
            nl_join(*join_type, pred, left, right, l_rows, r_rows, ctx)
        }

        PhysicalPlan::HashAgg {
            group_by,
            aggs,
            child,
            ..
        } => {
            let rows = exec(child, seg, storage, ctx)?;
            let cols = child.output_cols();
            hash_agg(group_by, aggs, rows, &cols, seg, ctx)
        }

        PhysicalPlan::Motion { kind, child } => {
            // The cache is keyed by the node's stable MotionId, not its
            // address, so re-executions and clones of a plan report
            // (and cache) under the same key.
            let id = ctx.motion_id_of(plan)?;
            if seg == SegmentId(0) && matches!(kind, MotionKind::Gather) {
                // First consumption of a parallel Gather stage takes the
                // copy the stage workers pre-assembled (each cloned its
                // own rows, warm and concurrently). Re-executions — and
                // sequential mode, which never pre-routes — fall through
                // to cloning from the cache.
                if let Some(rows) = ctx.preroute_take(id) {
                    return Ok(rows);
                }
            }
            let per_source = match ctx.motion_cached(id) {
                Some(v) => v,
                None => {
                    if ctx.motions_frozen() {
                        // The parallel stage driver materializes every
                        // Motion before the slices above it run; a miss
                        // here is a scheduling bug, not a user error.
                        return Err(Error::Internal(format!(
                            "parallel execution reached {id} before its stage materialized it"
                        )));
                    }
                    let mut v = Vec::with_capacity(storage.num_segments());
                    for s in storage.segments() {
                        v.push(exec(child, s, storage, ctx)?);
                    }
                    ctx.record_motion(id, &v);
                    let v = Arc::new(v);
                    ctx.motion_store(id, v.clone());
                    v
                }
            };
            route_motion(kind, &per_source, seg, storage, child, ctx, id)
        }

        PhysicalPlan::Append { children, .. } => {
            let mut out = Vec::new();
            for c in children {
                out.extend(exec(c, seg, storage, ctx)?);
            }
            Ok(out)
        }

        PhysicalPlan::InitPlanOids {
            param,
            table,
            key,
            child,
        } => {
            // Init plans run once and publish a global OID set. The
            // drivers pre-run them before the main plan; when traversal
            // visits the node again the parameter is already published
            // and this is a no-op (as it is on every segment but 0).
            if seg == SegmentId(0) && !ctx.oid_param_published(*param) {
                let tree = storage.catalog().part_tree(*table)?;
                // Routing a single key value is only the full partitioning
                // function for single-level tables; the planner never
                // emits gates for multi-level ones, so such a plan is
                // invalid rather than silently mis-routed through the
                // first level alone.
                if tree.num_levels() != 1 {
                    return Err(Error::InvalidPlan(format!(
                        "InitPlanOids over {table}: legacy OID gating supports only \
                         single-level partitioned tables ({} levels found)",
                        tree.num_levels()
                    )));
                }
                let cols = child.output_cols();
                let key = compiled(key, &cols, ctx);
                let mut oids: HashSet<PartOid> = HashSet::new();
                for s in storage.segments() {
                    for row in exec(child, s, storage, ctx)? {
                        let v = key.eval(&row)?;
                        // Single level (checked above), so one value is the
                        // whole routing key.
                        if let Some(oid) = tree.route(std::slice::from_ref(&v)) {
                            oids.insert(oid);
                        }
                    }
                }
                ctx.set_oid_param(*param, oids);
            }
            Ok(Vec::new())
        }

        PhysicalPlan::Values { rows, .. } => {
            // Literal rows materialize on the master segment only.
            if seg == SegmentId(0) {
                Ok(rows.iter().cloned().map(Row::new).collect())
            } else {
                Ok(Vec::new())
            }
        }

        PhysicalPlan::Limit { n, child } => {
            let mut rows = exec(child, seg, storage, ctx)?;
            rows.truncate(*n as usize);
            Ok(rows)
        }

        PhysicalPlan::Sort { keys, child } => {
            let mut rows = exec(child, seg, storage, ctx)?;
            let cols = child.output_cols();
            let positions: Vec<(usize, bool)> = keys
                .iter()
                .map(|(k, desc)| {
                    cols.iter()
                        .position(|c| c == k)
                        .map(|i| (i, *desc))
                        .ok_or_else(|| Error::Execution(format!("sort column {k} missing")))
                })
                .collect::<Result<_>>()?;
            rows.sort_by(|a, b| {
                for &(i, desc) in &positions {
                    let ord = a.values()[i].cmp(&b.values()[i]);
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(rows)
        }

        PhysicalPlan::Update { .. } | PhysicalPlan::Delete { .. } | PhysicalPlan::Insert { .. } => {
            Err(Error::Execution(
                "DML must be the plan root (executed via exec_dml)".into(),
            ))
        }
    }
}

/// Motion routing: hand `seg` its share of the materialized child output.
#[allow(clippy::too_many_arguments)]
fn route_motion(
    kind: &MotionKind,
    per_source: &[Vec<Row>],
    seg: SegmentId,
    storage: &Storage,
    child: &PhysicalPlan,
    ctx: &ExecContext<'_>,
    id: mpp_common::MotionId,
) -> Result<Vec<Row>> {
    match kind {
        MotionKind::Gather => {
            if seg == SegmentId(0) {
                Ok(per_source.iter().flatten().cloned().collect())
            } else {
                Ok(Vec::new())
            }
        }
        MotionKind::GatherOne => {
            if seg == SegmentId(0) {
                Ok(per_source.first().cloned().unwrap_or_default())
            } else {
                Ok(Vec::new())
            }
        }
        MotionKind::Broadcast => {
            // Flatten the cache once per Motion and share it: each
            // destination still gets its own Vec (rows are refcounted),
            // but not its own walk over every source segment's output.
            let flat =
                ctx.broadcast_flattened(id, || per_source.iter().flatten().cloned().collect());
            Ok((*flat).clone())
        }
        MotionKind::Redistribute(cols) => {
            let child_cols = child.output_cols();
            let positions: Vec<usize> =
                cols.iter()
                    .map(|c| {
                        child_cols.iter().position(|x| x == c).ok_or_else(|| {
                            Error::Execution(format!("redistribute column {c} missing"))
                        })
                    })
                    .collect::<Result<_>>()?;
            let n = storage.num_segments() as u64;
            let mut out = Vec::new();
            for rows in per_source {
                for r in rows {
                    let target = (r.hash_columns(&positions) % n) as u32;
                    if SegmentId(target) == seg {
                        out.push(r.clone());
                    }
                }
            }
            Ok(out)
        }
    }
}

/// How one level of a dynamic PartitionSelector turns an input tuple into
/// a [`DerivedSet`], prepared once per selector execution.
enum LevelProbe<'a> {
    /// No predicate on this level: every piece stays selected.
    Full,
    /// `part_key = <input column>` — the shape every equality DPE join
    /// produces. The derived set is a point (or empty for a NULL driver),
    /// with no per-row expression substitution or derivation.
    EqInput(usize),
    /// Anything else: substitute the tuple's values and re-derive.
    General(&'a Expr),
}

impl LevelProbe<'_> {
    /// `get_val(i)` returns the current input tuple's value at row
    /// position `i` — a row or a block column, the probe doesn't care.
    fn derive(
        &self,
        get_val: &dyn Fn(usize) -> Datum,
        positions: &[(u32, usize)],
        ctx: &ExecContext<'_>,
        key: &ColRef,
    ) -> DerivedSet {
        match self {
            LevelProbe::Full => DerivedSet::full(),
            LevelProbe::EqInput(pos) => {
                let v = get_val(*pos);
                if v.is_null() {
                    // key = NULL never holds (same as derive_cmp).
                    DerivedSet::empty_exact()
                } else {
                    DerivedSet {
                        set: IntervalSet::point(v),
                        exact: true,
                        null_possible: false,
                    }
                }
            }
            LevelProbe::General(p) => {
                let subst: HashMap<u32, Expr> = positions
                    .iter()
                    .map(|&(id, i)| (id, Expr::Lit(get_val(i))))
                    .collect();
                let bound = mpp_expr::substitute_columns(p, &subst);
                derive_interval_set(&bound, key, Some(ctx.params))
            }
        }
    }
}

/// Does `pred` have the shape `key = <input col>` (either orientation)?
/// Returns the row position of the driving input column.
fn eq_input_probe(pred: &Expr, key: &ColRef, positions: &[(u32, usize)]) -> Option<usize> {
    let Expr::Cmp {
        op: CmpOp::Eq,
        left,
        right,
    } = pred
    else {
        return None;
    };
    let other = match (left.as_ref(), right.as_ref()) {
        (Expr::Col(c), other) if c == key => other,
        (other, Expr::Col(c)) if c == key => other,
        _ => return None,
    };
    match other {
        Expr::Col(c) => positions
            .iter()
            .find(|&&(id, _)| id == c.id)
            .map(|&(_, i)| i),
        _ => None,
    }
}

/// Per-tuple partition selection (dynamic elimination): substitute the
/// input tuple's values into each level predicate, derive the interval
/// set for the partitioning key, and propagate the selected OIDs. The
/// per-level probes are prepared once; the dominant equality shape skips
/// expression substitution entirely per row.
pub(crate) struct TupleSelector<'a> {
    tree: &'a PartTree,
    positions: Vec<(u32, usize)>,
    probes: Vec<(&'a ColRef, LevelProbe<'a>)>,
    seen: HashSet<Vec<Datum>>,
}

impl<'a> TupleSelector<'a> {
    /// Prepare the per-level probes once per selector execution.
    pub(crate) fn prepare(
        tree: &'a PartTree,
        part_keys: &'a [ColRef],
        predicates: &'a [Option<Expr>],
        child_cols: &[ColRef],
    ) -> Result<TupleSelector<'a>> {
        // Columns of the predicates that come from the input (not the
        // scan's partition keys): these get substituted per row.
        let key_set: HashSet<u32> = part_keys.iter().map(|k| k.id).collect();
        let mut input_cols: Vec<ColRef> = Vec::new();
        for p in predicates.iter().flatten() {
            for c in collect_columns(p) {
                if !key_set.contains(&c.id) && !input_cols.contains(&c) {
                    input_cols.push(c);
                }
            }
        }
        let positions: Vec<(u32, usize)> = input_cols
            .iter()
            .map(|c| {
                child_cols
                    .iter()
                    .position(|x| x == c)
                    .map(|i| (c.id, i))
                    .ok_or_else(|| {
                        Error::Execution(format!(
                            "PartitionSelector predicate references {c}, not in its input"
                        ))
                    })
            })
            .collect::<Result<_>>()?;

        let probes: Vec<(&ColRef, LevelProbe<'_>)> = part_keys
            .iter()
            .zip(predicates)
            .map(|(key, pred)| {
                let probe = match pred {
                    None => LevelProbe::Full,
                    Some(p) => match eq_input_probe(p, key, &positions) {
                        Some(pos) => LevelProbe::EqInput(pos),
                        None => LevelProbe::General(p),
                    },
                };
                (key, probe)
            })
            .collect();
        Ok(TupleSelector {
            tree,
            positions,
            probes,
            seen: HashSet::new(),
        })
    }

    /// Probe one input tuple, presented as a value accessor over its row
    /// positions. Dedup on the driving values spans every call on this
    /// selector, so a batch of blocks routes to one dedup'd OID set.
    pub(crate) fn observe(
        &mut self,
        get_val: &dyn Fn(usize) -> Datum,
        ctx: &ExecContext<'_>,
        propagate: &mut dyn FnMut(Vec<PartOid>),
    ) -> Result<()> {
        let key_vals: Vec<Datum> = self.positions.iter().map(|&(_, i)| get_val(i)).collect();
        if !self.seen.insert(key_vals) {
            return Ok(()); // same driving values → same partitions
        }
        let derived: Vec<DerivedSet> = self
            .probes
            .iter()
            .map(|(key, probe)| probe.derive(get_val, &self.positions, ctx, key))
            .collect();
        propagate(self.tree.select_partitions(&derived)?);
        Ok(())
    }
}

/// Per-tuple partition selection over materialized rows (row engine).
fn select_per_tuple(
    tree: &PartTree,
    part_keys: &[ColRef],
    predicates: &[Option<Expr>],
    rows: &[Row],
    child_cols: &[ColRef],
    ctx: &ExecContext<'_>,
    mut propagate: impl FnMut(Vec<PartOid>),
) -> Result<()> {
    let mut sel = TupleSelector::prepare(tree, part_keys, predicates, child_cols)?;
    for row in rows {
        sel.observe(&|i| row.values()[i].clone(), ctx, &mut propagate)?;
    }
    Ok(())
}

fn apply_filter(
    rows: Vec<Row>,
    filter: &Option<Expr>,
    output: &[ColRef],
    ctx: &ExecContext<'_>,
) -> Result<Vec<Row>> {
    match filter {
        None => Ok(rows),
        Some(pred) => {
            let pred = compiled(pred, output, ctx);
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                if pred.eval_predicate(&r)? {
                    out.push(r);
                }
            }
            Ok(out)
        }
    }
}

pub(crate) fn null_row(width: usize) -> Row {
    Row::new(vec![Datum::Null; width])
}

/// Hash join building on the left (outer) side, probing with the right.
#[allow(clippy::too_many_arguments)]
pub(crate) fn hash_join(
    join_type: JoinType,
    left_keys: &[Expr],
    right_keys: &[Expr],
    residual: &Option<Expr>,
    left: &PhysicalPlan,
    right: &PhysicalPlan,
    l_rows: Vec<Row>,
    r_rows: Vec<Row>,
    ctx: &ExecContext<'_>,
) -> Result<Vec<Row>> {
    let l_cols = left.output_cols();
    let r_cols = right.output_cols();
    let l_keys: Vec<Arc<CompiledExpr>> = left_keys
        .iter()
        .map(|k| compiled(k, &l_cols, ctx))
        .collect();
    let r_keys: Vec<Arc<CompiledExpr>> = right_keys
        .iter()
        .map(|k| compiled(k, &r_cols, ctx))
        .collect();
    let mut joined_cols = l_cols.clone();
    joined_cols.extend(r_cols.clone());
    let residual = residual
        .as_ref()
        .map(|res| compiled(res, &joined_cols, ctx));

    // Build on the left.
    let mut table: HashMap<Vec<Datum>, Vec<usize>> = HashMap::new();
    let mut l_keysv: Vec<Option<Vec<Datum>>> = Vec::with_capacity(l_rows.len());
    for (i, r) in l_rows.iter().enumerate() {
        let mut key = Vec::with_capacity(l_keys.len());
        let mut has_null = false;
        for k in &l_keys {
            let v = k.eval(r)?;
            has_null |= v.is_null();
            key.push(v);
        }
        if has_null {
            l_keysv.push(None); // null keys never match
        } else {
            table.entry(key.clone()).or_default().push(i);
            l_keysv.push(Some(key));
        }
    }

    let mut matched = vec![false; l_rows.len()];
    let mut out = Vec::new();
    for rr in &r_rows {
        let mut key = Vec::with_capacity(r_keys.len());
        let mut has_null = false;
        for k in &r_keys {
            let v = k.eval(rr)?;
            has_null |= v.is_null();
            key.push(v);
        }
        if has_null {
            continue;
        }
        let Some(candidates) = table.get(&key) else {
            continue;
        };
        for &li in candidates {
            let joined = l_rows[li].concat(rr);
            if let Some(res) = &residual {
                if !res.eval_predicate(&joined)? {
                    continue;
                }
            }
            matched[li] = true;
            if join_type.outputs_right() {
                out.push(joined);
            }
        }
    }

    match join_type {
        JoinType::Inner => Ok(out),
        JoinType::LeftOuter => {
            let width = r_cols.len();
            for (i, l) in l_rows.iter().enumerate() {
                if !matched[i] {
                    out.push(l.concat(&null_row(width)));
                }
            }
            Ok(out)
        }
        JoinType::LeftSemi => Ok(l_rows
            .into_iter()
            .enumerate()
            .filter(|(i, _)| matched[*i])
            .map(|(_, r)| r)
            .collect()),
        JoinType::LeftAnti => Ok(l_rows
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !matched[*i])
            .map(|(_, r)| r)
            .collect()),
    }
}

/// Nested-loops join.
pub(crate) fn nl_join(
    join_type: JoinType,
    pred: &Option<Expr>,
    left: &PhysicalPlan,
    right: &PhysicalPlan,
    l_rows: Vec<Row>,
    r_rows: Vec<Row>,
    ctx: &ExecContext<'_>,
) -> Result<Vec<Row>> {
    let mut joined_cols = left.output_cols();
    let r_width = right.output_cols().len();
    joined_cols.extend(right.output_cols());
    let pred = pred.as_ref().map(|p| compiled(p, &joined_cols, ctx));
    let mut out = Vec::new();
    for l in &l_rows {
        let mut matched = false;
        for r in &r_rows {
            let joined = l.concat(r);
            let ok = match &pred {
                None => true,
                Some(p) => p.eval_predicate(&joined)?,
            };
            if ok {
                matched = true;
                match join_type {
                    JoinType::Inner | JoinType::LeftOuter => out.push(joined),
                    JoinType::LeftSemi => break,
                    JoinType::LeftAnti => break,
                }
            }
        }
        match join_type {
            JoinType::LeftOuter if !matched => out.push(l.concat(&null_row(r_width))),
            JoinType::LeftSemi if matched => out.push(l.clone()),
            JoinType::LeftAnti if !matched => out.push(l.clone()),
            _ => {}
        }
    }
    Ok(out)
}

/// One aggregate call's running state.
#[derive(Clone)]
pub(crate) struct Acc {
    count: i64,
    sum: f64,
    sum_is_float: bool,
    sum_i: i64,
    min: Option<Datum>,
    max: Option<Datum>,
    non_null: i64,
}

impl Acc {
    fn new() -> Acc {
        Acc {
            count: 0,
            sum: 0.0,
            sum_is_float: false,
            sum_i: 0,
            min: None,
            max: None,
            non_null: 0,
        }
    }

    /// Fold one row's argument value in (`None` = argument-less COUNT(*)).
    fn observe(&mut self, v: Option<Datum>) -> Result<()> {
        self.count += 1;
        if let Some(v) = v {
            if !v.is_null() {
                self.non_null += 1;
                match &v {
                    Datum::Float64(f) => {
                        self.sum_is_float = true;
                        self.sum += f;
                    }
                    Datum::Int32(_) | Datum::Int64(_) | Datum::Date(_) => {
                        let i = v.as_i64()?;
                        self.sum_i = self
                            .sum_i
                            .checked_add(i)
                            .ok_or_else(|| Error::Arithmetic("sum overflow".into()))?;
                        self.sum += i as f64;
                    }
                    _ => {}
                }
                match &self.min {
                    Some(m) if &v >= m => {}
                    _ => self.min = Some(v.clone()),
                }
                match &self.max {
                    Some(m) if &v <= m => {}
                    _ => self.max = Some(v),
                }
            }
        }
        Ok(())
    }

    fn finalize(&self, call: &AggCall) -> Datum {
        match call.func {
            AggFunc::Count => match &call.arg {
                None => Datum::Int64(self.count),
                Some(_) => Datum::Int64(self.non_null),
            },
            AggFunc::Sum => {
                if self.non_null == 0 {
                    Datum::Null
                } else if self.sum_is_float {
                    Datum::Float64(self.sum)
                } else {
                    Datum::Int64(self.sum_i)
                }
            }
            AggFunc::Avg => {
                if self.non_null == 0 {
                    Datum::Null
                } else {
                    Datum::Float64(self.sum / self.non_null as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Datum::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Datum::Null),
        }
    }
}

/// Hash-aggregation state shared by the row and block engines. Group keys
/// are built **once** per input row and moved into the index on first
/// sight (the former implementation cloned each key up to three times per
/// row); the per-group prefix row is cloned once per *distinct* group.
pub(crate) struct AggExec {
    /// Compiled aggregate arguments (`None` = COUNT(*), no argument).
    pub(crate) args: Vec<Option<Arc<CompiledExpr>>>,
    /// Row positions of the GROUP BY columns in the child output.
    pub(crate) positions: Vec<usize>,
    index: HashMap<Vec<Datum>, usize>,
    /// Group states in first-seen order: (group-key values, accumulators).
    groups: Vec<(Vec<Datum>, Vec<Acc>)>,
}

impl AggExec {
    pub(crate) fn prepare(
        group_by: &[ColRef],
        aggs: &[AggCall],
        child_cols: &[ColRef],
        ctx: &ExecContext<'_>,
    ) -> Result<AggExec> {
        let args = aggs
            .iter()
            .map(|call| call.arg.as_ref().map(|e| compiled(e, child_cols, ctx)))
            .collect();
        let positions = group_by
            .iter()
            .map(|c| {
                child_cols
                    .iter()
                    .position(|x| x == c)
                    .ok_or_else(|| Error::Execution(format!("group column {c} missing")))
            })
            .collect::<Result<_>>()?;
        Ok(AggExec {
            args,
            positions,
            index: HashMap::new(),
            groups: Vec::new(),
        })
    }

    /// Slot index for a group key, creating the group on first sight. The
    /// key is moved, not cloned — the single extra copy (the group's
    /// output prefix) happens once per distinct group.
    pub(crate) fn slot(&mut self, key: Vec<Datum>) -> usize {
        let n_aggs = self.args.len();
        match self.index.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let i = self.groups.len();
                self.groups
                    .push((e.key().clone(), vec![Acc::new(); n_aggs]));
                e.insert(i);
                i
            }
        }
    }

    /// Fold pre-computed argument values (one per aggregate, in call
    /// order) into a slot — the block engine's columnar entry point.
    pub(crate) fn observe_values(
        &mut self,
        slot: usize,
        vals: impl Iterator<Item = Option<Datum>>,
    ) -> Result<()> {
        for (acc, v) in self.groups[slot].1.iter_mut().zip(vals) {
            acc.observe(v)?;
        }
        Ok(())
    }

    /// Fold one input row: build the key once, evaluate the arguments in
    /// call order.
    pub(crate) fn observe_row(&mut self, row: &Row) -> Result<()> {
        let key: Vec<Datum> = self
            .positions
            .iter()
            .map(|&i| row.values()[i].clone())
            .collect();
        let s = self.slot(key);
        for (acc, arg) in self.groups[s].1.iter_mut().zip(&self.args) {
            let v = match arg {
                None => None,
                Some(e) => Some(e.eval(row)?),
            };
            acc.observe(v)?;
        }
        Ok(())
    }

    /// Emit one output row per group, in first-seen order. Scalar
    /// aggregates over empty input produce one default row — on the
    /// singleton segment only (the optimizer gathers below scalar aggs,
    /// so segment 0 is where the single input slice lives).
    pub(crate) fn finalize(self, aggs: &[AggCall], seg: SegmentId) -> Result<Vec<Row>> {
        if self.groups.is_empty() && self.positions.is_empty() {
            if seg != SegmentId(0) {
                return Ok(Vec::new());
            }
            let vals: Vec<Datum> = aggs
                .iter()
                .map(|call| match call.func {
                    AggFunc::Count => Datum::Int64(0),
                    _ => Datum::Null,
                })
                .collect();
            return Ok(vec![Row::new(vals)]);
        }
        let mut out = Vec::with_capacity(self.groups.len());
        for (key, accs) in &self.groups {
            let mut vals: Vec<Datum> = key.clone();
            for (acc, call) in accs.iter().zip(aggs) {
                vals.push(acc.finalize(call));
            }
            out.push(Row::new(vals));
        }
        Ok(out)
    }
}

/// Hash aggregation (row engine).
fn hash_agg(
    group_by: &[ColRef],
    aggs: &[AggCall],
    rows: Vec<Row>,
    child_cols: &[ColRef],
    seg: SegmentId,
    ctx: &ExecContext<'_>,
) -> Result<Vec<Row>> {
    let mut agg = AggExec::prepare(group_by, aggs, child_cols, ctx)?;
    for row in &rows {
        agg.observe_row(row)?;
    }
    agg.finalize(aggs, seg)
}

/// Execute a DML plan (always the root).
fn exec_dml(plan: &PhysicalPlan, storage: &Storage, ctx: &ExecContext<'_>) -> Result<Vec<Row>> {
    match plan {
        PhysicalPlan::Insert { table, child } => {
            let mut rows = Vec::new();
            for seg in storage.segments() {
                rows.extend(exec(child, seg, storage, ctx)?);
            }
            let n = storage.insert(*table, rows)?;
            storage.analyze(*table)?; // auto-analyze keeps the optimizer honest
            Ok(vec![Row::new(vec![Datum::Int64(n as i64)])])
        }
        PhysicalPlan::Delete {
            table,
            target_cols,
            child,
        } => {
            let rows = collect_target_rows(child, target_cols, storage, ctx)?;
            let n = rows.len();
            delete_rows(*table, rows, storage)?;
            storage.analyze(*table)?;
            Ok(vec![Row::new(vec![Datum::Int64(n as i64)])])
        }
        PhysicalPlan::Update {
            table,
            target_cols,
            assignments,
            child,
        } => {
            // Materialize old rows and their replacements first (the scan
            // must not observe its own updates).
            let child_cols = child.output_cols();
            let assignments: Vec<(usize, Arc<CompiledExpr>)> = assignments
                .iter()
                .map(|(idx, e)| (*idx, compiled(e, &child_cols, ctx)))
                .collect();
            let positions: Vec<usize> = target_cols
                .iter()
                .map(|c| {
                    child_cols
                        .iter()
                        .position(|x| x == c)
                        .ok_or_else(|| Error::Execution(format!("update column {c} missing")))
                })
                .collect::<Result<_>>()?;
            let mut old_rows = Vec::new();
            let mut new_rows = Vec::new();
            for seg in storage.segments() {
                for row in exec(child, seg, storage, ctx)? {
                    let old = row.project(&positions);
                    let mut vals: Vec<Datum> = old.values().to_vec();
                    for (idx, e) in &assignments {
                        vals[*idx] = e.eval(&row)?;
                    }
                    old_rows.push(old);
                    new_rows.push(Row::new(vals));
                }
            }
            let n = old_rows.len();
            delete_rows(*table, old_rows, storage)?;
            // Re-inserting routes updated tuples to their (possibly new)
            // partition and segment — cross-partition updates included.
            storage.insert(*table, new_rows)?;
            storage.analyze(*table)?;
            Ok(vec![Row::new(vec![Datum::Int64(n as i64)])])
        }
        other => Err(Error::Execution(format!(
            "exec_dml called on {}",
            other.name()
        ))),
    }
}

fn collect_target_rows(
    child: &PhysicalPlan,
    target_cols: &[ColRef],
    storage: &Storage,
    ctx: &ExecContext<'_>,
) -> Result<Vec<Row>> {
    let child_cols = child.output_cols();
    let positions: Vec<usize> = target_cols
        .iter()
        .map(|c| {
            child_cols
                .iter()
                .position(|x| x == c)
                .ok_or_else(|| Error::Execution(format!("target column {c} missing")))
        })
        .collect::<Result<_>>()?;
    let mut out = Vec::new();
    for seg in storage.segments() {
        for row in exec(child, seg, storage, ctx)? {
            out.push(row.project(&positions));
        }
    }
    Ok(out)
}

/// Remove rows by value, one stored instance per requested instance (bag
/// semantics).
fn delete_rows(table: TableOid, rows: Vec<Row>, storage: &Storage) -> Result<()> {
    // Group removal counts by storage location. locate_row returns every
    // location for replicated tables; a hashed/singleton table has
    // exactly one.
    let mut by_loc: HashMap<(PhysId, SegmentId), HashMap<Row, usize>> = HashMap::new();
    for row in rows {
        for loc in storage.locate_row(table, &row)? {
            *by_loc
                .entry(loc)
                .or_default()
                .entry(row.clone())
                .or_insert(0) += 1;
        }
    }
    for ((phys, seg), mut counts) in by_loc {
        let current = storage.scan(phys, seg);
        let mut kept = Vec::with_capacity(current.len());
        for r in current {
            match counts.get_mut(&r) {
                Some(c) if *c > 0 => *c -= 1,
                _ => kept.push(r),
            }
        }
        storage.overwrite(phys, seg, kept);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpp_catalog::builders::range_parts_equal_width;
    use mpp_catalog::{Catalog, Distribution, TableDesc};
    use mpp_common::{row, Column, DataType, PartScanId, Schema};

    fn cr(id: u32, name: &str) -> ColRef {
        ColRef::new(id, name)
    }

    /// R(a, b): hash on a, 10 partitions on b over [0, 100).
    /// S(a, b): hash on a, unpartitioned.
    fn setup() -> (Storage, TableOid, TableOid) {
        let cat = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int32),
            Column::new("b", DataType::Int32),
        ]);
        let r = cat.allocate_table_oid();
        let first = cat.allocate_part_oids(10);
        cat.register(TableDesc {
            oid: r,
            name: "r".into(),
            schema: schema.clone(),
            distribution: Distribution::Hashed(vec![0]),
            partitioning: Some(
                range_parts_equal_width(1, Datum::Int32(0), Datum::Int32(100), 10, first).unwrap(),
            ),
        })
        .unwrap();
        let s = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid: s,
            name: "s".into(),
            schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: None,
        })
        .unwrap();
        let st = Storage::new(cat, 4);
        st.insert(r, (0..100).map(|i| row![i, i])).unwrap();
        st.insert(s, (0..10).map(|i| row![i, i * 10])).unwrap();
        (st, r, s)
    }

    fn r_scan(r: TableOid, id: u32) -> PhysicalPlan {
        PhysicalPlan::DynamicScan {
            table: r,
            table_name: "r".into(),
            part_scan_id: PartScanId(id),
            output: vec![cr(1, "a"), cr(2, "b")],
            filter: None,
            restrict: None,
        }
    }

    fn static_selector(r: TableOid, id: u32, pred: Option<Expr>) -> PhysicalPlan {
        PhysicalPlan::PartitionSelector {
            table: r,
            table_name: "r".into(),
            part_scan_id: PartScanId(id),
            part_keys: vec![cr(2, "b")],
            predicates: vec![pred],
            child: None,
        }
    }

    #[test]
    fn full_dynamic_scan_reads_everything() {
        // Figure 5(a): selector with no predicate → all 10 parts.
        let (st, r, _) = setup();
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Sequence {
                children: vec![static_selector(r, 1, None), r_scan(r, 1)],
            }),
        };
        let res = execute(&st, &plan).unwrap();
        assert_eq!(res.rows.len(), 100);
        assert_eq!(res.stats.parts_scanned_for(r), 10);
    }

    #[test]
    fn equality_selection_scans_one_part() {
        // Figure 5(b): b = 35 → only the [30, 40) partition.
        let (st, r, _) = setup();
        let pred = Expr::eq(Expr::col(cr(2, "b")), Expr::lit(35i32));
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Filter {
                pred: pred.clone(),
                child: Box::new(PhysicalPlan::Sequence {
                    children: vec![static_selector(r, 1, Some(pred)), r_scan(r, 1)],
                }),
            }),
        };
        let res = execute(&st, &plan).unwrap();
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.stats.parts_scanned_for(r), 1);
    }

    #[test]
    fn range_selection_scans_matching_parts() {
        // Figure 5(c): b < 25 → 3 partitions.
        let (st, r, _) = setup();
        let pred = Expr::lt(Expr::col(cr(2, "b")), Expr::lit(25i32));
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Filter {
                pred: pred.clone(),
                child: Box::new(PhysicalPlan::Sequence {
                    children: vec![static_selector(r, 1, Some(pred)), r_scan(r, 1)],
                }),
            }),
        };
        let res = execute(&st, &plan).unwrap();
        assert_eq!(res.rows.len(), 25);
        assert_eq!(res.stats.parts_scanned_for(r), 3);
    }

    #[test]
    fn two_selectors_one_scan_count_each_part_once() {
        // Two static selectors probe the same DynamicScan with
        // overlapping selections: b < 25 → parts {0,1,2} and
        // b BETWEEN 15 AND 45 → parts {1,2,3,4}. The registry unions
        // per (scan, segment) into a set, so the scan must open the 5
        // distinct partitions exactly once each — `parts_scanned` and
        // `part_opens` must not double-count the overlap {1,2}.
        let (st, r, _) = setup();
        let p1 = Expr::lt(Expr::col(cr(2, "b")), Expr::lit(25i32));
        let p2 = Expr::between(Expr::col(cr(2, "b")), Expr::lit(15i32), Expr::lit(45i32));
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Sequence {
                children: vec![
                    static_selector(r, 1, Some(p1)),
                    static_selector(r, 1, Some(p2)),
                    r_scan(r, 1),
                ],
            }),
        };
        for engine in [ExecEngine::Row, ExecEngine::Batch] {
            let res =
                execute_with_params_engine(&st, &plan, &[], ExecMode::Sequential, engine).unwrap();
            // Parts {0..=4} hold b ∈ [0, 50): rows 0..50.
            assert_eq!(res.rows.len(), 50, "{engine:?}");
            assert_eq!(res.stats.parts_scanned_for(r), 5, "{engine:?}");
            // Every segment opens each distinct partition once; the
            // overlap would push this to 7 per segment if propagations
            // accumulated instead of unioned.
            assert_eq!(res.stats.part_opens, 5 * 4, "{engine:?}");
            assert_eq!(res.stats.selector_runs, 2 * 4, "{engine:?}");
        }
    }

    #[test]
    fn append_stitched_branches_count_each_part_once() {
        // The adaptive optimizer stitches per-group plans with an Append
        // whose branches each carry a restricted DynamicScan (own
        // part_scan_id). With deliberately *overlapping* restricts —
        // parts {0,1,2} and {1,2,3,4} — `parts_scanned` must stay a set
        // of 5 distinct parts, not 7; only `part_opens` sees every open.
        let (st, r, _) = setup();
        let leaves: Vec<PartOid> = st
            .catalog()
            .part_tree(r)
            .unwrap()
            .leaves()
            .iter()
            .map(|l| l.oid)
            .collect();
        let branch = |id: u32, group: &[usize]| {
            let mut scan = r_scan(r, id);
            if let PhysicalPlan::DynamicScan { restrict, .. } = &mut scan {
                *restrict = Some(group.iter().map(|&i| leaves[i]).collect());
            }
            PhysicalPlan::Sequence {
                children: vec![static_selector(r, id, None), scan],
            }
        };
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Append {
                output: vec![cr(1, "a"), cr(2, "b")],
                children: vec![branch(1, &[0, 1, 2]), branch(2, &[1, 2, 3, 4])],
            }),
        };
        for engine in [ExecEngine::Row, ExecEngine::Batch] {
            let res =
                execute_with_params_engine(&st, &plan, &[], ExecMode::Sequential, engine).unwrap();
            // Branch 1 reads b ∈ [0,30), branch 2 reads b ∈ [10,50).
            assert_eq!(res.rows.len(), 30 + 40, "{engine:?}");
            assert_eq!(res.stats.parts_scanned_for(r), 5, "{engine:?}");
            // Each branch opens its own group on every segment: the
            // overlap {1,2} is opened by both (7 opens/segment), but the
            // distinct-parts set above must not double-count it.
            assert_eq!(res.stats.part_opens, 7 * 4, "{engine:?}");
            assert_eq!(res.stats.scan_rows[&r], 70, "{engine:?}");
        }
    }

    #[test]
    fn join_dpe_scans_only_matching_parts() {
        // Figure 5(d): selector on the outer side driven by S tuples.
        let (st, r, s) = setup();
        // Keep only S rows with b ∈ {0, 10} → partitions [0,10) and [10,20).
        let s_scan = PhysicalPlan::TableScan {
            table: s,
            table_name: "s".into(),
            output: vec![cr(3, "sa"), cr(4, "sb")],
            filter: Some(Expr::lt(Expr::col(cr(4, "sb")), Expr::lit(20i32))),
        };
        let selector = PhysicalPlan::PartitionSelector {
            table: r,
            table_name: "r".into(),
            part_scan_id: PartScanId(1),
            part_keys: vec![cr(2, "b")],
            predicates: vec![Some(Expr::eq(
                Expr::col(cr(2, "b")),
                Expr::col(cr(4, "sb")),
            ))],
            child: Some(Box::new(PhysicalPlan::Motion {
                kind: MotionKind::Broadcast,
                child: Box::new(s_scan),
            })),
        };
        let join = PhysicalPlan::HashJoin {
            join_type: JoinType::Inner,
            left_keys: vec![Expr::col(cr(4, "sb"))],
            right_keys: vec![Expr::col(cr(2, "b"))],
            residual: None,
            left: Box::new(selector),
            right: Box::new(r_scan(r, 1)),
        };
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(join),
        };
        let res = execute(&st, &plan).unwrap();
        // S rows with sb<20: (0,0) and (1,10); R matches b=0 and b=10.
        assert_eq!(res.rows.len(), 2);
        assert_eq!(
            res.stats.parts_scanned_for(r),
            2,
            "DPE must prune to 2 parts"
        );
    }

    #[test]
    fn scan_without_selector_fails() {
        let (st, r, _) = setup();
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(r_scan(r, 1)),
        };
        let err = execute(&st, &plan).unwrap_err();
        assert_eq!(err.kind(), "invalid_plan");
    }

    #[test]
    fn prepared_parameter_selection() {
        // b = $1, bound at run time (the prepared-statement case of §1).
        let (st, r, _) = setup();
        let pred = Expr::eq(Expr::col(cr(2, "b")), Expr::Param(1));
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Filter {
                pred: pred.clone(),
                child: Box::new(PhysicalPlan::Sequence {
                    children: vec![static_selector(r, 1, Some(pred)), r_scan(r, 1)],
                }),
            }),
        };
        let res = execute_with_params(&st, &plan, &[Datum::Int32(42)]).unwrap();
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.rows[0], row![42, 42]);
        assert_eq!(res.stats.parts_scanned_for(r), 1);
        // A different binding selects a different partition.
        let res = execute_with_params(&st, &plan, &[Datum::Int32(7)]).unwrap();
        assert_eq!(res.rows[0], row![7, 7]);
    }

    #[test]
    fn redistribute_motion_rebalances() {
        let (st, _, s) = setup();
        // Redistribute S on sb, then count per segment via scan outputs.
        let scan = PhysicalPlan::TableScan {
            table: s,
            table_name: "s".into(),
            output: vec![cr(3, "sa"), cr(4, "sb")],
            filter: None,
        };
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Redistribute(vec![cr(4, "sb")]),
            child: Box::new(scan),
        };
        // Executing the whole plan returns the union over segments: all 10
        // rows exactly once.
        let res = execute(&st, &plan).unwrap();
        assert_eq!(res.rows.len(), 10);
        assert!(res.stats.rows_moved >= 10);
    }

    #[test]
    fn broadcast_motion_replicates() {
        let (st, _, s) = setup();
        let scan = PhysicalPlan::TableScan {
            table: s,
            table_name: "s".into(),
            output: vec![cr(3, "sa"), cr(4, "sb")],
            filter: None,
        };
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Broadcast,
            child: Box::new(scan),
        };
        let res = execute(&st, &plan).unwrap();
        // Every one of 4 segments sees all 10 rows.
        assert_eq!(res.rows.len(), 40);
    }

    #[test]
    fn hash_join_types() {
        let (st, _, s) = setup();
        let left = PhysicalPlan::Values {
            rows: vec![
                vec![Datum::Int32(1)],
                vec![Datum::Int32(2)],
                vec![Datum::Int32(99)],
                vec![Datum::Null],
            ],
            output: vec![cr(10, "x")],
        };
        let right = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::TableScan {
                table: s,
                table_name: "s".into(),
                output: vec![cr(3, "sa"), cr(4, "sb")],
                filter: None,
            }),
        };
        let mk = |jt| PhysicalPlan::HashJoin {
            join_type: jt,
            left_keys: vec![Expr::col(cr(10, "x"))],
            right_keys: vec![Expr::col(cr(3, "sa"))],
            residual: None,
            left: Box::new(left.clone()),
            right: Box::new(right.clone()),
        };
        let inner = execute(&st, &mk(JoinType::Inner)).unwrap();
        assert_eq!(inner.rows.len(), 2);
        assert_eq!(inner.rows[0].len(), 3);
        let semi = execute(&st, &mk(JoinType::LeftSemi)).unwrap();
        assert_eq!(semi.rows.len(), 2);
        assert_eq!(semi.rows[0].len(), 1);
        let anti = execute(&st, &mk(JoinType::LeftAnti)).unwrap();
        // 99 and NULL have no match.
        assert_eq!(anti.rows.len(), 2);
        let outer = execute(&st, &mk(JoinType::LeftOuter)).unwrap();
        assert_eq!(outer.rows.len(), 4);
        let nulls = outer
            .rows
            .iter()
            .filter(|r| r.values()[1].is_null())
            .count();
        assert_eq!(nulls, 2);
    }

    #[test]
    fn aggregation_with_groups_and_nulls() {
        let (st, _, _) = setup();
        let values = PhysicalPlan::Values {
            rows: vec![
                vec![Datum::Int32(1), Datum::Int32(10)],
                vec![Datum::Int32(1), Datum::Null],
                vec![Datum::Int32(2), Datum::Int32(5)],
            ],
            output: vec![cr(1, "g"), cr(2, "v")],
        };
        let agg = PhysicalPlan::HashAgg {
            group_by: vec![cr(1, "g")],
            aggs: vec![
                AggCall::count_star(),
                AggCall::new(AggFunc::Count, Expr::col(cr(2, "v"))),
                AggCall::new(AggFunc::Sum, Expr::col(cr(2, "v"))),
                AggCall::new(AggFunc::Avg, Expr::col(cr(2, "v"))),
                AggCall::new(AggFunc::Min, Expr::col(cr(2, "v"))),
            ],
            output: vec![
                cr(1, "g"),
                cr(20, "c1"),
                cr(21, "c2"),
                cr(22, "s"),
                cr(23, "a"),
                cr(24, "m"),
            ],
            child: Box::new(values),
        };
        let res = execute(&st, &agg).unwrap();
        assert_eq!(res.rows.len(), 2);
        let g1 = res
            .rows
            .iter()
            .find(|r| r.values()[0] == Datum::Int32(1))
            .unwrap();
        assert_eq!(g1.values()[1], Datum::Int64(2)); // count(*)
        assert_eq!(g1.values()[2], Datum::Int64(1)); // count(v)
        assert_eq!(g1.values()[3], Datum::Int64(10)); // sum
        assert_eq!(g1.values()[4], Datum::Float64(10.0)); // avg ignores null
        assert_eq!(g1.values()[5], Datum::Int32(10)); // min
    }

    #[test]
    fn scalar_agg_on_empty_input() {
        let (st, _, _) = setup();
        let agg = PhysicalPlan::HashAgg {
            group_by: vec![],
            aggs: vec![
                AggCall::count_star(),
                AggCall::new(AggFunc::Sum, Expr::col(cr(1, "x"))),
            ],
            output: vec![cr(20, "c"), cr(21, "s")],
            child: Box::new(PhysicalPlan::Values {
                rows: vec![],
                output: vec![cr(1, "x")],
            }),
        };
        let res = execute(&st, &agg).unwrap();
        // The empty-input scalar-agg row is produced on segment 0 only
        // (the optimizer gathers below scalar aggregates).
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.rows[0].values()[0], Datum::Int64(0));
        assert_eq!(res.rows[0].values()[1], Datum::Null);
    }

    #[test]
    fn legacy_gated_part_scans() {
        // Legacy dynamic elimination: init plan computes the OID set, the
        // Append lists every partition with a gate.
        let (st, r, s) = setup();
        let tree = st.catalog().part_tree(r).unwrap();
        let init = PhysicalPlan::InitPlanOids {
            param: 1,
            table: r,
            key: Expr::col(cr(4, "sb")),
            child: Box::new(PhysicalPlan::TableScan {
                table: s,
                table_name: "s".into(),
                output: vec![cr(3, "sa"), cr(4, "sb")],
                filter: Some(Expr::lt(Expr::col(cr(4, "sb")), Expr::lit(20i32))),
            }),
        };
        let scans: Vec<PhysicalPlan> = tree
            .leaves()
            .iter()
            .map(|leaf| PhysicalPlan::PartScan {
                table: r,
                part: leaf.oid,
                part_name: leaf.name.clone(),
                output: vec![cr(1, "a"), cr(2, "b")],
                filter: None,
                gate: Some(1),
            })
            .collect();
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Sequence {
                children: vec![
                    init,
                    PhysicalPlan::Append {
                        output: vec![cr(1, "a"), cr(2, "b")],
                        children: scans,
                    },
                ],
            }),
        };
        let res = execute(&st, &plan).unwrap();
        // Gated to partitions containing b=0 and b=10: 20 rows.
        assert_eq!(res.rows.len(), 20);
        assert_eq!(res.stats.parts_scanned_for(r), 2);
    }

    #[test]
    fn dml_insert_update_delete() {
        let (st, r, _) = setup();
        // INSERT two rows.
        let ins = PhysicalPlan::Insert {
            table: r,
            child: Box::new(PhysicalPlan::Values {
                rows: vec![
                    vec![Datum::Int32(200), Datum::Int32(55)],
                    vec![Datum::Int32(201), Datum::Int32(56)],
                ],
                output: vec![cr(1, "a"), cr(2, "b")],
            }),
        };
        let res = execute(&st, &ins).unwrap();
        assert_eq!(res.rows[0], row![2i64]);
        assert_eq!(st.row_count(r).unwrap(), 102);

        // UPDATE: move b=55 → b=5 (crosses partitions).
        let scan = PhysicalPlan::Sequence {
            children: vec![
                static_selector(
                    r,
                    1,
                    Some(Expr::eq(Expr::col(cr(2, "b")), Expr::lit(55i32))),
                ),
                r_scan(r, 1),
            ],
        };
        let upd = PhysicalPlan::Update {
            table: r,
            target_cols: vec![cr(1, "a"), cr(2, "b")],
            assignments: vec![(1, Expr::lit(5i32))],
            child: Box::new(PhysicalPlan::Filter {
                pred: Expr::eq(Expr::col(cr(2, "b")), Expr::lit(55i32)),
                child: Box::new(scan),
            }),
        };
        let res = execute(&st, &upd).unwrap();
        assert_eq!(res.rows[0], row![2i64]); // rows 55 (original) + 55 (inserted)
        assert_eq!(st.row_count(r).unwrap(), 102);

        // DELETE everything with b < 10 (now includes the moved rows).
        let scan = PhysicalPlan::Sequence {
            children: vec![
                static_selector(
                    r,
                    2,
                    Some(Expr::lt(Expr::col(cr(2, "b")), Expr::lit(10i32))),
                ),
                PhysicalPlan::DynamicScan {
                    table: r,
                    table_name: "r".into(),
                    part_scan_id: PartScanId(2),
                    output: vec![cr(1, "a"), cr(2, "b")],
                    filter: Some(Expr::lt(Expr::col(cr(2, "b")), Expr::lit(10i32))),
                    restrict: None,
                },
            ],
        };
        let del = PhysicalPlan::Delete {
            table: r,
            target_cols: vec![cr(1, "a"), cr(2, "b")],
            child: Box::new(scan),
        };
        let res = execute(&st, &del).unwrap();
        assert_eq!(res.rows[0], row![12i64]); // 10 original + 2 moved
        assert_eq!(st.row_count(r).unwrap(), 90);
    }

    #[test]
    fn multilevel_dynamic_selection() {
        // Two-level table: 5 ranges × 2 list values.
        let cat = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int32),
            Column::new("region", DataType::Utf8),
        ]);
        let t = cat.allocate_table_oid();
        let first = cat.allocate_part_oids(10);
        let tree = mpp_catalog::PartTree::new(
            vec![
                mpp_catalog::builders::range_level_equal_width(
                    0,
                    Datum::Int32(0),
                    Datum::Int32(50),
                    5,
                )
                .unwrap(),
                mpp_catalog::builders::list_level(
                    1,
                    vec![
                        ("r1".into(), vec![Datum::str("A")]),
                        ("r2".into(), vec![Datum::str("B")]),
                    ],
                    false,
                )
                .unwrap(),
            ],
            first,
        )
        .unwrap();
        cat.register(TableDesc {
            oid: t,
            name: "t".into(),
            schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: Some(tree),
        })
        .unwrap();
        let st = Storage::new(cat, 4);
        st.insert(
            t,
            (0..50).map(|i| {
                Row::new(vec![
                    Datum::Int32(i),
                    Datum::str(if i % 2 == 0 { "A" } else { "B" }),
                ])
            }),
        )
        .unwrap();

        // k = 7 AND region = 'B' → exactly one leaf.
        let keys = vec![cr(1, "k"), cr(2, "region")];
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Sequence {
                children: vec![
                    PhysicalPlan::PartitionSelector {
                        table: t,
                        table_name: "t".into(),
                        part_scan_id: PartScanId(1),
                        part_keys: keys.clone(),
                        predicates: vec![
                            Some(Expr::eq(Expr::col(cr(1, "k")), Expr::lit(7i32))),
                            Some(Expr::eq(Expr::col(cr(2, "region")), Expr::lit("B"))),
                        ],
                        child: None,
                    },
                    PhysicalPlan::DynamicScan {
                        table: t,
                        table_name: "t".into(),
                        part_scan_id: PartScanId(1),
                        output: keys,
                        filter: Some(Expr::eq(Expr::col(cr(1, "k")), Expr::lit(7i32))),
                        restrict: None,
                    },
                ],
            }),
        };
        let res = execute(&st, &plan).unwrap();
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.stats.parts_scanned_for(t), 1);
    }

    // ---- parallel-mode equivalence and error behavior ----

    fn row_counts(rows: &[Row]) -> HashMap<Row, usize> {
        let mut m = HashMap::new();
        for r in rows {
            *m.entry(r.clone()).or_insert(0) += 1;
        }
        m
    }

    /// Both modes must return the same bag of rows and identical merged
    /// statistics (everything except per-segment `elapsed`).
    fn assert_modes_agree(st: &Storage, plan: &PhysicalPlan, params: &[Datum]) -> QueryResult {
        let seq = execute_with_params_mode(st, plan, params, ExecMode::Sequential).unwrap();
        let par = execute_with_params_mode(st, plan, params, ExecMode::Parallel).unwrap();
        assert_eq!(row_counts(&seq.rows), row_counts(&par.rows));
        assert_eq!(seq.stats.parts_scanned, par.stats.parts_scanned);
        assert_eq!(seq.stats.part_opens, par.stats.part_opens);
        assert_eq!(seq.stats.table_scans, par.stats.table_scans);
        assert_eq!(seq.stats.tuples_scanned, par.stats.tuples_scanned);
        assert_eq!(seq.stats.rows_moved, par.stats.rows_moved);
        assert_eq!(seq.stats.motions, par.stats.motions);
        assert_eq!(seq.stats.selector_runs, par.stats.selector_runs);
        assert_eq!(seq.stats.per_motion_rows, par.stats.per_motion_rows);
        assert_eq!(seq.stats.per_segment.len(), par.stats.per_segment.len());
        for (s, p) in seq.stats.per_segment.iter().zip(&par.stats.per_segment) {
            assert_eq!(s.parts_scanned, p.parts_scanned);
            assert_eq!(s.part_opens, p.part_opens);
            assert_eq!(s.table_scans, p.table_scans);
            assert_eq!(s.tuples_scanned, p.tuples_scanned);
            assert_eq!(s.rows_moved, p.rows_moved);
            assert_eq!(s.selector_runs, p.selector_runs);
        }
        par
    }

    #[test]
    fn parallel_matches_sequential_on_dynamic_scans() {
        let (st, r, _) = setup();
        let pred = Expr::lt(Expr::col(cr(2, "b")), Expr::lit(25i32));
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Filter {
                pred: pred.clone(),
                child: Box::new(PhysicalPlan::Sequence {
                    children: vec![static_selector(r, 1, Some(pred)), r_scan(r, 1)],
                }),
            }),
        };
        let res = assert_modes_agree(&st, &plan, &[]);
        assert_eq!(res.rows.len(), 25);
        assert_eq!(res.stats.parts_scanned_for(r), 3);
    }

    #[test]
    fn parallel_matches_sequential_on_dpe_join() {
        // The Figure 5(d) shape: a Broadcast stage feeding a selector
        // that drives the dynamic scan on each segment.
        let (st, r, s) = setup();
        let s_scan = PhysicalPlan::TableScan {
            table: s,
            table_name: "s".into(),
            output: vec![cr(3, "sa"), cr(4, "sb")],
            filter: Some(Expr::lt(Expr::col(cr(4, "sb")), Expr::lit(20i32))),
        };
        let selector = PhysicalPlan::PartitionSelector {
            table: r,
            table_name: "r".into(),
            part_scan_id: PartScanId(1),
            part_keys: vec![cr(2, "b")],
            predicates: vec![Some(Expr::eq(
                Expr::col(cr(2, "b")),
                Expr::col(cr(4, "sb")),
            ))],
            child: Some(Box::new(PhysicalPlan::Motion {
                kind: MotionKind::Broadcast,
                child: Box::new(s_scan),
            })),
        };
        let join = PhysicalPlan::HashJoin {
            join_type: JoinType::Inner,
            left_keys: vec![Expr::col(cr(4, "sb"))],
            right_keys: vec![Expr::col(cr(2, "b"))],
            residual: None,
            left: Box::new(selector),
            right: Box::new(r_scan(r, 1)),
        };
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(join),
        };
        let res = assert_modes_agree(&st, &plan, &[]);
        assert_eq!(res.rows.len(), 2);
        assert_eq!(res.stats.parts_scanned_for(r), 2);
    }

    #[test]
    fn parallel_matches_sequential_with_params() {
        let (st, r, _) = setup();
        let pred = Expr::eq(Expr::col(cr(2, "b")), Expr::Param(1));
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Filter {
                pred: pred.clone(),
                child: Box::new(PhysicalPlan::Sequence {
                    children: vec![static_selector(r, 1, Some(pred)), r_scan(r, 1)],
                }),
            }),
        };
        let res = assert_modes_agree(&st, &plan, &[Datum::Int32(42)]);
        assert_eq!(res.rows, vec![row![42, 42]]);
        assert_eq!(res.stats.parts_scanned_for(r), 1);
    }

    #[test]
    fn parallel_detects_invalid_plan() {
        // §3.1: DynamicScan whose selector never ran must error in
        // parallel mode exactly like in sequential mode.
        let (st, r, _) = setup();
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(r_scan(r, 1)),
        };
        let seq = execute_mode(&st, &plan, ExecMode::Sequential).unwrap_err();
        let par = execute_mode(&st, &plan, ExecMode::Parallel).unwrap_err();
        assert_eq!(seq.kind(), "invalid_plan");
        assert_eq!(par.kind(), "invalid_plan");
    }

    #[test]
    fn parallel_legacy_gated_part_scans_block_until_published() {
        // The legacy gate is the cross-thread case: segment 0 computes
        // the OID set while segments 1–3 block at their first gate.
        let (st, r, s) = setup();
        let tree = st.catalog().part_tree(r).unwrap();
        let init = PhysicalPlan::InitPlanOids {
            param: 1,
            table: r,
            key: Expr::col(cr(4, "sb")),
            child: Box::new(PhysicalPlan::TableScan {
                table: s,
                table_name: "s".into(),
                output: vec![cr(3, "sa"), cr(4, "sb")],
                filter: Some(Expr::lt(Expr::col(cr(4, "sb")), Expr::lit(20i32))),
            }),
        };
        let scans: Vec<PhysicalPlan> = tree
            .leaves()
            .iter()
            .map(|leaf| PhysicalPlan::PartScan {
                table: r,
                part: leaf.oid,
                part_name: leaf.name.clone(),
                output: vec![cr(1, "a"), cr(2, "b")],
                filter: None,
                gate: Some(1),
            })
            .collect();
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Sequence {
                children: vec![
                    init,
                    PhysicalPlan::Append {
                        output: vec![cr(1, "a"), cr(2, "b")],
                        children: scans,
                    },
                ],
            }),
        };
        let res = assert_modes_agree(&st, &plan, &[]);
        assert_eq!(res.rows.len(), 20);
        assert_eq!(res.stats.parts_scanned_for(r), 2);
    }

    #[test]
    fn gate_below_motion_reads_publisher_above_it() {
        // The legacy planner emits Sequence[InitPlanOids, Join(...,
        // Broadcast(gated Append))]: the gate sits in an *earlier* stage
        // than its publisher's slice. Init plans pre-run before the main
        // plan in both modes, so this works — and identically.
        let (st, r, s) = setup();
        let part = st.catalog().part_tree(r).unwrap().leaves()[0].oid;
        let plan = PhysicalPlan::Append {
            output: vec![cr(1, "a"), cr(2, "b")],
            children: vec![
                PhysicalPlan::Motion {
                    kind: MotionKind::Gather,
                    child: Box::new(PhysicalPlan::PartScan {
                        table: r,
                        part,
                        part_name: "p".into(),
                        output: vec![cr(1, "a"), cr(2, "b")],
                        filter: None,
                        gate: Some(1),
                    }),
                },
                PhysicalPlan::InitPlanOids {
                    param: 1,
                    table: r,
                    key: Expr::col(cr(4, "sb")),
                    child: Box::new(PhysicalPlan::TableScan {
                        table: s,
                        table_name: "s".into(),
                        output: vec![cr(3, "sa"), cr(4, "sb")],
                        filter: None,
                    }),
                },
            ],
        };
        // S values 0..10 route to partition [0,10) = the first leaf: the
        // gate admits the scan, so its 10 rows come back from each mode.
        let res = assert_modes_agree(&st, &plan, &[]);
        assert_eq!(res.rows.len(), 10);
        assert_eq!(res.stats.parts_scanned_for(r), 1);
    }

    #[test]
    fn init_plan_oids_rejects_multilevel_table() {
        // Regression: InitPlanOids used to route the key through level 0
        // only, silently picking wrong partitions on multi-level tables.
        let cat = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int32),
            Column::new("region", DataType::Utf8),
        ]);
        let t = cat.allocate_table_oid();
        let first = cat.allocate_part_oids(10);
        let tree = mpp_catalog::PartTree::new(
            vec![
                mpp_catalog::builders::range_level_equal_width(
                    0,
                    Datum::Int32(0),
                    Datum::Int32(50),
                    5,
                )
                .unwrap(),
                mpp_catalog::builders::list_level(
                    1,
                    vec![
                        ("r1".into(), vec![Datum::str("A")]),
                        ("r2".into(), vec![Datum::str("B")]),
                    ],
                    false,
                )
                .unwrap(),
            ],
            first,
        )
        .unwrap();
        cat.register(TableDesc {
            oid: t,
            name: "t".into(),
            schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: Some(tree),
        })
        .unwrap();
        let st = Storage::new(cat, 4);
        st.insert(t, (0..10).map(|i| row![i, "A"])).unwrap();

        let leaves = st.catalog().part_tree(t).unwrap().leaves().to_vec();
        let plan = PhysicalPlan::Sequence {
            children: vec![
                PhysicalPlan::InitPlanOids {
                    param: 1,
                    table: t,
                    key: Expr::col(cr(1, "k")),
                    child: Box::new(PhysicalPlan::Values {
                        rows: vec![vec![Datum::Int32(7)]],
                        output: vec![cr(1, "k")],
                    }),
                },
                PhysicalPlan::PartScan {
                    table: t,
                    part: leaves[0].oid,
                    part_name: leaves[0].name.clone(),
                    output: vec![cr(1, "k"), cr(2, "region")],
                    filter: None,
                    gate: Some(1),
                },
            ],
        };
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let err = execute_mode(&st, &plan, mode).unwrap_err();
            assert_eq!(err.kind(), "invalid_plan", "{mode:?}");
            assert!(err.to_string().contains("single-level"), "{err}");
        }
    }

    #[test]
    fn motion_cache_key_is_stable_across_clones() {
        // Address-keyed caching regressed when plans were cloned: the
        // clone's nodes had fresh addresses and missed the cache/stats
        // keys. Stable MotionIds make the clone behave identically.
        let (st, r, _) = setup();
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Sequence {
                children: vec![static_selector(r, 1, None), r_scan(r, 1)],
            }),
        };
        let a = execute(&st, &plan).unwrap();
        let b = execute(&st, &plan.clone()).unwrap();
        assert_eq!(a.stats.motions, b.stats.motions);
        assert_eq!(a.stats.per_motion_rows, b.stats.per_motion_rows);
        assert_eq!(
            a.stats.per_motion_rows.get(&mpp_common::MotionId(0)),
            Some(&100)
        );
    }
}
