//! The vectorized (block) execution engine.
//!
//! `exec_block` mirrors [`crate::exec::exec`] operator for operator, but
//! the payload between operators is a list of columnar
//! [`mpp_common::RowBlock`] chunks instead of `Vec<Row>`:
//!
//! * scans hand out the storage blocks themselves (refcounted columns —
//!   no per-row materialization),
//! * filters refine a block's **selection vector** in place of copying
//!   surviving rows,
//! * projections and join-key extraction evaluate column-at-a-time via
//!   [`mpp_expr::CompiledExpr::eval_column_strict`],
//! * Motions cache and ship chunk lists; Broadcast destinations share
//!   the same materialization (column `Arc` bumps), Redistribute hashes
//!   every chunk once per Motion and routes by selection,
//! * the per-tuple `PartitionSelector` probe reads block columns
//!   directly and routes to a dedup'd OID set.
//!
//! Semantics are **exactly** the row engine's. Wherever strict batch
//! evaluation cannot reproduce row-at-a-time behavior (a row error mid
//! block, a multi-expression site whose first error depends on row-major
//! order), the affected block falls back to row-wise evaluation, and the
//! fallback is counted in [`crate::stats::SegmentStats::rows_row_fallback`].
//! Nested-loops joins run row-wise (their predicate short-circuits per
//! pair); DML plans never reach this module (the driver routes them to
//! the row engine).

use crate::context::ExecContext;
use crate::exec::{compiled, exec, hash_join, nl_join, AggExec, TupleSelector};
use crate::stats::SegmentStats;
use mpp_common::{ColumnVec, Datum, Error, MotionId, Result, Row, RowBlock, SegmentId};
use mpp_expr::analysis::DerivedSet;
use mpp_expr::{CompiledExpr, Expr};
use mpp_plan::{JoinType, MotionKind, PhysicalPlan};
use mpp_storage::{PhysId, Storage};
use std::collections::HashMap;
use std::sync::Arc;

/// Flatten chunk lists back into rows (operator fallbacks and the root).
pub(crate) fn blocks_to_rows(chunks: &[RowBlock]) -> Vec<Row> {
    chunks.iter().flat_map(|b| b.to_rows()).collect()
}

/// Wrap a row-engine result back into (at most one) chunk.
pub(crate) fn rows_to_chunks(rows: Vec<Row>, width: usize) -> Vec<RowBlock> {
    if rows.is_empty() {
        Vec::new()
    } else {
        vec![RowBlock::from_rows(&rows, width)]
    }
}

/// Evaluate one subtree on one segment, block-at-a-time.
pub(crate) fn exec_block(
    plan: &PhysicalPlan,
    seg: SegmentId,
    storage: &Storage,
    ctx: &ExecContext<'_>,
) -> Result<Vec<RowBlock>> {
    match plan {
        PhysicalPlan::TableScan {
            table,
            output,
            filter,
            ..
        } => {
            let block = storage.scan_block(PhysId::Table(*table), seg);
            let n = block.as_ref().map_or(0, |b| b.len());
            ctx.seg_stats(seg).record_table_scan(*table, n);
            let chunks: Vec<RowBlock> = block.into_iter().filter(|b| !b.is_empty()).collect();
            filter_blocks(chunks, filter.as_ref(), output, seg, ctx)
        }

        PhysicalPlan::PartScan {
            table,
            part,
            output,
            filter,
            gate,
            ..
        } => {
            ctx.check_cancel()?;
            if let Some(g) = gate {
                if !ctx.oid_param_contains(*g, *part)? {
                    return Ok(Vec::new());
                }
            }
            let block = storage.scan_block(PhysId::Part(*part), seg);
            let n = block.as_ref().map_or(0, |b| b.len());
            ctx.seg_stats(seg).record_part_scan(*table, *part, n);
            let chunks: Vec<RowBlock> = block.into_iter().filter(|b| !b.is_empty()).collect();
            filter_blocks(chunks, filter.as_ref(), output, seg, ctx)
        }

        PhysicalPlan::DynamicScan {
            table,
            part_scan_id,
            output,
            filter,
            restrict,
            ..
        } => {
            let mut oids = ctx.consume_parts(*part_scan_id, seg)?;
            // Adaptive group branch: scan only the selector-propagated OIDs
            // that fall inside this branch's partition group.
            if let Some(keep) = restrict {
                oids.retain(|oid| keep.contains(oid));
            }
            let scans = storage.scan_batch_blocks(oids.iter().map(|&oid| PhysId::Part(oid)), seg);
            let mut chunks = Vec::new();
            {
                let mut stats = ctx.seg_stats(seg);
                for (oid, (_, block)) in oids.iter().zip(scans) {
                    ctx.check_cancel()?;
                    let n = block.as_ref().map_or(0, |b| b.len());
                    stats.record_part_scan(*table, *oid, n);
                    if let Some(b) = block {
                        if !b.is_empty() {
                            chunks.push(b);
                        }
                    }
                }
            }
            filter_blocks(chunks, filter.as_ref(), output, seg, ctx)
        }

        PhysicalPlan::PartitionSelector {
            table,
            part_scan_id,
            part_keys,
            predicates,
            child,
            ..
        } => match child {
            None => {
                // Static selection has no tuple flow; share the row
                // engine's arm (it counts the selector run itself).
                exec(plan, seg, storage, ctx)?;
                Ok(Vec::new())
            }
            Some(child) => {
                ctx.seg_stats(seg).selector_runs += 1;
                let tree = storage.catalog().part_tree(*table)?;
                let chunks = exec_block(child, seg, storage, ctx)?;
                ctx.mark_selector_ran(*part_scan_id, seg);
                let child_cols = child.output_cols();
                let mut sel = TupleSelector::prepare(&tree, part_keys, predicates, &child_cols)?;
                let mut propagate =
                    |oids: Vec<mpp_common::PartOid>| ctx.propagate_parts(*part_scan_id, seg, oids);
                let mut n = 0u64;
                for b in &chunks {
                    for k in 0..b.len() {
                        sel.observe(&|i| b.datum_at(k, i), ctx, &mut propagate)?;
                    }
                    n += b.len() as u64;
                }
                ctx.seg_stats(seg).rows_vectorized += n;
                Ok(chunks)
            }
        },

        PhysicalPlan::Sequence { children } => {
            let mut last = Vec::new();
            for c in children {
                last = exec_block(c, seg, storage, ctx)?;
            }
            Ok(last)
        }

        PhysicalPlan::Filter { pred, child } => {
            let chunks = exec_block(child, seg, storage, ctx)?;
            let cols = child.output_cols();
            filter_blocks(chunks, Some(pred), &cols, seg, ctx)
        }

        PhysicalPlan::Project { exprs, child, .. } => {
            let chunks = exec_block(child, seg, storage, ctx)?;
            let cols = child.output_cols();
            let exprs: Vec<Arc<CompiledExpr>> =
                exprs.iter().map(|e| compiled(e, &cols, ctx)).collect();
            let mut out = Vec::with_capacity(chunks.len());
            for b in chunks {
                let nb = project_block(&exprs, &b, seg, ctx)?;
                if !nb.is_empty() {
                    ctx.seg_stats(seg).blocks_produced += 1;
                    out.push(nb);
                }
            }
            Ok(out)
        }

        PhysicalPlan::HashJoin {
            join_type,
            left_keys,
            right_keys,
            residual,
            left,
            right,
        } => {
            let l_chunks = exec_block(left, seg, storage, ctx)?;
            let r_chunks = exec_block(right, seg, storage, ctx)?;
            block_hash_join(
                *join_type, left_keys, right_keys, residual, left, right, l_chunks, r_chunks, seg,
                ctx,
            )
        }

        PhysicalPlan::NLJoin {
            join_type,
            pred,
            left,
            right,
        } => {
            // Nested loops short-circuit per pair; evaluated row-wise.
            let l_rows = blocks_to_rows(&exec_block(left, seg, storage, ctx)?);
            let r_rows = blocks_to_rows(&exec_block(right, seg, storage, ctx)?);
            ctx.seg_stats(seg).rows_row_fallback += (l_rows.len() + r_rows.len()) as u64;
            let rows = nl_join(*join_type, pred, left, right, l_rows, r_rows, ctx)?;
            Ok(rows_to_chunks(rows, plan.output_cols().len()))
        }

        PhysicalPlan::HashAgg {
            group_by,
            aggs,
            child,
            ..
        } => {
            let chunks = exec_block(child, seg, storage, ctx)?;
            let cols = child.output_cols();
            let mut agg = AggExec::prepare(group_by, aggs, &cols, ctx)?;
            let args = agg.args.clone();
            let positions = agg.positions.clone();
            for b in &chunks {
                // Strict columnar evaluation of every aggregate argument;
                // any failure sends this chunk through the row path so
                // the first error surfaces in row-major order.
                let mut argcols: Vec<Option<ColumnVec>> = Vec::with_capacity(args.len());
                let mut strict = true;
                for a in &args {
                    match a {
                        None => argcols.push(None),
                        Some(e) => match e.eval_column_strict(b) {
                            Ok(c) => argcols.push(Some(c)),
                            Err(_) => {
                                strict = false;
                                break;
                            }
                        },
                    }
                }
                if strict {
                    for k in 0..b.len() {
                        let key: Vec<Datum> = positions.iter().map(|&p| b.datum_at(k, p)).collect();
                        let s = agg.slot(key);
                        agg.observe_values(
                            s,
                            argcols.iter().map(|c| c.as_ref().map(|c| c.get(k))),
                        )?;
                    }
                    ctx.seg_stats(seg).rows_vectorized += b.len() as u64;
                } else {
                    for k in 0..b.len() {
                        agg.observe_row(&b.row_at_phys(b.phys_index(k)))?;
                    }
                    ctx.seg_stats(seg).rows_row_fallback += b.len() as u64;
                }
            }
            let rows = agg.finalize(aggs, seg)?;
            Ok(rows_to_chunks(rows, plan.output_cols().len()))
        }

        PhysicalPlan::Motion { kind, child } => {
            let id = ctx.motion_id_of(plan)?;
            if seg == SegmentId(0) && matches!(kind, MotionKind::Gather) {
                if let Some(chunks) = ctx.preroute_blocks_take(id) {
                    return Ok(chunks);
                }
            }
            let per_source = match ctx.motion_cached_blocks(id) {
                Some(v) => v,
                None => {
                    if ctx.motions_frozen() {
                        return Err(Error::Internal(format!(
                            "parallel execution reached {id} before its stage materialized it"
                        )));
                    }
                    let mut v = Vec::with_capacity(storage.num_segments());
                    for s in storage.segments() {
                        v.push(exec_block(child, s, storage, ctx)?);
                    }
                    let counts: Vec<u64> = v
                        .iter()
                        .map(|chunks| chunks.iter().map(|b| b.len() as u64).sum())
                        .collect();
                    ctx.record_motion_counts(id, &counts);
                    let v = Arc::new(v);
                    ctx.motion_store_blocks(id, v.clone());
                    v
                }
            };
            route_motion_blocks(kind, &per_source, seg, storage, child, ctx, id)
        }

        PhysicalPlan::Append { children, .. } => {
            let mut out = Vec::new();
            for c in children {
                out.extend(exec_block(c, seg, storage, ctx)?);
            }
            Ok(out)
        }

        PhysicalPlan::InitPlanOids { .. } => {
            // Publication logic (and its run-once gate) lives in the row
            // engine's arm; it returns no rows either way.
            exec(plan, seg, storage, ctx)?;
            Ok(Vec::new())
        }

        PhysicalPlan::Values { rows, output } => {
            if seg == SegmentId(0) && !rows.is_empty() {
                let built: Vec<Row> = rows.iter().cloned().map(Row::new).collect();
                let width = if output.is_empty() {
                    built.first().map_or(0, |r| r.len())
                } else {
                    output.len()
                };
                Ok(vec![RowBlock::from_rows(&built, width)])
            } else {
                Ok(Vec::new())
            }
        }

        PhysicalPlan::Limit { n, child } => {
            let chunks = exec_block(child, seg, storage, ctx)?;
            let mut remaining = *n as usize;
            let mut out = Vec::new();
            for mut b in chunks {
                if remaining == 0 {
                    break;
                }
                if b.len() > remaining {
                    b.truncate(remaining);
                }
                remaining -= b.len();
                out.push(b);
            }
            Ok(out)
        }

        PhysicalPlan::Sort { keys, child } => {
            let chunks = exec_block(child, seg, storage, ctx)?;
            let cols = child.output_cols();
            let block = RowBlock::concat(&chunks, cols.len());
            if block.is_empty() {
                return Ok(Vec::new());
            }
            let positions: Vec<(usize, bool)> = keys
                .iter()
                .map(|(k, desc)| {
                    cols.iter()
                        .position(|c| c == k)
                        .map(|i| (i, *desc))
                        .ok_or_else(|| Error::Execution(format!("sort column {k} missing")))
                })
                .collect::<Result<_>>()?;
            // Materialize the key columns once; the comparator then never
            // reconstructs datums.
            let keymat: Vec<Vec<Datum>> = positions
                .iter()
                .map(|&(i, _)| (0..block.len()).map(|k| block.datum_at(k, i)).collect())
                .collect();
            let mut idx: Vec<u32> = (0..block.len() as u32).collect();
            idx.sort_by(|&a, &b| {
                for (kv, &(_, desc)) in keymat.iter().zip(&positions) {
                    let ord = kv[a as usize].cmp(&kv[b as usize]);
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let phys: Vec<u32> = idx
                .iter()
                .map(|&k| block.phys_index(k as usize) as u32)
                .collect();
            let sorted: Vec<Arc<ColumnVec>> = block
                .columns()
                .iter()
                .map(|c| Arc::new(c.gather(&phys)))
                .collect();
            ctx.seg_stats(seg).rows_vectorized += block.len() as u64;
            Ok(vec![RowBlock::from_columns(sorted, phys.len())])
        }

        PhysicalPlan::Update { .. } | PhysicalPlan::Delete { .. } | PhysicalPlan::Insert { .. } => {
            Err(Error::Execution(
                "DML must be the plan root (executed via exec_dml)".into(),
            ))
        }
    }
}

/// Apply an optional scan/filter predicate by refining each chunk's
/// selection vector. Surviving rows are never copied.
fn filter_blocks(
    chunks: Vec<RowBlock>,
    filter: Option<&Expr>,
    cols: &[mpp_expr::ColRef],
    seg: SegmentId,
    ctx: &ExecContext<'_>,
) -> Result<Vec<RowBlock>> {
    let Some(pred) = filter else {
        return Ok(chunks);
    };
    let pred = compiled(pred, cols, ctx);
    let mut out = Vec::with_capacity(chunks.len());
    for b in chunks {
        let mut stats = ctx.seg_stats(seg);
        if let Some(nb) = filter_block_core(&pred, b, &mut stats)? {
            drop(stats);
            out.push(nb);
        }
    }
    Ok(out)
}

/// Filter one chunk against a compiled predicate, recording stats into
/// the given buffer. Returns `None` when every row is filtered out (a
/// dead chunk produces no `blocks_produced` tick).
pub(crate) fn filter_block_core(
    pred: &CompiledExpr,
    b: RowBlock,
    stats: &mut SegmentStats,
) -> Result<Option<RowBlock>> {
    let n = b.len() as u64;
    let (sel, fell_back) = pred.eval_predicate_block(&b)?;
    if fell_back {
        stats.rows_row_fallback += n;
    } else {
        stats.rows_vectorized += n;
    }
    if sel.is_empty() {
        Ok(None)
    } else {
        stats.blocks_produced += 1;
        Ok(Some(b.with_sel(sel)))
    }
}

/// Project one block column-at-a-time, with a joint row-major fallback
/// when any expression cannot be strictly batch-evaluated.
fn project_block(
    exprs: &[Arc<CompiledExpr>],
    b: &RowBlock,
    seg: SegmentId,
    ctx: &ExecContext<'_>,
) -> Result<RowBlock> {
    let mut stats = ctx.seg_stats(seg);
    project_block_core(exprs, b, &mut stats)
}

/// Project one chunk, recording stats into the given buffer (strict
/// columnar evaluation with a joint row-major fallback).
pub(crate) fn project_block_core(
    exprs: &[Arc<CompiledExpr>],
    b: &RowBlock,
    stats: &mut SegmentStats,
) -> Result<RowBlock> {
    let mut cols = Vec::with_capacity(exprs.len());
    let mut strict = true;
    for e in exprs {
        match e.eval_column_strict(b) {
            Ok(c) => cols.push(Arc::new(c)),
            Err(_) => {
                strict = false;
                break;
            }
        }
    }
    if strict {
        stats.rows_vectorized += b.len() as u64;
        return Ok(RowBlock::from_columns(cols, b.len()));
    }
    let mut rows = Vec::with_capacity(b.len());
    for k in 0..b.len() {
        let row = b.row_at_phys(b.phys_index(k));
        let vals = exprs
            .iter()
            .map(|e| e.eval(&row))
            .collect::<Result<Vec<_>>>()?;
        rows.push(Row::new(vals));
    }
    stats.rows_row_fallback += b.len() as u64;
    Ok(RowBlock::from_rows(&rows, exprs.len()))
}

/// Hash join over blocks: batch key extraction on both sides, join-pair
/// assembly by column gather. Semi/anti joins reduce to a selection over
/// the build side — zero row copies.
#[allow(clippy::too_many_arguments)]
fn block_hash_join(
    join_type: JoinType,
    left_keys: &[Expr],
    right_keys: &[Expr],
    residual: &Option<Expr>,
    left: &PhysicalPlan,
    right: &PhysicalPlan,
    l_chunks: Vec<RowBlock>,
    r_chunks: Vec<RowBlock>,
    seg: SegmentId,
    ctx: &ExecContext<'_>,
) -> Result<Vec<RowBlock>> {
    let l_cols = left.output_cols();
    let r_cols = right.output_cols();
    let l_block = RowBlock::concat(&l_chunks, l_cols.len());
    let r_block = RowBlock::concat(&r_chunks, r_cols.len());
    let lk: Vec<Arc<CompiledExpr>> = left_keys
        .iter()
        .map(|k| compiled(k, &l_cols, ctx))
        .collect();
    let rk: Vec<Arc<CompiledExpr>> = right_keys
        .iter()
        .map(|k| compiled(k, &r_cols, ctx))
        .collect();

    let mut key_cols_l: Vec<ColumnVec> = Vec::with_capacity(lk.len());
    let mut key_cols_r: Vec<ColumnVec> = Vec::with_capacity(rk.len());
    let mut strict = true;
    for e in &lk {
        match e.eval_column_strict(&l_block) {
            Ok(c) => key_cols_l.push(c),
            Err(_) => {
                strict = false;
                break;
            }
        }
    }
    if strict {
        for e in &rk {
            match e.eval_column_strict(&r_block) {
                Ok(c) => key_cols_r.push(c),
                Err(_) => {
                    strict = false;
                    break;
                }
            }
        }
    }
    if !strict {
        // A key expression errors somewhere: re-run the whole join on the
        // row engine so build-before-probe error order is preserved.
        let l_rows = l_block.to_rows();
        let r_rows = r_block.to_rows();
        ctx.seg_stats(seg).rows_row_fallback += (l_rows.len() + r_rows.len()) as u64;
        let width = if join_type.outputs_right() {
            l_cols.len() + r_cols.len()
        } else {
            l_cols.len()
        };
        let rows = hash_join(
            join_type, left_keys, right_keys, residual, left, right, l_rows, r_rows, ctx,
        )?;
        return Ok(rows_to_chunks(rows, width));
    }

    let residual_c = residual.as_ref().map(|res| {
        let mut joined_cols = l_cols.clone();
        joined_cols.extend(r_cols.clone());
        compiled(res, &joined_cols, ctx)
    });

    let l_len = l_block.len();
    let r_len = r_block.len();
    // Build on the left: keys read from the extracted key columns (rows
    // with a NULL key component never match).
    let mut table: HashMap<Vec<Datum>, Vec<u32>> = HashMap::new();
    for i in 0..l_len {
        let mut key = Vec::with_capacity(key_cols_l.len());
        let mut has_null = false;
        for c in &key_cols_l {
            let v = c.get(i);
            has_null |= v.is_null();
            key.push(v);
        }
        if !has_null {
            table.entry(key).or_default().push(i as u32);
        }
    }

    let mut matched = vec![false; l_len];
    // Matched pairs, physical indices, in the row engine's output order:
    // probe rows in order, candidates in build order.
    let mut l_out: Vec<u32> = Vec::new();
    let mut r_out: Vec<u32> = Vec::new();
    for j in 0..r_len {
        let mut key = Vec::with_capacity(key_cols_r.len());
        let mut has_null = false;
        for c in &key_cols_r {
            let v = c.get(j);
            has_null |= v.is_null();
            key.push(v);
        }
        if has_null {
            continue;
        }
        let Some(candidates) = table.get(&key) else {
            continue;
        };
        for &i in candidates {
            let lp = l_block.phys_index(i as usize);
            let rp = r_block.phys_index(j);
            if let Some(res) = &residual_c {
                let joined = l_block.row_at_phys(lp).concat(&r_block.row_at_phys(rp));
                if !res.eval_predicate(&joined)? {
                    continue;
                }
            }
            matched[i as usize] = true;
            if join_type.outputs_right() {
                l_out.push(lp as u32);
                r_out.push(rp as u32);
            }
        }
    }
    ctx.seg_stats(seg).rows_vectorized += (l_len + r_len) as u64;

    let mut out: Vec<RowBlock> = Vec::new();
    match join_type {
        JoinType::Inner | JoinType::LeftOuter => {
            if !l_out.is_empty() {
                let mut cols: Vec<Arc<ColumnVec>> = Vec::with_capacity(l_cols.len() + r_cols.len());
                for c in l_block.columns() {
                    cols.push(Arc::new(c.gather(&l_out)));
                }
                for c in r_block.columns() {
                    cols.push(Arc::new(c.gather(&r_out)));
                }
                out.push(RowBlock::from_columns(cols, l_out.len()));
            }
            if matches!(join_type, JoinType::LeftOuter) {
                let unmatched: Vec<u32> = (0..l_len)
                    .filter(|&i| !matched[i])
                    .map(|i| l_block.phys_index(i) as u32)
                    .collect();
                if !unmatched.is_empty() {
                    let mut cols: Vec<Arc<ColumnVec>> =
                        Vec::with_capacity(l_cols.len() + r_cols.len());
                    for c in l_block.columns() {
                        cols.push(Arc::new(c.gather(&unmatched)));
                    }
                    for _ in 0..r_cols.len() {
                        cols.push(Arc::new(ColumnVec::broadcast(
                            &Datum::Null,
                            unmatched.len(),
                        )));
                    }
                    out.push(RowBlock::from_columns(cols, unmatched.len()));
                }
            }
        }
        JoinType::LeftSemi => {
            let sel: Vec<u32> = (0..l_len)
                .filter(|&i| matched[i])
                .map(|i| l_block.phys_index(i) as u32)
                .collect();
            if !sel.is_empty() {
                out.push(l_block.with_sel(sel));
            }
        }
        JoinType::LeftAnti => {
            let sel: Vec<u32> = (0..l_len)
                .filter(|&i| !matched[i])
                .map(|i| l_block.phys_index(i) as u32)
                .collect();
            if !sel.is_empty() {
                out.push(l_block.with_sel(sel));
            }
        }
    }
    let mut stats = ctx.seg_stats(seg);
    stats.blocks_produced += out.len() as u64;
    Ok(out)
}

/// Motion routing over block payloads.
#[allow(clippy::too_many_arguments)]
fn route_motion_blocks(
    kind: &MotionKind,
    per_source: &[Vec<RowBlock>],
    seg: SegmentId,
    storage: &Storage,
    child: &PhysicalPlan,
    ctx: &ExecContext<'_>,
    id: MotionId,
) -> Result<Vec<RowBlock>> {
    match kind {
        MotionKind::Gather => {
            if seg == SegmentId(0) {
                Ok(per_source.iter().flatten().cloned().collect())
            } else {
                Ok(Vec::new())
            }
        }
        MotionKind::GatherOne => {
            if seg == SegmentId(0) {
                Ok(per_source.first().cloned().unwrap_or_default())
            } else {
                Ok(Vec::new())
            }
        }
        MotionKind::Broadcast => {
            // Every destination shares the materialized chunks: cloning a
            // block bumps its columns' refcounts, nothing is re-copied.
            Ok(per_source.iter().flatten().cloned().collect())
        }
        MotionKind::Redistribute(cols) => {
            let child_cols = child.output_cols();
            let positions: Vec<usize> =
                cols.iter()
                    .map(|c| {
                        child_cols.iter().position(|x| x == c).ok_or_else(|| {
                            Error::Execution(format!("redistribute column {c} missing"))
                        })
                    })
                    .collect::<Result<_>>()?;
            let n = storage.num_segments() as u64;
            let chunks: Vec<&RowBlock> = per_source.iter().flatten().collect();
            // One hashing pass per Motion (not per destination segment).
            let hashes = ctx.redistribute_hashes(id, || {
                chunks.iter().map(|b| b.hash_columns(&positions)).collect()
            });
            let mut out = Vec::new();
            for (b, hs) in chunks.iter().zip(hashes.iter()) {
                let sel: Vec<u32> = hs
                    .iter()
                    .enumerate()
                    .filter(|&(_, h)| (h % n) as u32 == seg.0)
                    .map(|(k, _)| b.phys_index(k) as u32)
                    .collect();
                if !sel.is_empty() {
                    out.push((*b).clone().with_sel(sel));
                }
            }
            Ok(out)
        }
    }
}

// Keep the unused-import lint honest when DerivedSet is only referenced
// by the static-selector delegation above.
#[allow(unused)]
fn _derived_set_marker(_d: DerivedSet) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_with_params_engine, ExecEngine, ExecMode, QueryResult};
    use mpp_catalog::{Catalog, Distribution, TableDesc};
    use mpp_common::{row, Column, DataType, Schema, TableOid};
    use mpp_expr::{CmpOp, ColRef};
    use mpp_plan::{AggCall, AggFunc};

    fn cr(id: u32, name: &str) -> ColRef {
        ColRef::new(id, name)
    }

    fn setup(segs: usize, rows: Vec<Row>) -> (Storage, TableOid) {
        let cat = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int64),
            Column::new("g", DataType::Int64),
        ]);
        let t = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid: t,
            name: "t".into(),
            schema,
            distribution: Distribution::Hashed(vec![0]),
            partitioning: None,
        })
        .unwrap();
        let st = Storage::new(cat, segs);
        st.insert(t, rows).unwrap();
        (st, t)
    }

    fn scan(t: TableOid) -> PhysicalPlan {
        PhysicalPlan::TableScan {
            table: t,
            table_name: "t".into(),
            output: vec![cr(1, "a"), cr(2, "g")],
            filter: None,
        }
    }

    fn batch(st: &Storage, plan: &PhysicalPlan, mode: ExecMode) -> QueryResult {
        execute_with_params_engine(st, plan, &[], mode, ExecEngine::Batch).unwrap()
    }

    /// A filter that keeps nothing must still count the rows it
    /// inspected, but must not count a produced block for the dead chunk
    /// — and downstream operators must see clean empty input.
    #[test]
    fn fully_filtered_chunks_leave_no_phantom_stats() {
        let rows: Vec<Row> = (0..50).map(|i| row![i as i64, 0i64]).collect();
        let (st, t) = setup(2, rows);
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Filter {
                pred: Expr::cmp(
                    CmpOp::Lt,
                    Expr::col(cr(1, "a")),
                    Expr::lit(Datum::Int64(-1)),
                ),
                child: Box::new(scan(t)),
            }),
        };
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let res = batch(&st, &plan, mode);
            assert!(res.rows.is_empty(), "{mode:?}");
            assert_eq!(res.stats.rows_vectorized, 50, "{mode:?}");
            assert_eq!(res.stats.blocks_produced, 0, "{mode:?}");
            assert_eq!(res.stats.rows_row_fallback, 0, "{mode:?}");
        }
    }

    /// An empty table produces no blocks at all: zero vectorized rows,
    /// zero produced blocks — and a scalar aggregate above it still
    /// emits its one default row, from segment 0 only.
    #[test]
    fn empty_input_yields_no_stats_but_keeps_the_agg_default_row() {
        let (st, t) = setup(3, Vec::new());
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::HashAgg {
                group_by: vec![],
                aggs: vec![
                    AggCall::count_star(),
                    AggCall::new(AggFunc::Max, Expr::col(cr(1, "a"))),
                ],
                output: vec![cr(10, "count"), cr(11, "max")],
                child: Box::new(scan(t)),
            }),
        };
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            let res = batch(&st, &plan, mode);
            assert_eq!(
                res.rows,
                vec![Row::new(vec![Datum::Int64(0), Datum::Null])],
                "{mode:?}"
            );
            assert_eq!(res.stats.rows_vectorized, 0, "{mode:?}");
            assert_eq!(res.stats.rows_row_fallback, 0, "{mode:?}");
        }
    }

    /// All-NULL group keys are one real group (`NULL` groups with
    /// `NULL`), not zero groups and not one group per row.
    #[test]
    fn all_null_group_keys_form_exactly_one_group() {
        let rows: Vec<Row> = (0..20).map(|i| row![i as i64, Datum::Null]).collect();
        let (st, t) = setup(2, rows);
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Motion {
                kind: MotionKind::Redistribute(vec![cr(2, "g")]),
                child: Box::new(PhysicalPlan::HashAgg {
                    group_by: vec![cr(2, "g")],
                    aggs: vec![
                        AggCall::count_star(),
                        AggCall::new(AggFunc::Count, Expr::col(cr(2, "g"))),
                    ],
                    output: vec![cr(2, "g"), cr(10, "count"), cr(11, "count_g")],
                    child: Box::new(scan(t)),
                }),
            }),
        };
        for engine in [ExecEngine::Batch, ExecEngine::Row] {
            for mode in [ExecMode::Sequential, ExecMode::Parallel] {
                let res = execute_with_params_engine(&st, &plan, &[], mode, engine).unwrap();
                // One group per *segment* that saw rows, all keyed NULL;
                // COUNT(g) over an all-NULL column is 0.
                assert!(!res.rows.is_empty(), "{engine:?} {mode:?}");
                let total: i64 = res
                    .rows
                    .iter()
                    .map(|r| r.values()[1].as_i64().unwrap())
                    .sum();
                assert_eq!(total, 20, "{engine:?} {mode:?}");
                for r in &res.rows {
                    assert_eq!(r.values()[0], Datum::Null, "{engine:?} {mode:?}");
                    assert_eq!(r.values()[2], Datum::Int64(0), "{engine:?} {mode:?}");
                }
            }
        }
    }
}
