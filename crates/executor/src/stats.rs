//! Execution statistics.
//!
//! Counters are collected **per segment** in a [`SegmentStats`] (each
//! worker thread owns its own slot under parallel execution) and merged
//! deterministically — in segment order, with order-insensitive set
//! unions and sums — into the query-level [`ExecutionStats`]. Every
//! merged counter is therefore identical between sequential and
//! parallel execution of the same plan; only `elapsed` is
//! mode-dependent (wall-clock per worker vs. a share of one thread).

use mpp_common::{MotionId, PartOid, SegmentId, TableOid};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// Counters collected by one segment (worker) during one execution.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SegmentStats {
    /// Wall-clock time this segment spent executing its slices. Under
    /// `ExecMode::Parallel` this is the worker thread's own time; under
    /// `ExecMode::Sequential` it is the segment's share of the single
    /// driver thread. Excluded from cross-mode equivalence.
    pub elapsed: Duration,
    /// Distinct leaf partitions this segment scanned, per root table.
    pub parts_scanned: HashMap<TableOid, HashSet<PartOid>>,
    /// Partition opens on this segment (each loop over a partition counts).
    pub part_opens: u64,
    /// Unpartitioned-table scans on this segment.
    pub table_scans: u64,
    /// Tuples this segment read from storage.
    pub tuples_scanned: u64,
    /// Rows this segment *sent* across Motion boundaries.
    pub rows_moved: u64,
    /// Partition-selector invocations on this segment.
    pub selector_runs: u64,
    /// Rows this segment processed through vectorized (columnar block)
    /// operator paths: batch filters, projections, join-key extraction,
    /// aggregate input, per-tuple selector probes.
    pub rows_vectorized: u64,
    /// Rows the block engine routed through the row-at-a-time fallback
    /// (per-block, when strict batch evaluation cannot reproduce exact
    /// row semantics — e.g. a row error mid-block), plus rows handled by
    /// operators that always run row-wise (nested-loops join).
    pub rows_row_fallback: u64,
    /// `RowBlock` chunks the block engine's operators produced.
    pub blocks_produced: u64,
    /// Tuples read from storage per root table (partitioned or not) —
    /// the *actual* per-table scan cardinalities the runtime feedback
    /// loop compares against the optimizer's estimates.
    pub scan_rows: HashMap<TableOid, u64>,
}

impl SegmentStats {
    pub fn record_part_scan(&mut self, table: TableOid, part: PartOid, tuples: usize) {
        self.parts_scanned.entry(table).or_default().insert(part);
        self.part_opens += 1;
        self.tuples_scanned += tuples as u64;
        *self.scan_rows.entry(table).or_default() += tuples as u64;
    }

    pub fn record_table_scan(&mut self, table: TableOid, tuples: usize) {
        self.table_scans += 1;
        self.tuples_scanned += tuples as u64;
        *self.scan_rows.entry(table).or_default() += tuples as u64;
    }

    /// Fold another stats buffer into this one (same field set as
    /// [`ExecutionStats::merge_segments`], plus `elapsed`). Used by the
    /// morsel scheduler to absorb a segment's buffered counters only
    /// once the whole segment has succeeded.
    pub fn absorb(&mut self, other: SegmentStats) {
        self.elapsed += other.elapsed;
        for (table, parts) in other.parts_scanned {
            self.parts_scanned.entry(table).or_default().extend(parts);
        }
        self.part_opens += other.part_opens;
        self.table_scans += other.table_scans;
        self.tuples_scanned += other.tuples_scanned;
        self.rows_moved += other.rows_moved;
        self.selector_runs += other.selector_runs;
        self.rows_vectorized += other.rows_vectorized;
        self.rows_row_fallback += other.rows_row_fallback;
        self.blocks_produced += other.blocks_produced;
        for (table, rows) in other.scan_rows {
            *self.scan_rows.entry(table).or_default() += rows;
        }
    }
}

/// Counters for one query execution, merged across segments.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Distinct leaf partitions scanned, per root table — the metric of
    /// paper Figure 16.
    pub parts_scanned: HashMap<TableOid, HashSet<PartOid>>,
    /// Total partition opens (a partition scanned on several segments or
    /// in several loops counts each time).
    pub part_opens: u64,
    /// Unpartitioned-table scans.
    pub table_scans: u64,
    /// Tuples read from storage.
    pub tuples_scanned: u64,
    /// Rows that crossed a Motion boundary.
    pub rows_moved: u64,
    /// Motion executions.
    pub motions: u64,
    /// Rows emitted by the root.
    pub rows_returned: u64,
    /// Partition-selector invocations.
    pub selector_runs: u64,
    /// Rows processed through vectorized (columnar block) operator paths.
    pub rows_vectorized: u64,
    /// Rows the block engine fell back to row-at-a-time evaluation for.
    pub rows_row_fallback: u64,
    /// `RowBlock` chunks produced by block operators.
    pub blocks_produced: u64,
    /// Rows materialized by each Motion node, keyed by its stable
    /// [`MotionId`] (not its node address, so clones/re-executions of a
    /// plan report under the same key).
    pub per_motion_rows: HashMap<MotionId, u64>,
    /// Tuples read from storage per root table — actual per-table scan
    /// cardinalities for the runtime feedback loop.
    pub scan_rows: HashMap<TableOid, u64>,
    /// Per-segment breakdown, indexed by `SegmentId.0`.
    pub per_segment: Vec<SegmentStats>,
}

impl ExecutionStats {
    /// Distinct partitions scanned across all tables.
    pub fn total_parts_scanned(&self) -> usize {
        self.parts_scanned.values().map(|s| s.len()).sum()
    }

    /// Distinct partitions scanned for one table.
    pub fn parts_scanned_for(&self, table: TableOid) -> usize {
        self.parts_scanned.get(&table).map(|s| s.len()).unwrap_or(0)
    }

    pub fn record_part_scan(&mut self, table: TableOid, part: PartOid, tuples: usize) {
        self.parts_scanned.entry(table).or_default().insert(part);
        self.part_opens += 1;
        self.tuples_scanned += tuples as u64;
        *self.scan_rows.entry(table).or_default() += tuples as u64;
    }

    pub fn record_table_scan(&mut self, table: TableOid, tuples: usize) {
        self.table_scans += 1;
        self.tuples_scanned += tuples as u64;
        *self.scan_rows.entry(table).or_default() += tuples as u64;
    }

    /// The per-segment view for one segment, if it exists.
    pub fn segment(&self, seg: SegmentId) -> Option<&SegmentStats> {
        self.per_segment.get(seg.0 as usize)
    }

    /// Fold per-segment counters into the query-level totals, in segment
    /// order. Sets and sums are order-insensitive, so the result is
    /// identical no matter how the segments were scheduled.
    pub fn merge_segments(&mut self, per_segment: Vec<SegmentStats>) {
        for seg in &per_segment {
            for (table, parts) in &seg.parts_scanned {
                self.parts_scanned
                    .entry(*table)
                    .or_default()
                    .extend(parts.iter().copied());
            }
            self.part_opens += seg.part_opens;
            self.table_scans += seg.table_scans;
            self.tuples_scanned += seg.tuples_scanned;
            self.rows_moved += seg.rows_moved;
            self.selector_runs += seg.selector_runs;
            self.rows_vectorized += seg.rows_vectorized;
            self.rows_row_fallback += seg.rows_row_fallback;
            self.blocks_produced += seg.blocks_produced;
            for (table, rows) in &seg.scan_rows {
                *self.scan_rows.entry(*table).or_default() += rows;
            }
        }
        self.per_segment = per_segment;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_parts_counted_once() {
        let mut s = ExecutionStats::default();
        s.record_part_scan(TableOid(1), PartOid(10), 5);
        s.record_part_scan(TableOid(1), PartOid(10), 7); // same part, other segment
        s.record_part_scan(TableOid(1), PartOid(11), 3);
        s.record_part_scan(TableOid(2), PartOid(20), 1);
        assert_eq!(s.parts_scanned_for(TableOid(1)), 2);
        assert_eq!(s.total_parts_scanned(), 3);
        assert_eq!(s.part_opens, 4);
        assert_eq!(s.tuples_scanned, 16);
        assert_eq!(s.scan_rows[&TableOid(1)], 15);
        assert_eq!(s.scan_rows[&TableOid(2)], 1);
    }

    #[test]
    fn merge_is_deterministic_and_complete() {
        let mut a = SegmentStats::default();
        a.record_part_scan(TableOid(1), PartOid(10), 5);
        a.record_table_scan(TableOid(3), 3);
        a.rows_moved = 7;
        a.selector_runs = 1;
        let mut b = SegmentStats::default();
        b.record_part_scan(TableOid(1), PartOid(10), 2); // same part on another segment
        b.record_part_scan(TableOid(1), PartOid(11), 4);
        b.rows_moved = 2;

        let mut fwd = ExecutionStats::default();
        fwd.merge_segments(vec![a.clone(), b.clone()]);
        assert_eq!(fwd.parts_scanned_for(TableOid(1)), 2);
        assert_eq!(fwd.part_opens, 3);
        assert_eq!(fwd.table_scans, 1);
        assert_eq!(fwd.tuples_scanned, 14);
        assert_eq!(fwd.rows_moved, 9);
        assert_eq!(fwd.selector_runs, 1);
        assert_eq!(fwd.scan_rows[&TableOid(1)], 11);
        assert_eq!(fwd.scan_rows[&TableOid(3)], 3);
        assert_eq!(fwd.per_segment.len(), 2);
        assert_eq!(fwd.segment(SegmentId(1)).unwrap().part_opens, 2);

        // The totals do not depend on which segment did what.
        let mut rev = ExecutionStats::default();
        rev.merge_segments(vec![b, a]);
        assert_eq!(rev.parts_scanned, fwd.parts_scanned);
        assert_eq!(rev.part_opens, fwd.part_opens);
        assert_eq!(rev.tuples_scanned, fwd.tuples_scanned);
        assert_eq!(rev.rows_moved, fwd.rows_moved);
    }
}
