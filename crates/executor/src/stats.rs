//! Execution statistics.

use mpp_common::{PartOid, TableOid};
use std::collections::{HashMap, HashSet};

/// Counters collected during one query execution.
#[derive(Debug, Default, Clone)]
pub struct ExecutionStats {
    /// Distinct leaf partitions scanned, per root table — the metric of
    /// paper Figure 16.
    pub parts_scanned: HashMap<TableOid, HashSet<PartOid>>,
    /// Total partition opens (a partition scanned on several segments or
    /// in several loops counts each time).
    pub part_opens: u64,
    /// Unpartitioned-table scans.
    pub table_scans: u64,
    /// Tuples read from storage.
    pub tuples_scanned: u64,
    /// Rows that crossed a Motion boundary.
    pub rows_moved: u64,
    /// Motion executions.
    pub motions: u64,
    /// Rows emitted by the root.
    pub rows_returned: u64,
    /// Partition-selector invocations.
    pub selector_runs: u64,
}

impl ExecutionStats {
    /// Distinct partitions scanned across all tables.
    pub fn total_parts_scanned(&self) -> usize {
        self.parts_scanned.values().map(|s| s.len()).sum()
    }

    /// Distinct partitions scanned for one table.
    pub fn parts_scanned_for(&self, table: TableOid) -> usize {
        self.parts_scanned.get(&table).map(|s| s.len()).unwrap_or(0)
    }

    pub fn record_part_scan(&mut self, table: TableOid, part: PartOid, tuples: usize) {
        self.parts_scanned.entry(table).or_default().insert(part);
        self.part_opens += 1;
        self.tuples_scanned += tuples as u64;
    }

    pub fn record_table_scan(&mut self, tuples: usize) {
        self.table_scans += 1;
        self.tuples_scanned += tuples as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_parts_counted_once() {
        let mut s = ExecutionStats::default();
        s.record_part_scan(TableOid(1), PartOid(10), 5);
        s.record_part_scan(TableOid(1), PartOid(10), 7); // same part, other segment
        s.record_part_scan(TableOid(1), PartOid(11), 3);
        s.record_part_scan(TableOid(2), PartOid(20), 1);
        assert_eq!(s.parts_scanned_for(TableOid(1)), 2);
        assert_eq!(s.total_parts_scanned(), 3);
        assert_eq!(s.part_opens, 4);
        assert_eq!(s.tuples_scanned, 16);
    }
}
