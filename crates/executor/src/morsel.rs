//! Morsel-driven work-stealing execution.
//!
//! This module is the one stage driver behind both [`ExecMode`]s and both
//! [`ExecEngine`]s: the plan is cut into slices at Motion boundaries
//! (children before parents, exactly as the old parallel driver did), and
//! each stage's work is decomposed into *tasks* that run on a small
//! work-stealing scheduler ([`run_tasks`]). Sequential mode is the same
//! scheduler with one worker — the tasks then drain in deque order, which
//! reproduces the sequential driver's segment-major evaluation order.
//!
//! For the row engine — and for block-engine slices whose shape doesn't
//! fuse — a task is "one segment's slice", matching the old per-segment
//! thread model ([`SchedPolicy::PerSegment`] forces this decomposition,
//! and is the baseline the skew benchmark measures against). For
//! block-engine slices of the shape
//!
//! ```text
//! (Filter|Project)* [HashAgg] (Filter|Project)*
//!     (TableScan | PartScan | DynamicScan | Append[PartScan..]
//!      | Sequence[static selectors.., scan])
//! ```
//!
//! the slice is *fused*: each segment's scan output is cut into morsels of
//! at most [`SchedConfig::morsel_rows`] rows (partition × block ranges),
//! and every morsel runs the whole scan→filter→project→partial-agg
//! pipeline as one task. A skewed partition therefore spreads over all
//! workers instead of serializing its segment's thread, and the fused
//! pipeline keeps per-morsel group state in typed accumulators (an
//! integer-keyed fast path when the single GROUP BY column is an integer
//! column) instead of per-row `Vec<Datum>` keys.
//!
//! ## Determinism
//!
//! Results must be bit-identical to the per-segment drivers in every
//! mode, at every worker count:
//!
//! * the morsel decomposition depends only on the stored blocks and
//!   `morsel_rows` — never on the worker count — and per-segment results
//!   (blocks, partial aggregates, buffered stats) are merged in morsel
//!   order, so stats and rows are scheduling-independent;
//! * fused tasks accumulate into *buffered* [`SegmentStats`], absorbed
//!   into the shared context only when the whole segment succeeds;
//! * any morsel error — and any merge whose result the partial
//!   accumulators cannot prove exact (int-sum overflow detected via i128
//!   prefix extremes, float sums merged across morsels, whose value
//!   depends on addition order) — discards the segment's buffered state
//!   and **re-runs that segment's slice through the unfused
//!   [`exec_block`] path**, adopting whatever that reference run produces
//!   (rows or error). Row-fallback error *ordering* therefore always
//!   matches the row engine: the re-run surfaces the row-major-first
//!   error, regardless of which morsel failed first under stealing.
//!
//! Static partition selectors run once per segment on the driver thread
//! (they publish OID sets and count `selector_runs` against the real
//! context); the re-run path strips them from the slice so their stats
//! are never double-counted.

use crate::block_exec::{exec_block, filter_block_core, project_block_core, rows_to_chunks};
use crate::context::ExecContext;
use crate::exec::{compiled, exec, AggExec, ExecEngine, ExecMode};
use crate::pool;
use crate::slice::SlicePlan;
use crate::stats::SegmentStats;
use crate::stream::{ResultChunk, RowSink};
use mpp_common::{
    bitmap_get, ColumnData, ColumnVec, Datum, Error, MotionId, PartOid, PartScanId, Result, Row,
    RowBlock, SegmentId, TableOid,
};
use mpp_expr::CompiledExpr;
use mpp_plan::{AggCall, AggFunc, MotionKind, PhysicalPlan};
use mpp_storage::{PhysId, Storage};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// How a stage's work is decomposed into scheduler tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedPolicy {
    /// Fuse eligible block-engine slices into per-morsel pipeline tasks;
    /// everything else falls back to one task per segment.
    #[default]
    Morsel,
    /// Always one task per segment — the old one-thread-per-segment
    /// model, kept as the benchmark baseline and as an escape hatch.
    PerSegment,
}

/// Scheduler configuration. Not part of any plan-cache key: it changes
/// how a plan executes, never what it computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchedConfig {
    /// Worker count; `None` derives it from the mode (Sequential → 1,
    /// Parallel → one per segment).
    pub workers: Option<usize>,
    pub policy: SchedPolicy,
    /// Maximum logical rows per morsel.
    pub morsel_rows: usize,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            workers: None,
            policy: SchedPolicy::default(),
            morsel_rows: 4096,
        }
    }
}

impl SchedConfig {
    fn effective_workers(&self, mode: ExecMode, num_segments: usize) -> usize {
        self.workers
            .unwrap_or(match mode {
                ExecMode::Sequential => 1,
                ExecMode::Parallel => num_segments,
            })
            .max(1)
    }
}

/// Run `tasks` on `workers` workers with work stealing and return each
/// task's result in task order (`None` = the task panicked).
///
/// Tasks are dealt round-robin onto per-worker deques; a worker pops its
/// own deque from the front and steals from the back of others. Worker 0
/// is the calling thread; workers 1.. are jobs on the shared segment
/// pool. With one worker this degenerates to draining the single deque
/// FIFO on the caller — exact sequential order. A panicking task is
/// caught per task: the other tasks still run, the workers drain to
/// completion, and nothing leaks (the pool threads outlive the call by
/// design and `pool::run_with` joins every job before returning).
pub(crate) fn run_tasks<'env, T: Send>(
    workers: usize,
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
) -> Vec<Option<T>> {
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    type Deque<'env, T> = Mutex<VecDeque<(usize, Box<dyn FnOnce() -> T + Send + 'env>)>>;
    let deques: Vec<Deque<'env, T>> = (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, t) in tasks.into_iter().enumerate() {
        deques[i % workers].lock().push_back((i, t));
    }
    let drain = |me: usize| loop {
        let task = {
            let own = deques[me].lock().pop_front();
            own.or_else(|| (1..workers).find_map(|d| deques[(me + d) % workers].lock().pop_back()))
        };
        match task {
            None => break,
            Some((idx, f)) => {
                if let Ok(v) = catch_unwind(AssertUnwindSafe(f)) {
                    *slots[idx].lock() = Some(v);
                }
            }
        }
    };
    let drain = &drain;
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (1..workers)
        .map(|w| Box::new(move || drain(w)) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    let ((), _oks) = pool::run_with(jobs, || drain(0));
    slots.into_iter().map(|m| m.into_inner()).collect()
}

/// Run one closure per segment on the scheduler and join the results in
/// segment order, first error wins (a panicked task reports as the same
/// internal error the per-segment pool driver used).
fn run_per_segment<T, F>(workers: usize, segs: &[SegmentId], f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(SegmentId) -> Result<T> + Sync,
{
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() -> Result<T> + Send + '_>> = segs
        .iter()
        .map(|&seg| Box::new(move || f(seg)) as Box<dyn FnOnce() -> Result<T> + Send + '_>)
        .collect();
    run_tasks(workers, tasks)
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| Err(Error::Internal("segment worker panicked".into()))))
        .collect()
}

/// The unified stage driver: materialize every Motion stage in
/// children-before-parents order, then run the root slice, emitting its
/// output through `sink` chunk by chunk. Both modes and both engines
/// route through here (Sequential = one worker), so Motions always
/// materialize eagerly stage by stage, exactly as the old parallel
/// drivers did. Returns the number of rows emitted.
pub(crate) fn run_stages_stream(
    plan: &PhysicalPlan,
    storage: &Storage,
    ctx: &ExecContext<'_>,
    engine: ExecEngine,
    sched: &SchedConfig,
    sink: &mut RowSink<'_>,
) -> Result<u64> {
    let slices = SlicePlan::cut(plan);
    // From here on every Motion a task reads must come from a stage (or
    // from the init-plan phase, whose subtree Motions are already cached
    // and whose stages are skipped below).
    ctx.freeze_motions();
    let segs: Vec<SegmentId> = storage.segments().collect();
    if segs.is_empty() {
        return Ok(0);
    }
    let workers = sched.effective_workers(ctx.mode(), segs.len());
    match engine {
        ExecEngine::Row => run_stages_rows(&slices, storage, ctx, workers, &segs, sink),
        ExecEngine::Batch => run_stages_blocks(&slices, storage, ctx, workers, &segs, sched, sink),
    }
}

/// The incremental-delivery fast path: when the plan root is an uncached
/// `Motion{Gather}` and execution is sequential, the final Gather is not
/// materialized as a stage at all — each segment's child-slice output is
/// handed to the sink as that segment finishes, so the first chunks
/// reach a network client while later segments are still scanning.
///
/// This is observable-behavior-identical to the staged path: Gather
/// consumption on segment 0 records no stats (it takes the preroute
/// copy), the single `record_motion_counts` still happens exactly once
/// after *all* segments succeeded, rows arrive in segment order, and the
/// first error in segment order wins either way.
fn stream_root<'p>(
    slices: &SlicePlan<'p>,
    ctx: &ExecContext<'_>,
) -> Option<(MotionId, &'p PhysicalPlan)> {
    if ctx.mode() != ExecMode::Sequential {
        // Parallel stages overlap segments; streaming them per segment
        // would serialize the workers. Keep the staged path.
        return None;
    }
    match slices.root {
        PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child,
        } => {
            let id = ctx.motion_id_of(slices.root).ok()?;
            // An init-plan phase may have materialized this Motion
            // already; consuming the cache is then the correct path.
            if ctx.motion_cached(id).is_none() && ctx.motion_cached_blocks(id).is_none() {
                Some((id, child.as_ref()))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn run_stages_rows(
    slices: &SlicePlan<'_>,
    storage: &Storage,
    ctx: &ExecContext<'_>,
    workers: usize,
    segs: &[SegmentId],
    sink: &mut RowSink<'_>,
) -> Result<u64> {
    // One task per segment; with `preroute` set (Gather stages) each task
    // clones its own output while the rows are warm, concatenated in
    // segment order — byte-identical to what `route_motion` assembles.
    let run_slice = |node: &PhysicalPlan, preroute: bool| -> Result<(Vec<Vec<Row>>, Vec<Row>)> {
        let pairs = run_per_segment(workers, segs, |seg| {
            let t0 = Instant::now();
            let res = exec(node, seg, storage, ctx);
            ctx.seg_stats(seg).elapsed += t0.elapsed();
            res.map(|rows| {
                let copy = if preroute { rows.clone() } else { Vec::new() };
                (rows, copy)
            })
        })?;
        let mut per_source = Vec::with_capacity(pairs.len());
        let mut routed = Vec::new();
        for (rows, copy) in pairs {
            per_source.push(rows);
            routed.extend(copy);
        }
        Ok((per_source, routed))
    };

    let streamed = stream_root(slices, ctx);
    for site in &slices.stages {
        ctx.check_cancel()?;
        let id = ctx.motion_id_of(site.node)?;
        if matches!(streamed, Some((sid, _)) if sid == id) {
            // The root Gather streams; its child runs below, per segment.
            continue;
        }
        if ctx.motion_cached(id).is_some() {
            continue;
        }
        let preroute = matches!(site.kind, MotionKind::Gather);
        let (per_source, routed) = run_slice(site.child, preroute)?;
        ctx.record_motion(id, &per_source);
        ctx.motion_store(id, Arc::new(per_source));
        if preroute {
            ctx.preroute_put(id, routed);
        }
    }
    ctx.check_cancel()?;
    if let Some((id, child)) = streamed {
        let mut counts = Vec::with_capacity(segs.len());
        let mut total = 0u64;
        for &seg in segs {
            ctx.check_cancel()?;
            let t0 = Instant::now();
            let res = exec(child, seg, storage, ctx);
            ctx.seg_stats(seg).elapsed += t0.elapsed();
            let rows = res?;
            counts.push(rows.len() as u64);
            total += rows.len() as u64;
            if !rows.is_empty() {
                ctx.check_cancel()?;
                sink(ResultChunk::Rows(rows))?;
            }
        }
        // Recorded only once the whole Gather succeeded — the staged
        // path's stats carry no trace of a failed materialization either.
        ctx.record_motion_counts(id, &counts);
        return Ok(total);
    }
    let (per_segment, _) = run_slice(slices.root, false)?;
    let mut total = 0u64;
    for rows in per_segment {
        total += rows.len() as u64;
        if !rows.is_empty() {
            ctx.check_cancel()?;
            sink(ResultChunk::Rows(rows))?;
        }
    }
    Ok(total)
}

#[allow(clippy::too_many_arguments)]
fn run_stages_blocks(
    slices: &SlicePlan<'_>,
    storage: &Storage,
    ctx: &ExecContext<'_>,
    workers: usize,
    segs: &[SegmentId],
    sched: &SchedConfig,
    sink: &mut RowSink<'_>,
) -> Result<u64> {
    let run_slice =
        |node: &PhysicalPlan, preroute: bool| -> Result<(Vec<Vec<RowBlock>>, Vec<RowBlock>)> {
            if matches!(sched.policy, SchedPolicy::Morsel) {
                if let Some(fused) = FusedSlice::analyze(node, ctx) {
                    return run_fused(&fused, storage, ctx, workers, segs, sched, preroute);
                }
            }
            let pairs = run_per_segment(workers, segs, |seg| {
                let t0 = Instant::now();
                let res = exec_block(node, seg, storage, ctx);
                ctx.seg_stats(seg).elapsed += t0.elapsed();
                res.map(|chunks| {
                    let copy = if preroute { chunks.clone() } else { Vec::new() };
                    (chunks, copy)
                })
            })?;
            let mut per_source = Vec::with_capacity(pairs.len());
            let mut routed = Vec::new();
            for (chunks, copy) in pairs {
                per_source.push(chunks);
                routed.extend(copy);
            }
            Ok((per_source, routed))
        };

    let streamed = stream_root(slices, ctx);
    for site in &slices.stages {
        ctx.check_cancel()?;
        let id = ctx.motion_id_of(site.node)?;
        if matches!(streamed, Some((sid, _)) if sid == id) {
            // The root Gather streams; its child runs below, per segment.
            continue;
        }
        // Skip stages already materialized — by an earlier stage, or by
        // the init-plan phase (init subtrees run the row engine and cache
        // rows; their Motions are never consumed by the main traversal).
        if ctx.motion_cached_blocks(id).is_some() || ctx.motion_cached(id).is_some() {
            continue;
        }
        let preroute = matches!(site.kind, MotionKind::Gather);
        let (per_source, routed) = run_slice(site.child, preroute)?;
        let counts: Vec<u64> = per_source
            .iter()
            .map(|chunks| chunks.iter().map(|b| b.len() as u64).sum())
            .collect();
        ctx.record_motion_counts(id, &counts);
        ctx.motion_store_blocks(id, Arc::new(per_source));
        if preroute {
            ctx.preroute_blocks_put(id, routed);
        }
    }
    ctx.check_cancel()?;
    if let Some((id, child)) = streamed {
        // Analyze once; the fused driver then runs one segment at a time
        // so chunks stream out as each segment completes. Single-segment
        // invocations produce the same morsel decomposition, merge order
        // and stats as one all-segments invocation — only the scheduling
        // envelope shrinks.
        let fused = if matches!(sched.policy, SchedPolicy::Morsel) {
            FusedSlice::analyze(child, ctx)
        } else {
            None
        };
        let mut counts = Vec::with_capacity(segs.len());
        let mut total = 0u64;
        for &seg in segs {
            ctx.check_cancel()?;
            let chunks = match &fused {
                Some(f) => {
                    let (mut per_source, _) =
                        run_fused(f, storage, ctx, workers, &[seg], sched, false)?;
                    per_source.pop().unwrap_or_default()
                }
                None => {
                    let t0 = Instant::now();
                    let res = exec_block(child, seg, storage, ctx);
                    ctx.seg_stats(seg).elapsed += t0.elapsed();
                    res?
                }
            };
            let rows: u64 = chunks.iter().map(|b| b.len() as u64).sum();
            counts.push(rows);
            total += rows;
            // A cancel check per block, not just per segment: a Cancel
            // frame arriving while a big segment result drains to a
            // network sink must stop at the next block boundary.
            for b in chunks {
                if !b.is_empty() {
                    ctx.check_cancel()?;
                    sink(ResultChunk::Block(b))?;
                }
            }
        }
        ctx.record_motion_counts(id, &counts);
        return Ok(total);
    }
    let (per_segment, _) = run_slice(slices.root, false)?;
    let mut total = 0u64;
    for chunks in per_segment {
        for b in chunks {
            total += b.len() as u64;
            if !b.is_empty() {
                ctx.check_cancel()?;
                sink(ResultChunk::Block(b))?;
            }
        }
    }
    Ok(total)
}

// ---------------------------------------------------------------------
// Fused slices
// ---------------------------------------------------------------------

/// A fused pipeline operator above the scan.
enum FusedOp {
    Filter(Arc<CompiledExpr>),
    Project(Vec<Arc<CompiledExpr>>),
}

/// One partition scan of an `Append` (or a lone `PartScan`).
struct PartSpec {
    table: TableOid,
    part: PartOid,
    gate: Option<u32>,
    filter: Option<Arc<CompiledExpr>>,
}

/// Blocks enumerated from a segment, each with its scan-embedded filter.
type ScannedBlocks = Vec<(RowBlock, Option<Arc<CompiledExpr>>)>;

/// Where a fused slice's blocks come from.
enum FusedSource {
    Table {
        table: TableOid,
        filter: Option<Arc<CompiledExpr>>,
    },
    Parts(Vec<PartSpec>),
    Dynamic {
        table: TableOid,
        id: PartScanId,
        filter: Option<Arc<CompiledExpr>>,
        /// Adaptive group branch: intersect the selector-propagated OIDs
        /// with this set before scanning (mirrors `DynamicScan::restrict`).
        restrict: Option<Vec<PartOid>>,
    },
}

/// The aggregation step of a fused slice (compiled once per stage).
struct FusedAgg<'p> {
    positions: Vec<usize>,
    args: Vec<Option<Arc<CompiledExpr>>>,
    calls: &'p [AggCall],
    /// Output width of the HashAgg node.
    width: usize,
}

struct FusedSlice<'p> {
    /// Static partition selectors (a `Sequence` prefix), run once per
    /// segment on the driver against the real context.
    selectors: Vec<&'p PhysicalPlan>,
    source: FusedSource,
    /// Per-morsel operators below the aggregation (scan-embedded filters
    /// ride on each enumerated block instead — they can differ per
    /// `Append` child).
    pre_ops: Vec<FusedOp>,
    agg: Option<FusedAgg<'p>>,
    /// Operators above the aggregation; they see at most one chunk per
    /// segment and run on the driver after the merge.
    post_ops: Vec<FusedOp>,
    /// The slice child itself — the reference path for re-runs.
    node: &'p PhysicalPlan,
    /// Re-run plan with the selector prefix stripped (only built when
    /// selectors exist): selectors already ran during enumeration, and
    /// running them twice would double-count `selector_runs`.
    rerun: Option<PhysicalPlan>,
}

impl<'p> FusedSlice<'p> {
    /// Decide whether `node` has the fusable shape, compiling every
    /// expression once. Anything unexpected — including a compile-time
    /// aggregation error — declines fusion so the per-segment reference
    /// path surfaces identical behavior.
    fn analyze(node: &'p PhysicalPlan, ctx: &ExecContext<'_>) -> Option<FusedSlice<'p>> {
        let mut cur = node;
        let mut post_rev: Vec<FusedOp> = Vec::new();
        let mut pre_rev: Vec<FusedOp> = Vec::new();
        let mut agg: Option<FusedAgg<'p>> = None;
        loop {
            match cur {
                PhysicalPlan::Filter { pred, child } => {
                    let op = FusedOp::Filter(compiled(pred, &child.output_cols(), ctx));
                    if agg.is_some() {
                        pre_rev.push(op);
                    } else {
                        post_rev.push(op);
                    }
                    cur = child;
                }
                PhysicalPlan::Project { exprs, child, .. } => {
                    let cols = child.output_cols();
                    let op =
                        FusedOp::Project(exprs.iter().map(|e| compiled(e, &cols, ctx)).collect());
                    if agg.is_some() {
                        pre_rev.push(op);
                    } else {
                        post_rev.push(op);
                    }
                    cur = child;
                }
                PhysicalPlan::HashAgg {
                    group_by,
                    aggs,
                    child,
                    ..
                } => {
                    if agg.is_some() {
                        return None;
                    }
                    let prep = AggExec::prepare(group_by, aggs, &child.output_cols(), ctx).ok()?;
                    agg = Some(FusedAgg {
                        positions: prep.positions.clone(),
                        args: prep.args.clone(),
                        calls: aggs,
                        width: cur.output_cols().len(),
                    });
                    cur = child;
                }
                _ => break,
            }
        }
        if agg.is_none() {
            // No aggregation: every operator runs per morsel.
            pre_rev = std::mem::take(&mut post_rev);
        }
        pre_rev.reverse();
        post_rev.reverse();

        let (selectors, src_node): (Vec<&'p PhysicalPlan>, &'p PhysicalPlan) = match cur {
            PhysicalPlan::Sequence { children } => {
                let (last, init) = children.split_last()?;
                if !init
                    .iter()
                    .all(|c| matches!(c, PhysicalPlan::PartitionSelector { child: None, .. }))
                {
                    return None;
                }
                (init.iter().collect(), last)
            }
            _ => (Vec::new(), cur),
        };
        let part_spec = |c: &PhysicalPlan| -> Option<PartSpec> {
            match c {
                PhysicalPlan::PartScan {
                    table,
                    part,
                    output,
                    filter,
                    gate,
                    ..
                } => Some(PartSpec {
                    table: *table,
                    part: *part,
                    gate: *gate,
                    filter: filter.as_ref().map(|f| compiled(f, output, ctx)),
                }),
                _ => None,
            }
        };
        let source = match src_node {
            PhysicalPlan::TableScan {
                table,
                output,
                filter,
                ..
            } => FusedSource::Table {
                table: *table,
                filter: filter.as_ref().map(|f| compiled(f, output, ctx)),
            },
            PhysicalPlan::PartScan { .. } => FusedSource::Parts(vec![part_spec(src_node)?]),
            PhysicalPlan::DynamicScan {
                table,
                part_scan_id,
                output,
                filter,
                restrict,
                ..
            } => FusedSource::Dynamic {
                table: *table,
                id: *part_scan_id,
                filter: filter.as_ref().map(|f| compiled(f, output, ctx)),
                restrict: restrict.clone(),
            },
            PhysicalPlan::Append { children, .. } => {
                FusedSource::Parts(children.iter().map(part_spec).collect::<Option<Vec<_>>>()?)
            }
            _ => return None,
        };
        let rerun = if selectors.is_empty() {
            None
        } else {
            Some(strip_selectors(node))
        };
        Some(FusedSlice {
            selectors,
            source,
            pre_ops: pre_rev,
            agg,
            post_ops: post_rev,
            node,
            rerun,
        })
    }

    /// Scan this segment's blocks, recording scan stats into a *local*
    /// buffer. Mirrors the scan arms of [`exec_block`] exactly (including
    /// the no-record early return of a gated-out `PartScan`).
    fn enumerate_segment(
        &self,
        seg: SegmentId,
        storage: &Storage,
        ctx: &ExecContext<'_>,
    ) -> Result<(SegmentStats, ScannedBlocks)> {
        let mut local = SegmentStats::default();
        let mut blocks = Vec::new();
        let mut push = |block: Option<RowBlock>, filter: &Option<Arc<CompiledExpr>>| {
            if let Some(b) = block {
                if !b.is_empty() {
                    blocks.push((b, filter.clone()));
                }
            }
        };
        match &self.source {
            FusedSource::Table { table, filter } => {
                let block = storage.scan_block(PhysId::Table(*table), seg);
                local.record_table_scan(*table, block.as_ref().map_or(0, |b| b.len()));
                push(block, filter);
            }
            FusedSource::Parts(specs) => {
                for s in specs {
                    ctx.check_cancel()?;
                    if let Some(g) = s.gate {
                        if !ctx.oid_param_contains(g, s.part)? {
                            continue;
                        }
                    }
                    let block = storage.scan_block(PhysId::Part(s.part), seg);
                    local.record_part_scan(s.table, s.part, block.as_ref().map_or(0, |b| b.len()));
                    push(block, &s.filter);
                }
            }
            FusedSource::Dynamic {
                table,
                id,
                filter,
                restrict,
            } => {
                let mut oids = ctx.consume_parts(*id, seg)?;
                if let Some(keep) = restrict {
                    oids.retain(|oid| keep.contains(oid));
                }
                let scans =
                    storage.scan_batch_blocks(oids.iter().map(|&oid| PhysId::Part(oid)), seg);
                for (oid, (_, block)) in oids.iter().zip(scans) {
                    ctx.check_cancel()?;
                    local.record_part_scan(*table, *oid, block.as_ref().map_or(0, |b| b.len()));
                    push(block, filter);
                }
            }
        }
        Ok((local, blocks))
    }
}

/// Clone the fused spine with the `Sequence` selector prefix removed: the
/// re-run path must not run selectors again. Only the linear fused shape
/// is ever passed here.
fn strip_selectors(node: &PhysicalPlan) -> PhysicalPlan {
    match node {
        PhysicalPlan::Sequence { children } => children
            .last()
            .cloned()
            .expect("fused Sequence has a scan child"),
        PhysicalPlan::Filter { pred, child } => PhysicalPlan::Filter {
            pred: pred.clone(),
            child: Box::new(strip_selectors(child)),
        },
        PhysicalPlan::Project {
            exprs,
            output,
            child,
        } => PhysicalPlan::Project {
            exprs: exprs.clone(),
            output: output.clone(),
            child: Box::new(strip_selectors(child)),
        },
        PhysicalPlan::HashAgg {
            group_by,
            aggs,
            output,
            child,
        } => PhysicalPlan::HashAgg {
            group_by: group_by.clone(),
            aggs: aggs.clone(),
            output: output.clone(),
            child: Box::new(strip_selectors(child)),
        },
        other => other.clone(),
    }
}

/// What one morsel task hands back to the driver.
enum MorselPayload {
    /// Filter/project pipeline output (`None` = fully filtered out).
    Blocks(Option<RowBlock>),
    /// Per-morsel partial aggregation state.
    Agg(Box<PartialAgg>),
}

struct MorselOut {
    stats: SegmentStats,
    payload: MorselPayload,
}

/// Run the fused pipeline over one morsel, accumulating stats locally.
fn run_morsel(
    fused: &FusedSlice<'_>,
    block: RowBlock,
    scan_filter: Option<Arc<CompiledExpr>>,
) -> Result<MorselOut> {
    let t0 = Instant::now();
    let mut stats = SegmentStats::default();
    // Densify sliced morsels up front: expression kernels evaluate
    // *physical* columns, so a sel-backed slice of a big stored block
    // would re-evaluate the whole block for every morsel cut from it —
    // O(block) work per O(morsel) slice.
    let block = if block.sel().is_some() {
        block.compact()
    } else {
        block
    };
    let mut cur = Some(block);
    if let Some(pred) = &scan_filter {
        cur = filter_block_core(pred, cur.take().expect("morsel block"), &mut stats)?;
    }
    if cur.is_some() {
        for op in &fused.pre_ops {
            match op {
                FusedOp::Filter(pred) => {
                    cur = filter_block_core(pred, cur.take().expect("live block"), &mut stats)?;
                }
                FusedOp::Project(exprs) => {
                    let nb =
                        project_block_core(exprs, cur.as_ref().expect("live block"), &mut stats)?;
                    cur = if nb.is_empty() {
                        None
                    } else {
                        stats.blocks_produced += 1;
                        Some(nb)
                    };
                }
            }
            if cur.is_none() {
                break;
            }
        }
    }
    let payload = match &fused.agg {
        Some(agg) => {
            let mut pa = PartialAgg::new();
            if let Some(b) = &cur {
                pa.absorb(b, agg, &mut stats)?;
            }
            MorselPayload::Agg(Box::new(pa))
        }
        None => MorselPayload::Blocks(cur),
    };
    stats.elapsed += t0.elapsed();
    Ok(MorselOut { stats, payload })
}

/// Apply the post-aggregation operators to a segment's chunk list,
/// mirroring the Filter/Project arms of [`exec_block`].
fn apply_ops(
    mut chunks: Vec<RowBlock>,
    ops: &[FusedOp],
    stats: &mut SegmentStats,
) -> Result<Vec<RowBlock>> {
    for op in ops {
        let mut next = Vec::with_capacity(chunks.len());
        for b in chunks {
            match op {
                FusedOp::Filter(pred) => {
                    if let Some(nb) = filter_block_core(pred, b, stats)? {
                        next.push(nb);
                    }
                }
                FusedOp::Project(exprs) => {
                    let nb = project_block_core(exprs, &b, stats)?;
                    if !nb.is_empty() {
                        stats.blocks_produced += 1;
                        next.push(nb);
                    }
                }
            }
        }
        chunks = next;
    }
    Ok(chunks)
}

/// Drive one fused slice: selectors, enumeration, morsel tasks, merge.
#[allow(clippy::too_many_arguments)]
fn run_fused(
    fused: &FusedSlice<'_>,
    storage: &Storage,
    ctx: &ExecContext<'_>,
    workers: usize,
    segs: &[SegmentId],
    sched: &SchedConfig,
    preroute: bool,
) -> Result<(Vec<Vec<RowBlock>>, Vec<RowBlock>)> {
    let n_segs = segs.len();
    let mut seg_errs: Vec<Option<Error>> = Vec::with_capacity(n_segs);
    seg_errs.resize_with(n_segs, || None);
    let mut seg_stats: Vec<SegmentStats> = vec![SegmentStats::default(); n_segs];

    // Selectors publish OID sets and count against the real context; the
    // segment re-run path never repeats them.
    for (i, &seg) in segs.iter().enumerate() {
        for sel in &fused.selectors {
            let t0 = Instant::now();
            let res = exec(sel, seg, storage, ctx);
            ctx.seg_stats(seg).elapsed += t0.elapsed();
            if let Err(e) = res {
                seg_errs[i] = Some(e);
                break;
            }
        }
    }

    // Enumerate every segment's blocks and cut them into morsels. The
    // decomposition depends only on the stored blocks and `morsel_rows`,
    // never on the worker count.
    let mr = sched.morsel_rows.max(1);
    let mut morsel_seg: Vec<usize> = Vec::new();
    let mut morsels: Vec<(RowBlock, Option<Arc<CompiledExpr>>)> = Vec::new();
    for (i, &seg) in segs.iter().enumerate() {
        if seg_errs[i].is_some() {
            continue;
        }
        let t0 = Instant::now();
        match fused.enumerate_segment(seg, storage, ctx) {
            Ok((mut local, blocks)) => {
                local.elapsed += t0.elapsed();
                seg_stats[i] = local;
                for (b, f) in blocks {
                    for m in mpp_storage::block_morsels(&b, mr) {
                        morsel_seg.push(i);
                        morsels.push((m, f.clone()));
                    }
                }
            }
            Err(e) => seg_errs[i] = Some(e),
        }
    }

    let tasks: Vec<Box<dyn FnOnce() -> Result<MorselOut> + Send + '_>> = morsels
        .into_iter()
        .map(|(block, filter)| {
            Box::new(move || run_morsel(fused, block, filter))
                as Box<dyn FnOnce() -> Result<MorselOut> + Send + '_>
        })
        .collect();
    let outs = run_tasks(workers, tasks);

    // Group morsel outcomes back by segment, in morsel order.
    let mut seg_outs: Vec<Vec<Option<Result<MorselOut>>>> = Vec::with_capacity(n_segs);
    seg_outs.resize_with(n_segs, Vec::new);
    for (i, out) in morsel_seg.into_iter().zip(outs) {
        seg_outs[i].push(out);
    }

    let rerun_node = fused.rerun.as_ref().unwrap_or(fused.node);
    let rerun = |seg: SegmentId| -> Result<Vec<RowBlock>> {
        let t0 = Instant::now();
        let res = exec_block(rerun_node, seg, storage, ctx);
        ctx.seg_stats(seg).elapsed += t0.elapsed();
        res
    };

    let mut first_err: Option<Error> = None;
    let mut per_source: Vec<Vec<RowBlock>> = Vec::with_capacity(n_segs);
    'segs: for (i, &seg) in segs.iter().enumerate() {
        per_source.push(Vec::new());
        if first_err.is_some() {
            // A lower segment already failed; the query result is that
            // error regardless of what later segments would produce.
            continue;
        }
        if let Some(e) = seg_errs[i].take() {
            first_err = Some(e);
            continue;
        }
        let mut stats = std::mem::take(&mut seg_stats[i]);
        let mut payloads: Vec<MorselPayload> = Vec::with_capacity(seg_outs[i].len());
        let mut needs_rerun = false;
        for out in seg_outs[i].drain(..) {
            match out {
                None => {
                    first_err = Some(Error::Internal("morsel worker panicked".into()));
                    continue 'segs;
                }
                Some(Err(_)) => {
                    // Discard buffered state; the reference re-run
                    // reproduces the row-major-first error exactly.
                    needs_rerun = true;
                    break;
                }
                Some(Ok(mo)) => {
                    stats.absorb(mo.stats);
                    payloads.push(mo.payload);
                }
            }
        }
        let chunks = if needs_rerun {
            None
        } else if let Some(agg) = &fused.agg {
            let mut iter = payloads.into_iter();
            let mut pa = match iter.next() {
                Some(MorselPayload::Agg(pa)) => *pa,
                Some(MorselPayload::Blocks(_)) => unreachable!("agg slice yields agg payloads"),
                None => PartialAgg::new(),
            };
            for p in iter {
                match p {
                    MorselPayload::Agg(other) => pa.merge(*other),
                    MorselPayload::Blocks(_) => unreachable!("agg slice yields agg payloads"),
                }
            }
            match pa.finalize(agg, seg) {
                Finalized::Rows(rows) => {
                    let chunks = rows_to_chunks(rows, agg.width);
                    apply_ops(chunks, &fused.post_ops, &mut stats).ok()
                }
                Finalized::NeedsExact => None,
            }
        } else {
            let chunks: Vec<RowBlock> = payloads
                .into_iter()
                .filter_map(|p| match p {
                    MorselPayload::Blocks(b) => b,
                    MorselPayload::Agg(_) => unreachable!("pipeline slice yields block payloads"),
                })
                .collect();
            Some(chunks)
        };
        match chunks {
            Some(chunks) => {
                ctx.seg_stats(seg).absorb(stats);
                per_source[i] = chunks;
            }
            None => match rerun(seg) {
                Ok(chunks) => per_source[i] = chunks,
                Err(e) => first_err = Some(e),
            },
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let routed = if preroute {
        per_source.iter().flatten().cloned().collect()
    } else {
        Vec::new()
    };
    Ok((per_source, routed))
}

// ---------------------------------------------------------------------
// Partial aggregation
// ---------------------------------------------------------------------

/// Which integer column variant backs a typed key or min/max value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum IntVar {
    I32,
    I64,
    Date,
}

impl IntVar {
    fn of(col: &ColumnVec) -> Option<IntVar> {
        match col.data() {
            ColumnData::Int32(_) => Some(IntVar::I32),
            ColumnData::Int64(_) => Some(IntVar::I64),
            ColumnData::Date(_) => Some(IntVar::Date),
            _ => None,
        }
    }

    fn datum(self, v: i64) -> Datum {
        match self {
            IntVar::I32 => Datum::Int32(v as i32),
            IntVar::I64 => Datum::Int64(v),
            IntVar::Date => Datum::Date(v as i32),
        }
    }
}

const F64_EXACT: i128 = 1 << 53;

/// One aggregate call's mergeable partial state. Mirrors the row
/// engine's accumulator exactly, except that integer sums ride in i128
/// with running prefix extremes instead of erroring on overflow: a
/// prefix that ever leaves the i64 range proves the sequential engine
/// would have errored mid-stream, and the segment re-runs unfused.
#[derive(Clone)]
struct PartialAcc {
    count: i64,
    non_null: i64,
    sum_f: f64,
    sum_is_float: bool,
    sum_i: i128,
    min_p: i128,
    max_p: i128,
    min: Option<Datum>,
    max: Option<Datum>,
    /// Typed fast-path min/max, normalized into `min`/`max` at the end
    /// of the morsel.
    min_i: i64,
    max_i: i64,
    int_var: Option<IntVar>,
    /// Non-null values merged from more than one morsel: float sums can
    /// no longer prove addition-order-exactness.
    mixed: bool,
    /// Something the fast path could not mirror exactly; force a re-run.
    poisoned: bool,
}

impl PartialAcc {
    fn new() -> PartialAcc {
        PartialAcc {
            count: 0,
            non_null: 0,
            sum_f: 0.0,
            sum_is_float: false,
            sum_i: 0,
            min_p: 0,
            max_p: 0,
            min: None,
            max: None,
            min_i: i64::MAX,
            max_i: i64::MIN,
            int_var: None,
            mixed: false,
            poisoned: false,
        }
    }

    #[inline]
    fn add_int_sum(&mut self, i: i64) {
        self.sum_i += i as i128;
        self.min_p = self.min_p.min(self.sum_i);
        self.max_p = self.max_p.max(self.sum_i);
    }

    /// Typed integer observation for Count/Sum/Avg calls (no min/max
    /// tracking needed — those calls never read it).
    #[inline]
    fn observe_int(&mut self, i: i64) {
        self.count += 1;
        self.non_null += 1;
        self.add_int_sum(i);
    }

    /// Typed integer observation for Min/Max calls.
    #[inline]
    fn observe_int_minmax(&mut self, i: i64, var: IntVar) {
        self.observe_int(i);
        self.min_i = self.min_i.min(i);
        self.max_i = self.max_i.max(i);
        self.int_var = Some(var);
    }

    /// Exact mirror of the row accumulator's `observe`.
    fn observe(&mut self, v: Option<Datum>) {
        self.count += 1;
        if let Some(v) = v {
            if !v.is_null() {
                self.non_null += 1;
                match &v {
                    Datum::Float64(f) => {
                        self.sum_is_float = true;
                        self.sum_f += f;
                    }
                    Datum::Int32(_) | Datum::Int64(_) | Datum::Date(_) => match v.as_i64() {
                        Ok(i) => {
                            self.add_int_sum(i);
                            self.sum_f += i as f64;
                        }
                        Err(_) => self.poisoned = true,
                    },
                    _ => {}
                }
                match &self.min {
                    Some(m) if &v >= m => {}
                    _ => self.min = Some(v.clone()),
                }
                match &self.max {
                    Some(m) if &v <= m => {}
                    _ => self.max = Some(v),
                }
            }
        }
    }

    /// Fold typed min/max into the datum form (end of morsel).
    fn normalize(&mut self) {
        if let Some(var) = self.int_var.take() {
            if self.min_i <= self.max_i {
                let lo = var.datum(self.min_i);
                match &self.min {
                    Some(m) if &lo >= m => {}
                    _ => self.min = Some(lo),
                }
                let hi = var.datum(self.max_i);
                match &self.max {
                    Some(m) if &hi <= m => {}
                    _ => self.max = Some(hi),
                }
            }
            self.min_i = i64::MAX;
            self.max_i = i64::MIN;
        }
    }

    /// Merge `b` (a later morsel's state, already normalized) into self.
    fn merge(&mut self, b: PartialAcc) {
        self.mixed |= b.mixed || (self.non_null > 0 && b.non_null > 0);
        self.poisoned |= b.poisoned;
        self.count += b.count;
        self.non_null += b.non_null;
        self.sum_is_float |= b.sum_is_float;
        self.sum_f += b.sum_f;
        self.min_p = self.min_p.min(self.sum_i + b.min_p);
        self.max_p = self.max_p.max(self.sum_i + b.max_p);
        self.sum_i += b.sum_i;
        if let Some(v) = b.min {
            match &self.min {
                Some(m) if &v >= m => {}
                _ => self.min = Some(v),
            }
        }
        if let Some(v) = b.max {
            match &self.max {
                Some(m) if &v <= m => {}
                _ => self.max = Some(v),
            }
        }
    }

    /// Does finalizing this accumulator for `func` require the exact
    /// sequential path?
    fn needs_exact(&self, func: AggFunc) -> bool {
        if self.poisoned {
            return true;
        }
        // An integer running sum that ever left i64 means the sequential
        // engine errored mid-accumulation (it checks on every observe,
        // whatever the call).
        if self.min_p < i64::MIN as i128 || self.max_p > i64::MAX as i128 {
            return true;
        }
        match func {
            AggFunc::Sum | AggFunc::Avg => {
                if self.sum_is_float && self.mixed {
                    // Cross-morsel float addition is order-sensitive.
                    return true;
                }
                if func == AggFunc::Avg
                    && !self.sum_is_float
                    && (self.min_p < -F64_EXACT || self.max_p > F64_EXACT)
                {
                    // The sequential f64 fold of these ints may have
                    // rounded; `sum_i as f64` can't reproduce it.
                    return true;
                }
                false
            }
            _ => false,
        }
    }

    fn finalize(&self, call: &AggCall) -> Datum {
        match call.func {
            AggFunc::Count => match &call.arg {
                None => Datum::Int64(self.count),
                Some(_) => Datum::Int64(self.non_null),
            },
            AggFunc::Sum => {
                if self.non_null == 0 {
                    Datum::Null
                } else if self.sum_is_float {
                    Datum::Float64(self.sum_f)
                } else {
                    Datum::Int64(self.sum_i as i64)
                }
            }
            AggFunc::Avg => {
                if self.non_null == 0 {
                    Datum::Null
                } else {
                    let sum = if self.sum_is_float {
                        self.sum_f
                    } else {
                        self.sum_i as f64
                    };
                    Datum::Float64(sum / self.non_null as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Datum::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Datum::Null),
        }
    }
}

/// Group-key storage: a typed integer fast path when the single GROUP BY
/// column is an integer column (bijective with the datum keys the row
/// engine builds, including first-seen order), or general datum keys.
enum Keys {
    Int {
        var: IntVar,
        index: HashMap<i64, u32>,
        keys: Vec<i64>,
    },
    General {
        index: HashMap<Vec<Datum>, u32>,
        keys: Vec<Vec<Datum>>,
    },
}

/// Per-morsel (and, after merging, per-segment) partial aggregation
/// state. Groups are kept in first-seen order; merging in morsel order
/// reproduces the sequential engine's group order exactly.
struct PartialAgg {
    keys: Keys,
    groups: Vec<Vec<PartialAcc>>,
}

enum Finalized {
    Rows(Vec<Row>),
    /// Some accumulator can't prove its merged value matches the
    /// sequential engine — re-run the segment unfused.
    NeedsExact,
}

impl PartialAgg {
    fn new() -> PartialAgg {
        PartialAgg {
            keys: Keys::General {
                index: HashMap::new(),
                keys: Vec::new(),
            },
            groups: Vec::new(),
        }
    }

    /// Fold one morsel's block in. Strict columnar argument evaluation
    /// with a per-morsel row fallback — the same split (and the same
    /// stats attribution rule) as the unfused HashAgg arm.
    fn absorb(
        &mut self,
        b: &RowBlock,
        spec: &FusedAgg<'_>,
        stats: &mut SegmentStats,
    ) -> Result<()> {
        let mut argcols: Vec<Option<ColumnVec>> = Vec::with_capacity(spec.args.len());
        let mut strict = true;
        for a in &spec.args {
            match a {
                None => argcols.push(None),
                Some(e) => match e.eval_column_strict(b) {
                    Ok(c) => argcols.push(Some(c)),
                    Err(_) => {
                        strict = false;
                        break;
                    }
                },
            }
        }
        if strict {
            self.absorb_strict(b, spec, &argcols);
            stats.rows_vectorized += b.len() as u64;
        } else {
            self.absorb_rows(b, spec)?;
            stats.rows_row_fallback += b.len() as u64;
        }
        for accs in &mut self.groups {
            for acc in accs {
                acc.normalize();
            }
        }
        Ok(())
    }

    fn absorb_strict(&mut self, b: &RowBlock, spec: &FusedAgg<'_>, argcols: &[Option<ColumnVec>]) {
        let n_calls = spec.args.len();
        let slots = self.slot_vector(b, &spec.positions, n_calls);
        for (j, call) in spec.calls.iter().enumerate() {
            match &argcols[j] {
                None => {
                    for &s in &slots {
                        self.groups[s as usize][j].count += 1;
                    }
                }
                Some(col) => {
                    let var = IntVar::of(col);
                    // Typed integer lanes, null-aware: a NULL slot counts
                    // the row (`observe(Null)` ≡ `count += 1`) without
                    // touching sums or extremes; null-free columns keep the
                    // branch-free inner loop.
                    macro_rules! lanes {
                        ($v:expr, $to:expr, $obs:expr) => {{
                            let v = $v;
                            let to = $to;
                            let obs = $obs;
                            match col.validity() {
                                None => {
                                    for (k, &s) in slots.iter().enumerate() {
                                        obs(&mut self.groups[s as usize][j], to(v[k]));
                                    }
                                }
                                Some(w) => {
                                    for (k, &s) in slots.iter().enumerate() {
                                        let acc = &mut self.groups[s as usize][j];
                                        if bitmap_get(w, k) {
                                            obs(acc, to(v[k]));
                                        } else {
                                            acc.count += 1;
                                        }
                                    }
                                }
                            }
                        }};
                    }
                    match (var, col.data(), call.func) {
                        (
                            Some(_),
                            ColumnData::Int32(v),
                            AggFunc::Count | AggFunc::Sum | AggFunc::Avg,
                        ) => lanes!(v, |x: i32| x as i64, |a: &mut PartialAcc, x| a
                            .observe_int(x)),
                        (
                            Some(_),
                            ColumnData::Int64(v),
                            AggFunc::Count | AggFunc::Sum | AggFunc::Avg,
                        ) => lanes!(v, |x: i64| x, |a: &mut PartialAcc, x| a.observe_int(x)),
                        (
                            Some(_),
                            ColumnData::Date(v),
                            AggFunc::Count | AggFunc::Sum | AggFunc::Avg,
                        ) => lanes!(v, |x: i32| x as i64, |a: &mut PartialAcc, x| a
                            .observe_int(x)),
                        (Some(var), ColumnData::Int32(v), _) => {
                            lanes!(v, |x: i32| x as i64, |a: &mut PartialAcc, x| a
                                .observe_int_minmax(x, var))
                        }
                        (Some(var), ColumnData::Int64(v), _) => {
                            lanes!(v, |x: i64| x, |a: &mut PartialAcc, x| a
                                .observe_int_minmax(x, var))
                        }
                        (Some(var), ColumnData::Date(v), _) => {
                            lanes!(v, |x: i32| x as i64, |a: &mut PartialAcc, x| a
                                .observe_int_minmax(x, var))
                        }
                        _ => {
                            for (k, &s) in slots.iter().enumerate() {
                                self.groups[s as usize][j].observe(Some(col.get(k)));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Row-major fallback: mirror `AggExec::observe_row` per row. Errors
    /// propagate (they trigger the segment re-run, which reproduces
    /// them in exact order).
    fn absorb_rows(&mut self, b: &RowBlock, spec: &FusedAgg<'_>) -> Result<()> {
        for k in 0..b.len() {
            let row = b.row_at_phys(b.phys_index(k));
            let key: Vec<Datum> = spec
                .positions
                .iter()
                .map(|&i| row.values()[i].clone())
                .collect();
            let s = self.general_slot(key, spec.args.len());
            for (j, arg) in spec.args.iter().enumerate() {
                let v = match arg {
                    None => None,
                    Some(e) => Some(e.eval(&row)?),
                };
                self.groups[s as usize][j].observe(v);
            }
        }
        Ok(())
    }

    /// Group slots for every row of the block, choosing the typed key
    /// representation when the single group column is an integer column.
    fn slot_vector(&mut self, b: &RowBlock, positions: &[usize], n_calls: usize) -> Vec<u32> {
        if positions.len() == 1 {
            let p = positions[0];
            if let Some(col) = b.columns().get(p) {
                // NULL group keys need datum identity — only null-free
                // integer columns take the typed-key fast path.
                if let (Some(var), None) = (IntVar::of(col), col.validity()) {
                    self.keys = Keys::Int {
                        var,
                        index: HashMap::new(),
                        keys: Vec::new(),
                    };
                    return match col.data() {
                        ColumnData::Int32(v) => self.int_slots(b, |p| v[p] as i64, n_calls),
                        ColumnData::Int64(v) => self.int_slots(b, |p| v[p], n_calls),
                        ColumnData::Date(v) => self.int_slots(b, |p| v[p] as i64, n_calls),
                        _ => unreachable!("IntVar::of matched an int column"),
                    };
                }
            }
        }
        let n = b.len();
        let mut slots = Vec::with_capacity(n);
        for k in 0..n {
            let key: Vec<Datum> = positions.iter().map(|&p| b.datum_at(k, p)).collect();
            slots.push(self.general_slot(key, n_calls));
        }
        slots
    }

    fn int_slots<F: Fn(usize) -> i64>(&mut self, b: &RowBlock, get: F, n_calls: usize) -> Vec<u32> {
        let Keys::Int { index, keys, .. } = &mut self.keys else {
            unreachable!("int_slots follows Keys::Int setup");
        };
        let n = b.len();
        let mut slots = Vec::with_capacity(n);
        for k in 0..n {
            let key = get(b.phys_index(k));
            let slot = match index.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let i = keys.len() as u32;
                    keys.push(key);
                    self.groups.push(vec![PartialAcc::new(); n_calls]);
                    e.insert(i);
                    i
                }
            };
            slots.push(slot);
        }
        slots
    }

    fn general_slot(&mut self, key: Vec<Datum>, n_calls: usize) -> u32 {
        if let Keys::Int { .. } = self.keys {
            self.degrade();
        }
        let Keys::General { index, keys } = &mut self.keys else {
            unreachable!("degraded to general keys");
        };
        match index.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let i = keys.len() as u32;
                keys.push(e.key().clone());
                self.groups.push(vec![PartialAcc::new(); n_calls]);
                e.insert(i);
                i
            }
        }
    }

    /// Convert typed integer keys to datum keys (order preserved).
    fn degrade(&mut self) {
        if let Keys::Int { var, keys, .. } = &self.keys {
            let var = *var;
            let keys: Vec<Vec<Datum>> = keys.iter().map(|&k| vec![var.datum(k)]).collect();
            let index = keys
                .iter()
                .enumerate()
                .map(|(i, k)| (k.clone(), i as u32))
                .collect();
            self.keys = Keys::General { index, keys };
        }
    }

    /// Merge a later morsel's state in (morsel order).
    fn merge(&mut self, other: PartialAgg) {
        match (&mut self.keys, other.keys) {
            (
                Keys::Int { var, index, keys },
                Keys::Int {
                    var: var2,
                    keys: keys2,
                    ..
                },
            ) if *var == var2 => {
                for (gi, key) in keys2.into_iter().enumerate() {
                    let slot = match index.entry(key) {
                        std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            let i = keys.len() as u32;
                            keys.push(key);
                            self.groups.push(Vec::new());
                            e.insert(i);
                            i
                        }
                    };
                    merge_group(&mut self.groups[slot as usize], other.groups[gi].clone());
                }
            }
            (_, other_keys) => {
                self.degrade();
                let other_general = {
                    let mut tmp = PartialAgg {
                        keys: other_keys,
                        groups: other.groups,
                    };
                    tmp.degrade();
                    tmp
                };
                let Keys::General { index, keys } = &mut self.keys else {
                    unreachable!("degraded to general keys");
                };
                let Keys::General { keys: keys2, .. } = other_general.keys else {
                    unreachable!("degraded to general keys");
                };
                for (gi, key) in keys2.into_iter().enumerate() {
                    let slot = match index.entry(key) {
                        std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            let i = keys.len() as u32;
                            keys.push(e.key().clone());
                            self.groups.push(Vec::new());
                            e.insert(i);
                            i
                        }
                    };
                    merge_group(
                        &mut self.groups[slot as usize],
                        other_general.groups[gi].clone(),
                    );
                }
            }
        }
    }

    /// Emit output rows (first-seen group order), mirroring
    /// `AggExec::finalize` — including the scalar-aggregate default row
    /// on segment 0 over empty input.
    fn finalize(&self, spec: &FusedAgg<'_>, seg: SegmentId) -> Finalized {
        let scalar = match &self.keys {
            Keys::Int { keys, .. } => keys.is_empty() && spec.positions.is_empty(),
            Keys::General { keys, .. } => keys.is_empty() && spec.positions.is_empty(),
        };
        if scalar && self.groups.is_empty() {
            if seg != SegmentId(0) {
                return Finalized::Rows(Vec::new());
            }
            let vals: Vec<Datum> = spec
                .calls
                .iter()
                .map(|call| match call.func {
                    AggFunc::Count => Datum::Int64(0),
                    _ => Datum::Null,
                })
                .collect();
            return Finalized::Rows(vec![Row::new(vals)]);
        }
        for accs in &self.groups {
            for (acc, call) in accs.iter().zip(spec.calls) {
                if acc.needs_exact(call.func) {
                    return Finalized::NeedsExact;
                }
            }
        }
        let mut out = Vec::with_capacity(self.groups.len());
        for (gi, accs) in self.groups.iter().enumerate() {
            let mut vals: Vec<Datum> = match &self.keys {
                Keys::Int { var, keys, .. } => vec![var.datum(keys[gi])],
                Keys::General { keys, .. } => keys[gi].clone(),
            };
            for (acc, call) in accs.iter().zip(spec.calls) {
                vals.push(acc.finalize(call));
            }
            out.push(Row::new(vals));
        }
        Finalized::Rows(out)
    }
}

fn merge_group(into: &mut Vec<PartialAcc>, from: Vec<PartialAcc>) {
    if into.is_empty() {
        *into = from;
        return;
    }
    debug_assert_eq!(into.len(), from.len());
    for (a, b) in into.iter_mut().zip(from) {
        a.merge(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_with_params_sched, QueryResult};
    use mpp_catalog::{Catalog, Distribution, TableDesc};
    use mpp_common::value::ArithOp;
    use mpp_common::{row, Column, DataType, Schema};
    use mpp_expr::{CmpOp, ColRef, Expr};
    use mpp_plan::AggCall;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boxed<'env, T, F: FnOnce() -> T + Send + 'env>(
        f: F,
    ) -> Box<dyn FnOnce() -> T + Send + 'env> {
        Box::new(f)
    }

    #[test]
    fn run_tasks_returns_results_in_task_order() {
        for workers in [1, 2, 3, 8] {
            let tasks: Vec<_> = (0..17).map(|i| boxed(move || i * 10)).collect();
            let out = run_tasks(workers, tasks);
            let want: Vec<Option<i32>> = (0..17).map(|i| Some(i * 10)).collect();
            assert_eq!(out, want, "workers={workers}");
        }
    }

    #[test]
    fn run_tasks_single_worker_runs_fifo_on_caller() {
        let order = Mutex::new(Vec::new());
        let caller = std::thread::current().id();
        let tasks: Vec<_> = (0..5)
            .map(|i| {
                let order = &order;
                boxed(move || {
                    order.lock().push(i);
                    assert_eq!(std::thread::current().id(), caller);
                })
            })
            .collect();
        run_tasks(1, tasks);
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn panicking_task_does_not_wedge_or_leak() {
        // A panicking morsel must not take its worker down, block the
        // join, or poison the scheduler for later batches.
        let done = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..12)
            .map(|i| {
                let done = &done;
                boxed(move || {
                    if i % 3 == 0 {
                        panic!("boom {i}");
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                    i
                })
            })
            .collect();
        let out = run_tasks(4, tasks);
        for (i, slot) in out.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(*slot, None, "task {i} should have panicked");
            } else {
                assert_eq!(*slot, Some(i), "task {i} should have completed");
            }
        }
        assert_eq!(done.load(Ordering::Relaxed), 8);
        // The scheduler (and the shared worker pool) is immediately
        // reusable.
        let again = run_tasks(4, (0..4).map(|i| boxed(move || i)).collect());
        assert_eq!(again, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// S6: under any mix of panicking tasks and any worker count, the
        /// scheduler always joins, non-panicking tasks always complete,
        /// and panicking ones report `None` — no wedged or leaked workers.
        #[test]
        fn scheduler_survives_arbitrary_panics(
            panics in proptest::collection::vec(any::<bool>(), 1..24),
            workers in 1usize..6,
        ) {
            let ran = AtomicUsize::new(0);
            let tasks: Vec<_> = panics
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    let ran = &ran;
                    boxed(move || {
                        if p {
                            panic!("injected");
                        }
                        ran.fetch_add(1, Ordering::Relaxed);
                        i
                    })
                })
                .collect();
            let out = run_tasks(workers, tasks);
            prop_assert_eq!(out.len(), panics.len());
            for (i, (slot, &p)) in out.iter().zip(&panics).enumerate() {
                if p {
                    prop_assert_eq!(*slot, None);
                } else {
                    prop_assert_eq!(*slot, Some(i));
                }
            }
            let survivors = panics.iter().filter(|&&p| !p).count();
            prop_assert_eq!(ran.load(Ordering::Relaxed), survivors);
        }
    }

    fn cr(id: u32, name: &str) -> ColRef {
        ColRef::new(id, name)
    }

    /// t(a, b) hash-distributed on b across `segs` segments.
    fn setup(segs: usize, rows: impl IntoIterator<Item = (i64, i64)>) -> (Storage, TableOid) {
        let cat = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int64),
            Column::new("b", DataType::Int64),
        ]);
        let t = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid: t,
            name: "t".into(),
            schema,
            distribution: Distribution::Hashed(vec![1]),
            partitioning: None,
        })
        .unwrap();
        let st = Storage::new(cat, segs);
        st.insert(t, rows.into_iter().map(|(a, b)| row![a, b]))
            .unwrap();
        (st, t)
    }

    fn scan(t: TableOid, filter: Option<Expr>) -> PhysicalPlan {
        PhysicalPlan::TableScan {
            table: t,
            table_name: "t".into(),
            output: vec![cr(1, "a"), cr(2, "b")],
            filter,
        }
    }

    /// `Gather(HashAgg(scan))` — the fusable shape in one slice.
    fn agg_plan(t: TableOid, filter: Option<Expr>, calls: Vec<AggCall>) -> PhysicalPlan {
        let mut out = vec![cr(2, "b")];
        for (i, _) in calls.iter().enumerate() {
            out.push(cr(10 + i as u32, "agg"));
        }
        PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::HashAgg {
                group_by: vec![cr(2, "b")],
                aggs: calls,
                output: out,
                child: Box::new(scan(t, filter)),
            }),
        }
    }

    fn sorted_rows(mut r: QueryResult) -> Vec<Row> {
        r.rows.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
        r.rows
    }

    fn run(
        st: &Storage,
        plan: &PhysicalPlan,
        mode: ExecMode,
        sched: &SchedConfig,
    ) -> Result<QueryResult> {
        execute_with_params_sched(st, plan, &[], mode, ExecEngine::Batch, sched)
    }

    fn all_scheds() -> Vec<SchedConfig> {
        let mut out = vec![SchedConfig {
            policy: SchedPolicy::PerSegment,
            ..SchedConfig::default()
        }];
        for workers in [1, 2, 4, 8] {
            for morsel_rows in [3, 4096] {
                out.push(SchedConfig {
                    workers: Some(workers),
                    policy: SchedPolicy::Morsel,
                    morsel_rows,
                });
            }
        }
        out
    }

    #[test]
    fn fused_agg_matches_reference_across_workers() {
        // Skewed: value 7 dominates.
        let rows: Vec<(i64, i64)> = (0..200)
            .map(|i| (i % 23, if i % 10 == 0 { i % 4 } else { 7 }))
            .collect();
        let (st, t) = setup(4, rows);
        let filter = Some(Expr::cmp(
            CmpOp::Lt,
            Expr::col(cr(1, "a")),
            Expr::lit(Datum::Int64(20)),
        ));
        let plan = agg_plan(
            t,
            filter,
            vec![
                AggCall::count_star(),
                AggCall::new(AggFunc::Sum, Expr::col(cr(1, "a"))),
                AggCall::new(AggFunc::Min, Expr::col(cr(1, "a"))),
                AggCall::new(AggFunc::Max, Expr::col(cr(1, "a"))),
                AggCall::new(AggFunc::Avg, Expr::col(cr(1, "a"))),
            ],
        );
        let baseline = run(
            &st,
            &plan,
            ExecMode::Sequential,
            &SchedConfig {
                policy: SchedPolicy::PerSegment,
                ..SchedConfig::default()
            },
        )
        .unwrap();
        let want_rows = sorted_rows(baseline);
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            for sched in all_scheds() {
                let got = run(&st, &plan, mode, &sched).unwrap();
                // Merged stats must be scheduling-independent.
                assert_eq!(got.stats.tuples_scanned, 200, "{mode:?} {sched:?}");
                assert_eq!(sorted_rows(got), want_rows, "{mode:?} {sched:?}");
            }
        }
    }

    #[test]
    fn fused_pipeline_without_agg_matches_reference() {
        let rows: Vec<(i64, i64)> = (0..100).map(|i| (i, i % 5)).collect();
        let (st, t) = setup(3, rows);
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Filter {
                pred: Expr::cmp(
                    CmpOp::Ge,
                    Expr::col(cr(1, "a")),
                    Expr::lit(Datum::Int64(40)),
                ),
                child: Box::new(scan(t, None)),
            }),
        };
        let want = sorted_rows(
            run(
                &st,
                &plan,
                ExecMode::Sequential,
                &SchedConfig {
                    policy: SchedPolicy::PerSegment,
                    ..SchedConfig::default()
                },
            )
            .unwrap(),
        );
        assert_eq!(want.len(), 60);
        for sched in all_scheds() {
            let got = run(&st, &plan, ExecMode::Parallel, &sched).unwrap();
            assert_eq!(sorted_rows(got), want, "{sched:?}");
        }
    }

    /// S1 at the unit level: when several morsels of one segment error
    /// (division by zero), every worker count must surface the exact
    /// error the row-major reference produces.
    #[test]
    fn multi_morsel_errors_match_row_major_order() {
        // b = 0 everywhere => single segment; a == 13 and a == 57 divide
        // by zero, in different morsels when morsel_rows is small.
        let rows: Vec<(i64, i64)> = (0..80).map(|i| (i, 0)).collect();
        let (st, t) = setup(2, rows);
        // 100 / (a - 13): errors at a == 13.
        let div = |k: i64| Expr::Arith {
            op: ArithOp::Div,
            left: Box::new(Expr::lit(Datum::Int64(100))),
            right: Box::new(Expr::Arith {
                op: ArithOp::Sub,
                left: Box::new(Expr::col(cr(1, "a"))),
                right: Box::new(Expr::lit(Datum::Int64(k))),
            }),
        };
        let pred = Expr::cmp(
            CmpOp::Gt,
            Expr::Arith {
                op: ArithOp::Add,
                left: Box::new(div(13)),
                right: Box::new(div(57)),
            },
            Expr::lit(Datum::Int64(-1000)),
        );
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::Filter {
                pred,
                child: Box::new(scan(t, None)),
            }),
        };
        let want = run(
            &st,
            &plan,
            ExecMode::Sequential,
            &SchedConfig {
                policy: SchedPolicy::PerSegment,
                ..SchedConfig::default()
            },
        )
        .unwrap_err();
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            for sched in all_scheds() {
                let got = run(&st, &plan, mode, &sched).unwrap_err();
                assert_eq!(got.to_string(), want.to_string(), "{mode:?} {sched:?}");
            }
        }
    }

    /// An int sum whose running prefix overflows i64 must error exactly
    /// like the sequential accumulator — even when a later morsel would
    /// bring the total back in range.
    #[test]
    fn transient_sum_overflow_reruns_and_errors() {
        let big = i64::MAX / 2 + 1;
        // Two big positives overflow mid-stream; the negatives would
        // cancel it out if partials were naively summed in i128.
        let rows: Vec<(i64, i64)> = vec![(big, 0), (big, 0), (-big, 0), (-big, 0)];
        let (st, t) = setup(1, rows);
        let plan = agg_plan(
            t,
            None,
            vec![AggCall::new(AggFunc::Sum, Expr::col(cr(1, "a")))],
        );
        let want = run(
            &st,
            &plan,
            ExecMode::Sequential,
            &SchedConfig {
                policy: SchedPolicy::PerSegment,
                ..SchedConfig::default()
            },
        )
        .unwrap_err();
        assert!(want.to_string().contains("overflow"), "{want}");
        for sched in all_scheds() {
            // morsel_rows == 3 splits the four rows across two morsels.
            let got = run(&st, &plan, ExecMode::Parallel, &sched).unwrap_err();
            assert_eq!(got.to_string(), want.to_string(), "{sched:?}");
        }
    }

    /// Scalar aggregation over zero rows: exactly one default row, from
    /// segment 0, under every decomposition.
    #[test]
    fn scalar_agg_on_empty_fused_input() {
        let (st, t) = setup(3, Vec::new());
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::HashAgg {
                group_by: vec![],
                aggs: vec![
                    AggCall::count_star(),
                    AggCall::new(AggFunc::Sum, Expr::col(cr(1, "a"))),
                ],
                output: vec![cr(10, "count"), cr(11, "sum")],
                child: Box::new(scan(t, None)),
            }),
        };
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            for sched in all_scheds() {
                let got = run(&st, &plan, mode, &sched).unwrap();
                assert_eq!(
                    got.rows,
                    vec![Row::new(vec![Datum::Int64(0), Datum::Null])],
                    "{mode:?} {sched:?}"
                );
            }
        }
    }

    /// Float sums merged across morsels re-run through the reference
    /// path, so results are bit-identical to sequential — not merely
    /// close.
    #[test]
    fn float_sums_are_bit_identical_across_worker_counts() {
        let cat = Catalog::new();
        let schema = Schema::new(vec![
            Column::new("x", DataType::Float64),
            Column::new("g", DataType::Int64),
        ]);
        let t = cat.allocate_table_oid();
        cat.register(TableDesc {
            oid: t,
            name: "f".into(),
            schema,
            distribution: Distribution::Hashed(vec![1]),
            partitioning: None,
        })
        .unwrap();
        let st = Storage::new(cat, 2);
        // Sums of many different-magnitude floats: any reordering of the
        // additions changes the low bits.
        st.insert(
            t,
            (0..300).map(|i| row![(i as f64) * 0.1 + 1e10 / ((i + 1) as f64), i % 3]),
        )
        .unwrap();
        let plan = PhysicalPlan::Motion {
            kind: MotionKind::Gather,
            child: Box::new(PhysicalPlan::HashAgg {
                group_by: vec![cr(2, "g")],
                aggs: vec![
                    AggCall::new(AggFunc::Sum, Expr::col(cr(1, "x"))),
                    AggCall::new(AggFunc::Avg, Expr::col(cr(1, "x"))),
                ],
                output: vec![cr(2, "g"), cr(10, "sum"), cr(11, "avg")],
                child: Box::new(PhysicalPlan::TableScan {
                    table: t,
                    table_name: "f".into(),
                    output: vec![cr(1, "x"), cr(2, "g")],
                    filter: None,
                }),
            }),
        };
        let want = sorted_rows(
            run(
                &st,
                &plan,
                ExecMode::Sequential,
                &SchedConfig {
                    policy: SchedPolicy::PerSegment,
                    ..SchedConfig::default()
                },
            )
            .unwrap(),
        );
        for sched in all_scheds() {
            let got = sorted_rows(run(&st, &plan, ExecMode::Parallel, &sched).unwrap());
            assert_eq!(got, want, "{sched:?}");
        }
    }
}
