//! Prepared plans: compile-once/execute-many at the *executor* level.
//!
//! A [`PreparedPlan`] pins a physical plan behind an `Arc` and keeps the
//! per-slice [`CompiledExpr`] lowering (see `mpp_expr::compile`) alive
//! across executions. Expressions are compiled **without** parameter
//! values — `$n` stays an `UnboundParam` node — so one template serves
//! every execution: parameter-free templates are shared as-is, and
//! parameter-bearing ones are cheaply re-bound per execution with
//! [`CompiledExpr::bind_params`] (substitute + re-specialize + re-fold,
//! no column resolution or tree lowering).
//!
//! The cache is keyed by expression node *address* inside the pinned
//! plan. That is sound precisely because the plan is immutable behind
//! the `Arc` the `PreparedPlan` owns: every `Expr` the interpreter
//! passes to `compiled()` is a node of that plan, and its address is
//! stable for the cache's whole lifetime. The interpreter compiles
//! lazily at each per-row site, so only expressions a query actually
//! reaches occupy cache space.

use crate::context::ExecContext;
use crate::exec::{run_plan, run_plan_sched, run_plan_stream, ExecEngine, ExecMode, QueryResult};
use crate::morsel::SchedConfig;
use crate::stream::{CancelToken, RowSink, StreamResult};
use mpp_common::{Datum, Result};
use mpp_expr::{compile, ColRef, CompiledExpr, EvalContext, Expr};
use mpp_plan::PhysicalPlan;
use mpp_storage::Storage;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Address-keyed store of parameter-preserving compiled templates for
/// the expressions of one pinned plan.
#[derive(Default)]
pub struct CompiledCache {
    templates: Mutex<HashMap<usize, Arc<CompiledExpr>>>,
}

impl CompiledCache {
    pub fn new() -> CompiledCache {
        CompiledCache::default()
    }

    /// The template for `e` (a node of the pinned plan), compiling on
    /// first use. `cols` is the operator's output-column context — fixed
    /// per site, so one address always compiles under the same context.
    pub(crate) fn get_or_compile(&self, e: &Expr, cols: &[ColRef]) -> Arc<CompiledExpr> {
        let key = e as *const Expr as usize;
        if let Some(t) = self.templates.lock().get(&key) {
            return Arc::clone(t);
        }
        // Compile outside the lock: compilation is pure, and a racing
        // duplicate is dropped by `or_insert`.
        let t = Arc::new(compile(e, &EvalContext::from_columns(cols)));
        Arc::clone(self.templates.lock().entry(key).or_insert(t))
    }

    /// How many expression sites have been compiled so far.
    pub fn len(&self) -> usize {
        self.templates.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A physical plan pinned for repeated execution, with its compiled
/// expression templates cached across executions.
pub struct PreparedPlan {
    plan: Arc<PhysicalPlan>,
    cache: CompiledCache,
}

impl PreparedPlan {
    pub fn new(plan: Arc<PhysicalPlan>) -> PreparedPlan {
        PreparedPlan {
            plan,
            cache: CompiledCache::new(),
        }
    }

    pub fn plan(&self) -> &Arc<PhysicalPlan> {
        &self.plan
    }

    /// Expression sites compiled so far (grows on first execution, then
    /// stays put — the observable signature of template reuse).
    pub fn compiled_sites(&self) -> usize {
        self.cache.len()
    }

    /// Execute the pinned plan with fresh parameter bindings.
    pub fn execute(
        &self,
        storage: &Storage,
        params: &[Datum],
        mode: ExecMode,
    ) -> Result<QueryResult> {
        self.execute_engine(storage, params, mode, ExecEngine::default())
    }

    /// [`PreparedPlan::execute`] with an explicit execution engine.
    pub fn execute_engine(
        &self,
        storage: &Storage,
        params: &[Datum],
        mode: ExecMode,
        engine: ExecEngine,
    ) -> Result<QueryResult> {
        run_plan(storage, &self.plan, params, mode, engine, Some(&self.cache))
    }

    /// [`PreparedPlan::execute_engine`] with an explicit scheduler
    /// configuration (worker count, decomposition policy, morsel size).
    pub fn execute_engine_sched(
        &self,
        storage: &Storage,
        params: &[Datum],
        mode: ExecMode,
        engine: ExecEngine,
        sched: &SchedConfig,
    ) -> Result<QueryResult> {
        run_plan_sched(
            storage,
            &self.plan,
            params,
            mode,
            engine,
            Some(&self.cache),
            sched,
        )
    }

    /// Streaming execution of the pinned plan: chunks flow through
    /// `sink` as segments finish, cancellation is honored at block
    /// boundaries, and statistics survive errors. Same template cache as
    /// the collecting path.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_stream_sched(
        &self,
        storage: &Storage,
        params: &[Datum],
        mode: ExecMode,
        engine: ExecEngine,
        sched: &SchedConfig,
        cancel: &CancelToken,
        sink: &mut RowSink<'_>,
    ) -> StreamResult {
        run_plan_stream(
            storage,
            &self.plan,
            params,
            mode,
            engine,
            Some(&self.cache),
            sched,
            cancel,
            sink,
        )
    }
}

/// Free-function form of [`PreparedPlan::execute`].
pub fn execute_prepared(
    storage: &Storage,
    prepared: &PreparedPlan,
    params: &[Datum],
    mode: ExecMode,
) -> Result<QueryResult> {
    prepared.execute(storage, params, mode)
}

/// Lower an expression for this execution: through the template cache
/// when the context carries one (prepared execution), or by direct
/// compilation (ad-hoc execution, exactly the pre-existing path).
pub(crate) fn compiled_for(e: &Expr, cols: &[ColRef], ctx: &ExecContext<'_>) -> Arc<CompiledExpr> {
    match ctx.compiled_cache() {
        None => Arc::new(compile(
            e,
            &EvalContext::from_columns(cols).with_params(ctx.params),
        )),
        Some(cache) => {
            let template = cache.get_or_compile(e, cols);
            if template.has_params() {
                Arc::new(template.bind_params(ctx.params))
            } else {
                template
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_with_params_mode, ExecMode};
    use mpp_catalog::Catalog;
    use mpp_expr::{CmpOp, ColRef};

    /// `SELECT * FROM (VALUES 0..10) v(x) WHERE x < $1`.
    fn param_filter_plan() -> Arc<PhysicalPlan> {
        let x = ColRef::new(1, "x");
        Arc::new(PhysicalPlan::Filter {
            pred: Expr::cmp(CmpOp::Lt, Expr::col(x.clone()), Expr::Param(1)),
            child: Box::new(PhysicalPlan::Values {
                rows: (0..10).map(|i| vec![Datum::Int32(i)]).collect(),
                output: vec![x],
            }),
        })
    }

    #[test]
    fn prepared_matches_fresh_and_reuses_templates() {
        let storage = Storage::new(Catalog::new(), 2);
        let plan = param_filter_plan();
        let prepared = PreparedPlan::new(Arc::clone(&plan));
        assert_eq!(prepared.compiled_sites(), 0);
        for mode in [ExecMode::Sequential, ExecMode::Parallel] {
            for n in [0, 3, 10] {
                let params = [Datum::Int32(n)];
                let got = prepared.execute(&storage, &params, mode).unwrap();
                let want = execute_with_params_mode(&storage, &plan, &params, mode).unwrap();
                assert_eq!(got.rows, want.rows, "n={n} mode={mode:?}");
                assert_eq!(got.rows.len(), n as usize);
            }
        }
        // One Filter site compiled, once — not once per execution.
        assert_eq!(prepared.compiled_sites(), 1);
    }

    #[test]
    fn missing_param_still_errors_per_execution() {
        let storage = Storage::new(Catalog::new(), 1);
        let prepared = PreparedPlan::new(param_filter_plan());
        let err = prepared
            .execute(&storage, &[], ExecMode::Sequential)
            .unwrap_err();
        assert!(err.to_string().contains("$1"), "{err}");
        // The same handle still works once the parameter is supplied.
        let ok = prepared
            .execute(&storage, &[Datum::Int32(5)], ExecMode::Sequential)
            .unwrap();
        assert_eq!(ok.rows.len(), 5);
    }
}
