//! Execution context: the per-query runtime state.

use crate::stats::ExecutionStats;
use mpp_common::{Datum, Error, PartOid, PartScanId, Result, Row, SegmentId};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Per-query runtime state shared by all operators and segments.
///
/// `part_registry` is the simulator's stand-in for the shared-memory
/// channel between a `PartitionSelector` and its `DynamicScan` (paper
/// §2.2): it is keyed by *(partScanId, segment)*, so OIDs selected on one
/// segment are only visible to the scan on the **same** segment — exactly
/// the property that makes plans with a Motion between the pair invalid.
pub struct ExecContext<'a> {
    /// Prepared-statement parameter values (`$1` = index 0).
    pub params: &'a [Datum],
    /// (scan id, segment) → selected partition OIDs. An entry exists once
    /// the selector has run, even when it selected nothing.
    part_registry: RefCell<HashMap<(PartScanId, SegmentId), BTreeSet<PartOid>>>,
    /// Legacy init-plan OID-set parameters (`$oidsN` gates).
    oid_params: RefCell<HashMap<u32, HashSet<PartOid>>>,
    /// Motion materialization cache: plan-node address → per-segment rows.
    motion_cache: RefCell<HashMap<usize, Vec<Vec<Row>>>>,
    pub stats: RefCell<ExecutionStats>,
}

impl<'a> ExecContext<'a> {
    pub fn new(params: &'a [Datum]) -> ExecContext<'a> {
        ExecContext {
            params,
            part_registry: RefCell::new(HashMap::new()),
            oid_params: RefCell::new(HashMap::new()),
            motion_cache: RefCell::new(HashMap::new()),
            stats: RefCell::new(ExecutionStats::default()),
        }
    }

    /// The `partition_propagation` built-in (paper Table 1): push OIDs to
    /// the DynamicScan with this id on this segment.
    pub fn propagate_parts(
        &self,
        id: PartScanId,
        segment: SegmentId,
        oids: impl IntoIterator<Item = PartOid>,
    ) {
        let mut reg = self.part_registry.borrow_mut();
        reg.entry((id, segment)).or_default().extend(oids);
    }

    /// Mark a selector as having run even if it selected no partitions.
    pub fn mark_selector_ran(&self, id: PartScanId, segment: SegmentId) {
        self.part_registry
            .borrow_mut()
            .entry((id, segment))
            .or_default();
    }

    /// Consume the propagated OIDs for a DynamicScan. Errors if no
    /// selector ran on this segment — the runtime symptom of the §3.1
    /// invalid plans.
    pub fn consume_parts(&self, id: PartScanId, segment: SegmentId) -> Result<Vec<PartOid>> {
        self.part_registry
            .borrow()
            .get(&(id, segment))
            .map(|s| s.iter().copied().collect())
            .ok_or_else(|| {
                Error::InvalidPlan(format!(
                    "DynamicScan {id} on {segment}: no PartitionSelector ran in this \
                     process (is a Motion separating the pair?)"
                ))
            })
    }

    pub fn set_oid_param(&self, param: u32, oids: HashSet<PartOid>) {
        self.oid_params.borrow_mut().insert(param, oids);
    }

    pub fn oid_param_contains(&self, param: u32, oid: PartOid) -> Result<bool> {
        self.oid_params
            .borrow()
            .get(&param)
            .map(|s| s.contains(&oid))
            .ok_or_else(|| {
                Error::InvalidPlan(format!("OID-set parameter $oids{param} was never computed"))
            })
    }

    pub(crate) fn motion_cached(&self, key: usize) -> Option<Vec<Vec<Row>>> {
        self.motion_cache.borrow().get(&key).cloned()
    }

    pub(crate) fn motion_store(&self, key: usize, per_segment: Vec<Vec<Row>>) {
        self.motion_cache.borrow_mut().insert(key, per_segment);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_is_per_segment() {
        let ctx = ExecContext::new(&[]);
        ctx.propagate_parts(PartScanId(1), SegmentId(0), [PartOid(5)]);
        assert_eq!(
            ctx.consume_parts(PartScanId(1), SegmentId(0)).unwrap(),
            vec![PartOid(5)]
        );
        // Same scan id, different segment: nothing was propagated there.
        let err = ctx.consume_parts(PartScanId(1), SegmentId(1)).unwrap_err();
        assert_eq!(err.kind(), "invalid_plan");
    }

    #[test]
    fn empty_selection_still_counts_as_ran() {
        let ctx = ExecContext::new(&[]);
        ctx.mark_selector_ran(PartScanId(2), SegmentId(0));
        assert!(ctx
            .consume_parts(PartScanId(2), SegmentId(0))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn propagation_accumulates_and_dedupes() {
        let ctx = ExecContext::new(&[]);
        ctx.propagate_parts(PartScanId(1), SegmentId(0), [PartOid(5), PartOid(6)]);
        ctx.propagate_parts(PartScanId(1), SegmentId(0), [PartOid(5), PartOid(7)]);
        assert_eq!(
            ctx.consume_parts(PartScanId(1), SegmentId(0)).unwrap(),
            vec![PartOid(5), PartOid(6), PartOid(7)]
        );
    }

    #[test]
    fn oid_params_gate() {
        let ctx = ExecContext::new(&[]);
        assert!(ctx.oid_param_contains(1, PartOid(5)).is_err());
        ctx.set_oid_param(1, [PartOid(5)].into_iter().collect());
        assert!(ctx.oid_param_contains(1, PartOid(5)).unwrap());
        assert!(!ctx.oid_param_contains(1, PartOid(6)).unwrap());
    }
}
